//! # dynmpi-suite — umbrella crate
//!
//! Re-exports the full Dyn-MPI reproduction stack and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! * [`sim`] — deterministic virtual-time cluster simulator,
//! * [`comm`] — MPI-like transports and collectives,
//! * [`runtime`] — the Dyn-MPI runtime itself,
//! * [`apps`] — the paper's four benchmark applications.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use dynmpi as runtime;
pub use dynmpi_apps as apps;
pub use dynmpi_comm as comm;
pub use dynmpi_sim as sim;
