//! Adaptive Jacobi on a virtual non dedicated cluster.
//!
//! Recreates the paper's core scenario (§5.1) end to end: a 4-node
//! cluster runs Jacobi iteration; at the 10th phase cycle another user's
//! process lands on one node. With Dyn-MPI the runtime detects the load,
//! measures true iteration times through a grace period, redistributes,
//! and the job finishes far sooner than the non-adaptive run — with the
//! identical numerical answer.
//!
//! ```sh
//! cargo run --release --example adaptive_jacobi
//! ```

use dynmpi::DynMpiConfig;
use dynmpi_apps::harness::{run_sim, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_sim::{LoadScript, NodeSpec};

fn main() {
    let params = JacobiParams {
        n: 512,
        iters: 120,
        exercise_kernel: true,
        rebalance_at: None,
    };
    // One competing process on node 3 from the 10th phase cycle on.
    let script = LoadScript::dedicated().at_cycle(3, 10, 1);
    // Slowed nodes keep the run compute-bound at this reduced size.
    let node = NodeSpec::with_speed(5e6);

    println!("running: dedicated baseline…");
    let dedicated = run_sim(
        &Experiment::new(AppSpec::Jacobi(params.clone()), 4)
            .with_node_spec(node)
            .with_cfg(DynMpiConfig::no_adapt()),
    );
    println!("running: loaded, no adaptation…");
    let no_adapt = run_sim(
        &Experiment::new(AppSpec::Jacobi(params.clone()), 4)
            .with_node_spec(node)
            .with_cfg(DynMpiConfig::no_adapt())
            .with_script(script.clone()),
    );
    println!("running: loaded, Dyn-MPI…");
    let dynmpi = run_sim(
        &Experiment::new(AppSpec::Jacobi(params), 4)
            .with_node_spec(node)
            .with_cfg(DynMpiConfig::default())
            .with_script(script),
    );

    println!("\n--- results (virtual seconds) ---");
    println!("dedicated         : {:8.2}s   (1.00×)", dedicated.makespan);
    println!(
        "loaded, no adapt  : {:8.2}s   ({:.2}×)",
        no_adapt.makespan,
        no_adapt.makespan / dedicated.makespan
    );
    println!(
        "loaded, Dyn-MPI   : {:8.2}s   ({:.2}×), redistribution cost {:.3}s",
        dynmpi.makespan,
        dynmpi.makespan / dedicated.makespan,
        dynmpi.redist_seconds()
    );

    println!("\n--- Dyn-MPI adaptation timeline ---");
    for e in dynmpi.events() {
        println!("cycle {:>4}: {}", e.cycle(), describe(e));
    }

    let (a, b, c) = (
        dedicated.checksum().unwrap(),
        no_adapt.checksum().unwrap(),
        dynmpi.checksum().unwrap(),
    );
    assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    assert!((a - c).abs() < 1e-9 * a.abs().max(1.0));
    println!("\nall three runs computed the identical answer ({a:.6}).");
}

fn describe(e: &dynmpi::RuntimeEvent) -> String {
    use dynmpi::RuntimeEvent::*;
    match e {
        LoadChangeDetected { loads, .. } => {
            format!("load change detected: {loads:?} — entering grace period")
        }
        GraceComplete { mode, .. } => format!("grace period done (timing mode {mode:?})"),
        Redistributed {
            seconds,
            rows_moved,
            counts,
            ..
        } => format!("redistributed {rows_moved} rows in {seconds:.3}s → block sizes {counts:?}"),
        RedistributionSkipped { moved_fraction, .. } => {
            format!(
                "redistribution skipped (only {:.1}% would move)",
                moved_fraction * 100.0
            )
        }
        DropEvaluated {
            predicted_unloaded,
            measured_max,
            dropped,
            ..
        } => format!(
            "drop decision: predicted unloaded {predicted_unloaded:.3}s vs measured \
             {measured_max:.3}s → {}",
            if *dropped { "drop" } else { "keep" }
        ),
        NodesDropped { nodes, .. } => format!("physically removed nodes {nodes:?}"),
        NodeRejoined { node, .. } => format!("node {node} rejoined"),
        NodeArrived { node, .. } => format!("node {node} arrived — entering arrival grace"),
        ExpandEvaluated {
            predicted_with,
            measured_max,
            admitted,
            ..
        } => format!(
            "expansion decision: predicted with newcomer {predicted_with:.3}s vs measured \
             {measured_max:.3}s → {}",
            if *admitted { "admit" } else { "reject" }
        ),
        NodeAdmitted { node, .. } => format!("node {node} admitted into the computation"),
        NodeSuspected {
            node,
            silent_cycles,
            ..
        } => format!("node {node} suspected dead ({silent_cycles} silent cycles)"),
        NodeConfirmedDead { node, .. } => format!("node {node} confirmed dead"),
        NodeRecovered {
            node,
            rollback_to,
            restored_rows,
            ..
        } => format!(
            "node {node}'s {restored_rows} rows restored from its buddy — \
             replaying from cycle {rollback_to}"
        ),
    }
}
