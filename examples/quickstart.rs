//! Quickstart: a Dyn-MPI heat-diffusion stencil on real threads.
//!
//! Four rank threads solve a small Laplace problem; partway through we
//! ask the runtime to rebalance (the `REDISTRIBUTE` annotation analogue)
//! and show that the distribution changes while the numerical result does
//! not.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dynmpi::{AccessMode, CommPattern, DenseMatrix, Drsd, DynMpi, DynMpiConfig, RedistArray};
use dynmpi_comm::run_threads;

fn main() {
    const N: usize = 64;
    const STEPS: usize = 40;

    let results = run_threads(4, |t| {
        let mut rt = DynMpi::init(t, N, DynMpiConfig::default());
        let a = rt.register_dense("grid", N);
        let ph = rt.init_phase(1, N - 1, CommPattern::NearestNeighbor);
        rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::with_halo(1));

        let mut grid = DenseMatrix::<f64>::new(N, N);
        {
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut grid];
            rt.setup(&mut arrays);
        }
        // Hot left wall, cold elsewhere.
        grid.fill_rows(&rt.local_rows(a), |_, j| if j == 0 { 100.0 } else { 0.0 });

        let before = rt.distribution().counts();
        for step in 0..STEPS {
            rt.begin_cycle();
            if step == 10 {
                rt.request_rebalance();
            }
            if rt.participating() {
                rt.ghost_exchange(a, &mut grid);
                let (lo, hi) = rt.my_range(ph).expect("non-empty block");
                for i in lo..=hi {
                    let up = grid.row(i - 1).to_vec();
                    let down = grid.row(i + 1).to_vec();
                    let row = grid.row_mut(i);
                    for j in 1..N - 1 {
                        row[j] = 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1]);
                    }
                }
                rt.charge_rows(ph, |_| 5.0 * N as f64);
            }
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut grid];
            rt.end_cycle(&mut arrays);
        }

        let local: f64 = rt
            .my_rows(ph)
            .iter()
            .map(|i| grid.row(i).iter().sum::<f64>())
            .sum();
        let total = rt.allreduce_sum(&[local])[0];
        (before, rt.distribution().counts(), total, rt.events().len())
    });

    let (before, after, total, nevents) = &results[0];
    println!("initial distribution : {before:?}");
    println!("after rebalance      : {after:?}");
    println!("adaptation events    : {nevents}");
    println!("heat checksum        : {total:.6}");
    for (r, (_, _, t, _)) in results.iter().enumerate() {
        assert!((t - total).abs() < 1e-9, "rank {r} disagrees");
    }
    println!("all ranks agree on the answer — redistribution is transparent.");
}
