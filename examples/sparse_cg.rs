//! Sparse conjugate gradient under load (§5.1's case study, scaled).
//!
//! Solves a random SPD system with the Dyn-MPI **sparse** array (vector
//! of lists): the matrix and the solution vectors all redistribute when a
//! competing process appears. Global reductions use the removed-aware
//! collective, so the solve would stay correct even across node removal.
//!
//! ```sh
//! cargo run --release --example sparse_cg
//! ```

use dynmpi::DynMpiConfig;
use dynmpi_apps::cg::{self, CgParams};
use dynmpi_apps::harness::{run_sim, AppSpec, Experiment};
use dynmpi_comm::run_threads;
use dynmpi_sim::{LoadScript, NodeSpec};

fn main() {
    let params = CgParams {
        n: 1_000,
        offdiag_per_row: 12,
        iters: 60,
        seed: 7,
    };

    // First on real threads (no cluster model): prove the solver itself.
    println!(
        "thread transport: solving {}×{} system on 4 rank threads…",
        params.n, params.n
    );
    let thread_res = run_threads(4, |t| cg::run(t, &params, DynMpiConfig::no_adapt()));
    let residual = thread_res[0].checksum.unwrap();
    println!("  final residual ‖r‖ = {residual:.3e}");
    assert!(
        residual < 1e-8,
        "CG must converge on a diagonally dominant system"
    );

    // Then on the virtual cluster with a competing process at cycle 10.
    println!("\nvirtual cluster: same solve, 1 CP lands on node 3 at cycle 10…");
    let script = LoadScript::dedicated().at_cycle(3, 10, 1);
    let node = NodeSpec::with_speed(5e6);
    let no_adapt = run_sim(
        &Experiment::new(AppSpec::Cg(params.clone()), 4)
            .with_node_spec(node)
            .with_cfg(DynMpiConfig::no_adapt())
            .with_script(script.clone()),
    );
    let adapt = run_sim(
        &Experiment::new(AppSpec::Cg(params), 4)
            .with_node_spec(node)
            .with_cfg(DynMpiConfig::default())
            .with_script(script),
    );
    println!("  no adaptation : {:7.2}s", no_adapt.makespan);
    println!(
        "  Dyn-MPI       : {:7.2}s  ({} events, redistribution {:.3}s)",
        adapt.makespan,
        adapt.events().len(),
        adapt.redist_seconds()
    );
    let (a, b) = (no_adapt.checksum().unwrap(), adapt.checksum().unwrap());
    println!("  residuals agree: {a:.3e} vs {b:.3e}");
    assert!((a - b).abs() <= 1e-12 + 1e-6 * a.abs());
    assert!((residual - a).abs() <= 1e-12 + 1e-6 * residual.abs());
    println!("\nsame answer on every transport and configuration.");
}
