//! Node removal and rejoin (§4.4 + the paper's future-work extension).
//!
//! Red-Black SOR on 8 simulated nodes. Three competing processes hammer
//! one node; the runtime redistributes, then evaluates the §4.4 removal
//! predicate and (with the communication-heavy configuration used here)
//! physically drops the node, reassigning relative ranks. Later the
//! competing processes leave and — with `allow_rejoin` — the node is
//! re-admitted.
//!
//! ```sh
//! cargo run --release --example node_removal
//! ```

use dynmpi::{DropPolicy, DynMpiConfig};
use dynmpi_apps::harness::{run_sim, AppSpec, Experiment};
use dynmpi_apps::sor::SorParams;
use dynmpi_sim::{LoadScript, NodeSpec};

fn main() {
    let params = SorParams {
        n: 256,
        iters: 160,
        omega: 1.5,
        exercise_kernel: true,
    };
    // Node 7: 3 CPs at cycle 10, gone at cycle 100.
    let script = LoadScript::dedicated()
        .at_cycle(7, 10, 3)
        .at_cycle(7, 100, 0);
    let cfg = DynMpiConfig {
        drop_policy: DropPolicy::Always,
        allow_rejoin: true,
        rejoin_after_cycles: 5,
        ..Default::default()
    };
    let r = run_sim(
        &Experiment::new(AppSpec::Sor(params), 8)
            .with_node_spec(NodeSpec::with_speed(4e6))
            .with_cfg(cfg)
            .with_script(script),
    );

    println!("--- adaptation timeline (rank 0's view) ---");
    for e in r.events() {
        println!("cycle {:>4}: {:?}", e.cycle(), e.kind());
        if let dynmpi::RuntimeEvent::NodesDropped { nodes, .. } = e {
            println!("            → removed {nodes:?}; survivors own everything");
        }
        if let dynmpi::RuntimeEvent::NodeRejoined { node, .. } = e {
            println!("            → node {node} re-admitted after its load cleared");
        }
    }
    println!("\nfinal active members: {:?}", {
        let mut rows: Vec<(usize, usize)> = r
            .per_rank
            .iter()
            .enumerate()
            .filter(|(_, res)| res.participating)
            .map(|(i, res)| (i, res.final_rows))
            .collect();
        rows.sort_unstable();
        rows
    });
    println!("makespan: {:.2} virtual seconds", r.makespan);
    let dropped = r.events().iter().any(|e| e.kind() == "nodes-dropped");
    let rejoined =
        r.events().iter().any(|e| e.kind() == "node-rejoined") || r.per_rank[7].participating;
    println!("dropped: {dropped}; back in at the end: {rejoined}");
    println!("checksum: {:.6}", r.checksum().unwrap());
}
