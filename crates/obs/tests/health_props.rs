//! Property tests for the streaming health monitor (ISSUE 6 satellite):
//! per-window accumulations are u64-exact partitions of the event stream's
//! totals, and the full report — alerts included — is a pure function of
//! the event *set*, independent of delivery order.

use dynmpi_obs::trace::EventSink;
use dynmpi_obs::{HealthMonitor, Json, TraceEvent};
use dynmpi_testkit::{check_n, Rng};

fn random_event(rng: &mut Rng, nodes: usize) -> TraceEvent {
    let rank = rng.range_usize(0, nodes);
    let ts = rng.range_u64(0, 2_000);
    match rng.range_u64(0, 4) {
        0 => {
            let dur = rng.range_u64(1, 700);
            let cpu = rng.range_u64(0, dur + 1);
            let work = rng.range_u64(0, 1_000_000);
            TraceEvent::Complete {
                cat: "runtime",
                name: "charge_rows".to_string(),
                rank,
                ts_ns: ts,
                dur_ns: dur,
                args: vec![
                    ("rows".to_string(), Json::UInt(1)),
                    ("cpu_ns".to_string(), Json::UInt(cpu)),
                    ("work_uflop".to_string(), Json::UInt(work)),
                ],
            }
        }
        1 => TraceEvent::Complete {
            cat: "sched",
            name: "blocked".to_string(),
            rank,
            ts_ns: ts,
            dur_ns: rng.range_u64(0, 900),
            args: vec![],
        },
        2 => TraceEvent::Instant {
            cat: "comm",
            name: "send".to_string(),
            rank,
            ts_ns: ts,
            args: vec![
                (
                    "peer".to_string(),
                    Json::UInt(rng.range_u64(0, nodes as u64)),
                ),
                ("seq".to_string(), Json::UInt(rng.next_u64() % 1000)),
            ],
        },
        _ => {
            let late = rng.range_u64(0, 500);
            TraceEvent::Instant {
                cat: "comm",
                name: "recv".to_string(),
                rank,
                ts_ns: ts,
                args: vec![
                    ("peer".to_string(), Json::UInt(0)),
                    ("late_ns".to_string(), Json::UInt(late)),
                    ("net_ns".to_string(), Json::UInt(rng.range_u64(0, 300))),
                ],
            }
        }
    }
}

/// Window sums must equal the event-stream sums exactly (u64 arithmetic,
/// no rounding residue), whatever the window width — the same discipline
/// as the profiler's bucket tests.
#[test]
fn window_sums_are_exact_partitions() {
    check_n("health_window_sums_exact", 200, |rng| {
        let nodes = rng.range_usize(1, 5);
        let window = rng.range_u64(1, 600);
        let n_events = rng.range_u64(0, 80);
        let events: Vec<TraceEvent> = (0..n_events).map(|_| random_event(rng, nodes)).collect();

        // Expected stream totals, straight off the events.
        let mut exp_busy = 0u64;
        let mut exp_cpu = 0u64;
        let mut exp_work = 0u64;
        let mut exp_wait = 0u64;
        let mut exp_late = 0u64;
        let arg = |args: &[(String, Json)], k: &str| {
            args.iter()
                .find(|(n, _)| n == k)
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or(0)
        };
        for ev in &events {
            match ev {
                TraceEvent::Complete {
                    cat,
                    name,
                    dur_ns,
                    args,
                    ..
                } => {
                    if *cat == "runtime" && name == "charge_rows" {
                        exp_busy += dur_ns;
                        exp_cpu += arg(args, "cpu_ns");
                        exp_work += arg(args, "work_uflop");
                    } else if *cat == "sched" && name == "blocked" {
                        exp_wait += dur_ns;
                    }
                }
                TraceEvent::Instant {
                    cat, name, args, ..
                } => {
                    if *cat == "comm" && name == "recv" {
                        exp_late += arg(args, "late_ns");
                    }
                }
            }
        }

        let mon = HealthMonitor::new(window);
        for ev in &events {
            mon.on_event(ev);
        }
        let report = mon.report();
        let sum = |f: &dyn Fn(&dynmpi_obs::NodeHealth) -> u64| -> u64 {
            report.windows.iter().flat_map(|w| &w.nodes).map(f).sum()
        };
        assert_eq!(sum(&|n| n.busy_ns), exp_busy);
        assert_eq!(sum(&|n| n.cpu_ns), exp_cpu);
        assert_eq!(sum(&|n| n.wait_ns), exp_wait);
        // work_uflop is not re-exposed per node directly, but eff_mflops is
        // derived from it; check via the JSONL-stable stats instead: total
        // queue depth conservation. Every send to a live node either stays
        // queued (final depth) or was received.
        let _ = exp_work;
        let total_sends: i64 = events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Instant { cat, name, args, .. }
                    if *cat == "comm" && name == "send"
                        && arg(args, "peer") < report.nodes as u64)
            })
            .count() as i64;
        let total_recvs: i64 = events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Instant { cat, name, .. }
                    if *cat == "comm" && name == "recv")
            })
            .count() as i64;
        if let Some(last) = report.windows.last() {
            let final_depth: i64 = last.nodes.iter().map(|n| n.queue_depth).sum();
            assert_eq!(final_depth, total_sends - total_recvs);
        }
        // late shares reconstruct the exact late totals per window width.
        let total_late: f64 = report
            .windows
            .iter()
            .flat_map(|w| &w.nodes)
            .map(|n| n.late_wait_share * window as f64)
            .sum();
        assert!((total_late - exp_late as f64).abs() < 1e-6 * (1.0 + exp_late as f64));
    });
}

/// The report — node stats, alert streaks, classifications, rendered
/// JSONL — must be byte-identical under any reordering of the event
/// stream, including events sharing a timestamp. (This is what makes
/// `--health-out` stable across `--threads 1` vs `8` and across engine
/// modes.)
#[test]
fn report_is_order_independent() {
    check_n("health_report_order_independent", 120, |rng| {
        let nodes = rng.range_usize(2, 5);
        let n_events = rng.range_u64(2, 60);
        let mut events: Vec<TraceEvent> = (0..n_events).map(|_| random_event(rng, nodes)).collect();
        // Force timestamp collisions so same-ts reordering is exercised.
        let collide = rng.range_u64(0, 2_000);
        let half = events.len() / 2;
        for ev in events.iter_mut().take(half) {
            if rng.chance(0.5) {
                match ev {
                    TraceEvent::Complete { ts_ns, .. } => *ts_ns = collide,
                    TraceEvent::Instant { ts_ns, .. } => *ts_ns = collide,
                }
            }
        }

        let window = rng.range_u64(50, 500);
        let feed = |events: &[TraceEvent]| {
            let mon = HealthMonitor::new(window);
            for ev in events {
                mon.on_event(ev);
            }
            mon.report()
        };
        let baseline = feed(&events);
        let jsonl = baseline.to_jsonl();
        for _ in 0..3 {
            // Fisher–Yates shuffle with the property RNG.
            for i in (1..events.len()).rev() {
                let j = rng.range_usize(0, i + 1);
                events.swap(i, j);
            }
            let shuffled = feed(&events);
            assert_eq!(shuffled, baseline);
            assert_eq!(shuffled.to_jsonl(), jsonl);
        }
    });
}

/// Sustain semantics: a rule with `sustain = N` fires exactly when the
/// comparison holds for the N-th consecutive window, and a healthy window
/// resets the streak.
#[test]
fn sustain_streaks_reset_on_recovery() {
    let charge = |rank: usize, w: u64, cpu: u64| TraceEvent::Complete {
        cat: "runtime",
        name: "charge_rows".to_string(),
        rank,
        ts_ns: w * 100,
        dur_ns: 80,
        args: vec![
            ("cpu_ns".to_string(), Json::UInt(cpu)),
            ("work_uflop".to_string(), Json::UInt(100)),
        ],
    };
    let mon = HealthMonitor::new(100);
    // Interference (cpu 40/busy 80 = 0.5 > 0.2, sustain 2) in windows
    // 0, 1 — fires at window 1 — then recovery in 2, then 3, 4 — fires
    // again at 4 after the streak reset.
    for (w, cpu) in [(0, 40), (1, 40), (2, 80), (3, 40), (4, 40)] {
        mon.on_event(&charge(0, w, cpu));
        mon.on_event(&charge(1, w, 80)); // healthy reference node
    }
    let report = mon.report();
    let fired: Vec<u64> = report
        .windows
        .iter()
        .flat_map(|w| w.alerts.iter().map(move |a| (w.index, a)))
        .filter(|(_, a)| a.rule == "interference" && a.node == 0)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(fired, vec![1, 4]);
}

// ---------------------------------------------------------------------------
// Removal timeline regressions (fail-stop extension)
// ---------------------------------------------------------------------------

/// A `charge_rows` span marking `rank` active across `[ts, ts+dur)`.
fn activity(rank: usize, ts: u64, dur: u64) -> TraceEvent {
    TraceEvent::Complete {
        cat: "runtime",
        name: "charge_rows".to_string(),
        rank,
        ts_ns: ts,
        dur_ns: dur,
        args: vec![
            ("rows".to_string(), Json::UInt(1)),
            ("cpu_ns".to_string(), Json::UInt(dur)),
            ("work_uflop".to_string(), Json::UInt(100)),
        ],
    }
}

/// A replicated runtime decision instant, as a survivor rank mirrors it.
fn decision(rank: usize, kind: &str, ts: u64, cycle: u64, node: u64) -> TraceEvent {
    TraceEvent::Instant {
        cat: "runtime",
        name: kind.to_string(),
        rank,
        ts_ns: ts,
        args: vec![
            ("cycle".to_string(), Json::UInt(cycle)),
            ("node".to_string(), Json::UInt(node)),
        ],
    }
}

/// Regression: once the runtime has confirmed a node dead, its ensuing
/// silence is the runtime's own decision doing its job — the silence rule
/// must NOT keep escalating it to `SuspectDead`, and the report must mark
/// the node removed. (Before the fix, confirmed deaths never entered the
/// removal timeline: a partitioned node whose self-evicted rank straggled
/// a few late events kept tripping the silence rule post-confirmation.)
#[test]
fn confirmed_dead_node_is_removed_and_stops_alerting() {
    let w = 100u64;
    let monitor = HealthMonitor::new(w);
    // Ranks 0 and 1: active every window through window 9.
    for widx in 0..10 {
        monitor.on_event(&activity(0, widx * w + 10, 50));
        monitor.on_event(&activity(1, widx * w + 10, 50));
    }
    // Rank 2: active through window 2, then goes quiet; one straggling
    // late event (the evicted rank's tail) keeps its activity horizon
    // open, which is what made the silence rule count windows 3..8.
    for widx in 0..3 {
        monitor.on_event(&activity(2, widx * w + 10, 50));
    }
    monitor.on_event(&activity(2, 9 * w + 10, 5));
    // The survivors confirm the death in window 3.
    monitor.on_event(&decision(0, "node-confirmed-dead", 3 * w + 20, 7, 2));

    let report = monitor.report();
    assert!(
        !report
            .alerts()
            .iter()
            .any(|a| a.node == 2 && a.ts_ns > 4 * w),
        "confirmed-dead node kept alerting: {:?}",
        report.alerts()
    );
    // Windows past the confirmation mark the node removed.
    assert!(report.windows[5].nodes[2].removed);
    assert!(!report.windows[2].nodes[2].removed);
    // The confirmation itself is on the decisions timeline.
    assert!(report
        .decisions()
        .iter()
        .any(|d| d.kind == "node-confirmed-dead" && d.cycle == 7));
}

/// Regression: a rejoin (or admission) clears the node's removal — its
/// health is tracked, and alertable, again. (Before the fix the removal
/// set was never cleared, so a node that returned and later went silent
/// could never be flagged.)
#[test]
fn rejoined_node_is_tracked_again() {
    let w = 100u64;
    let monitor = HealthMonitor::new(w);
    for widx in 0..16 {
        monitor.on_event(&activity(0, widx * w + 10, 50));
        monitor.on_event(&activity(1, widx * w + 10, 50));
    }
    // Rank 2: dropped in window 2, rejoins in window 6, active again in
    // windows 6..9, silent from 10 on with a straggling tail event.
    for widx in 0..3 {
        monitor.on_event(&activity(2, widx * w + 10, 50));
    }
    monitor.on_event(&TraceEvent::Instant {
        cat: "runtime",
        name: "nodes-dropped".to_string(),
        rank: 0,
        ts_ns: 2 * w + 20,
        args: vec![
            ("cycle".to_string(), Json::UInt(4)),
            ("nodes".to_string(), Json::Arr(vec![Json::UInt(2)])),
        ],
    });
    monitor.on_event(&decision(0, "node-rejoined", 6 * w + 20, 11, 2));
    for widx in 6..10 {
        monitor.on_event(&activity(2, widx * w + 30, 50));
    }
    monitor.on_event(&activity(2, 15 * w + 10, 5));

    let report = monitor.report();
    // Removed while dropped, tracked again after the rejoin.
    assert!(report.windows[4].nodes[2].removed);
    assert!(!report.windows[8].nodes[2].removed);
    // The post-rejoin silence (windows 10..14) escalates again: the node
    // is back under the rules.
    assert!(
        report
            .alerts()
            .iter()
            .any(|a| a.node == 2 && a.ts_ns > 10 * w),
        "rejoined node's silence was never flagged: {:?}",
        report.alerts()
    );
}
