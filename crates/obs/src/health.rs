//! Online health monitoring: streaming per-node statistics, declarative
//! alert rules, and live classification (DESIGN.md §11).
//!
//! A [`HealthMonitor`] subscribes to a [`Recorder`](crate::Recorder) as an
//! [`EventSink`] and folds trace events into fixed-width **virtual-time
//! windows** *as they are emitted* — no post-run parse. Everything it keeps
//! per `(window, node)` is a commutative fold (u64 sums assigned by event
//! timestamp, booleans OR-ed, min-timestamps), so the final report is a
//! pure function of the event *set*: byte-identical output regardless of
//! cross-thread arrival order, sweep thread count, or fast vs. stepped
//! engine mode.
//!
//! Mode-invariance discipline: window statistics are derived only from
//! events whose shape is identical between the fast-forward and stepped
//! engines — `runtime` spans (`charge_rows`/`grace_measure` with exact
//! integer `cpu_ns`/`work_uflop` attributes, `balance` with the predicted
//! imbalance), `sched/blocked` spans, `comm` instants (with the receiver's
//! locally computed `late_ns`/`net_ns` wait split), and `runtime` decision
//! instants. Non-blocked `sched` spans differ in *aggregation* between the
//! two modes (one fast-forwarded span covers many stepped slices), so they
//! contribute only interval-coverage (an OR) and watermarks (a max), both
//! invariant under aggregation. Spans that straddle window boundaries are
//! split exactly: wall overlap per window, and integer attributes by
//! cumulative rounding so per-window shares always sum to the attribute.
//!
//! The alert engine evaluates declarative [`AlertRule`]s — metric,
//! comparison, threshold, sustained-for-N-windows — per node per window,
//! classifying each node [`HealthState::Healthy`] / `Degraded` /
//! `Straggler` / `SuspectDead`. Alerts are stamped with the **virtual**
//! end time of the window that tripped them, which puts them on the same
//! timeline as the runtime's adaptation decisions (also collected here),
//! so "the monitor saw the straggler before the balancer acted" is a
//! plain timestamp comparison.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::json::Json;
use crate::trace::{EventSink, TraceEvent};

/// Default sliding-window width: 20 virtual milliseconds. Small enough
/// that a sustained-2-windows rule trips inside one grace period of the
/// quick-mode fig4 scenario; large enough to smooth per-cycle jitter.
pub const DEFAULT_WINDOW_NS: u64 = 20_000_000;

/// Node classification, in increasing severity (the `Ord` the rule engine
/// uses when several rules are active at once).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    Healthy,
    /// Losing cycles to interference or backlog, but keeping up.
    Degraded,
    /// Effective compute rate well below the cluster median.
    Straggler,
    /// Emitting nothing while the rest of the cluster makes progress.
    SuspectDead,
}

impl HealthState {
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Straggler => "straggler",
            HealthState::SuspectDead => "suspect-dead",
        }
    }
}

/// What a rule measures, per node per window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleMetric {
    /// `(busy - cpu) / busy`: the share of compute wall time lost to
    /// competing processes. No value when the node did not compute.
    InterferenceShare,
    /// Late-sender wait in the window over the window width.
    LateWaitShare,
    /// Node's effective flop rate *while computing* (`work / busy`)
    /// relative to the cluster median. No value when the median is
    /// undefined (nobody computed).
    RelativeFlopRate,
    /// Outstanding messages destined to this node at the window's end.
    QueueDepth,
    /// Consecutive windows with no events from this node while the rest
    /// of the cluster is active.
    SilentWindows,
}

/// Comparison direction for a rule's threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleOp {
    Above,
    Below,
}

/// One declarative alert rule: `metric OP threshold`, held for `sustain`
/// consecutive windows, classifies the node as `classify`.
///
/// Windows where the metric has no value (e.g. interference share on a
/// window without compute) neither extend nor reset the streak — a
/// straggler does not become healthy by idling through a redistribution.
#[derive(Clone, Debug)]
pub struct AlertRule {
    pub name: &'static str,
    pub metric: RuleMetric,
    pub op: RuleOp,
    pub threshold: f64,
    /// Consecutive windows the comparison must hold before the rule fires.
    pub sustain: u32,
    pub classify: HealthState,
}

impl AlertRule {
    fn hit(&self, value: f64) -> bool {
        match self.op {
            RuleOp::Above => value > self.threshold,
            RuleOp::Below => value < self.threshold,
        }
    }
}

/// The default rule set: interference and receive backlog degrade a node,
/// a relative compute-rate collapse marks a straggler, and prolonged
/// silence marks it suspect-dead.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "interference",
            metric: RuleMetric::InterferenceShare,
            op: RuleOp::Above,
            threshold: 0.20,
            sustain: 2,
            classify: HealthState::Degraded,
        },
        AlertRule {
            name: "late-waits",
            metric: RuleMetric::LateWaitShare,
            op: RuleOp::Above,
            threshold: 0.40,
            sustain: 3,
            classify: HealthState::Degraded,
        },
        AlertRule {
            name: "backlog",
            metric: RuleMetric::QueueDepth,
            op: RuleOp::Above,
            threshold: 64.0,
            sustain: 2,
            classify: HealthState::Degraded,
        },
        AlertRule {
            name: "straggler",
            metric: RuleMetric::RelativeFlopRate,
            op: RuleOp::Below,
            threshold: 0.70,
            sustain: 2,
            classify: HealthState::Straggler,
        },
        AlertRule {
            name: "silent",
            metric: RuleMetric::SilentWindows,
            op: RuleOp::Above,
            threshold: 2.5,
            sustain: 1,
            classify: HealthState::SuspectDead,
        },
    ]
}

/// Per-(window, node) accumulated facts. Every field is a commutative
/// fold, which is what makes the monitor's output order-independent.
#[derive(Clone, Debug, Default, PartialEq)]
struct NodeWindow {
    /// Wall nanoseconds inside `charge_rows`/`grace_measure` spans
    /// (exact interval overlap with the window).
    busy_ns: u64,
    /// Exact CPU nanoseconds consumed by those spans (cumulative-rounded
    /// split across windows; per-window shares sum to the span total).
    cpu_ns: u64,
    /// Micro-flops of application work charged (same split).
    work_uflop: u64,
    /// Wall nanoseconds blocked at receives (`sched/blocked` overlap).
    wait_ns: u64,
    /// Late-sender share of resolved waits, attributed at recv time.
    late_ns: u64,
    /// Network-flight share of resolved waits.
    net_ns: u64,
    /// Messages sent *to* this node (from the senders' `comm/send`).
    sends_to: u64,
    /// Messages received *by* this node (`comm/recv`).
    recvs_by: u64,
    /// Did this node emit or cover any event in the window?
    active: bool,
}

/// Runtime decision instants the monitor mirrors onto the health timeline.
const DECISION_KINDS: &[&str] = &[
    "load-change",
    "grace-complete",
    "redistributed",
    "redist-skipped",
    "drop-evaluated",
    "nodes-dropped",
    "node-rejoined",
    "node-arrived",
    "expand-evaluated",
    "node-admitted",
    "node-suspected",
    "node-confirmed-dead",
    "node-recovered",
];

#[derive(Default)]
struct MonitorInner {
    /// Highest rank seen + 1.
    nodes: usize,
    /// Window index → per-node facts (vector grows with `nodes`).
    windows: BTreeMap<u64, Vec<NodeWindow>>,
    /// `(cycle, kind)` → earliest rank's instant timestamp. Every rank
    /// mirrors each replicated decision; min-ts dedup keeps one per
    /// decision, order-independently.
    decisions: BTreeMap<(u64, String), u64>,
    /// Cycle → (earliest ts, broadcast per-node load vector).
    loads: BTreeMap<u64, (u64, Vec<u32>)>,
    /// Cycle → (earliest balance-span end, balancer's predicted
    /// post-redistribution imbalance).
    predictions: BTreeMap<u64, (u64, f64)>,
    /// Cycle → nodes the runtime dropped (from `nodes-dropped`).
    drops: BTreeMap<u64, Vec<usize>>,
    /// Cycle → node the failure detector confirmed dead (from
    /// `node-confirmed-dead`) — removed like a drop, permanently.
    deaths: BTreeMap<u64, usize>,
    /// (cycle, kind) → node returning to the group (`node-rejoined` /
    /// `node-admitted`) — clears the node's removal so its health is
    /// tracked (and alertable) again.
    returns: BTreeMap<(u64, String), usize>,
    /// Per-rank high watermark: max event end seen (live progress only —
    /// report *content* never depends on it).
    watermark: Vec<u64>,
    /// Ranks whose scope flushed (finished).
    flushed: BTreeSet<usize>,
}

impl MonitorInner {
    fn note_rank(&mut self, rank: usize) {
        if rank >= self.nodes {
            self.nodes = rank + 1;
        }
        if rank >= self.watermark.len() {
            self.watermark.resize(rank + 1, 0);
        }
    }

    fn window_mut(&mut self, widx: u64, rank: usize) -> &mut NodeWindow {
        let nodes = self.nodes;
        let v = self.windows.entry(widx).or_default();
        if v.len() < nodes {
            v.resize(nodes, NodeWindow::default());
        }
        &mut v[rank]
    }
}

fn arg_u64(args: &[(String, Json)], key: &str) -> Option<u64> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
}

fn arg_f64(args: &[(String, Json)], key: &str) -> Option<f64> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

/// The streaming health monitor. Create one, [`subscribe`](crate::Recorder::subscribe)
/// it to the run's recorder, then pull [`report`](HealthMonitor::report)s —
/// live (the `--watch` dashboard re-renders it while ranks still run) or
/// once at the end for the `--health-out` JSONL.
pub struct HealthMonitor {
    window_ns: u64,
    rules: Vec<AlertRule>,
    inner: Mutex<MonitorInner>,
}

impl HealthMonitor {
    /// Monitor with the given window width and the [`default_rules`].
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "window width must be positive");
        HealthMonitor {
            window_ns,
            rules: default_rules(),
            inner: Mutex::new(MonitorInner::default()),
        }
    }

    /// Replace the rule set (builder style).
    pub fn with_rules(mut self, rules: Vec<AlertRule>) -> Self {
        self.rules = rules;
        self
    }

    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, MonitorInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mark every window overlapping `[ts, ts+dur)` active for `rank`.
    /// (OR-fold: invariant under span aggregation, since fast and stepped
    /// sched spans tile the same intervals.)
    fn mark_active(&self, m: &mut MonitorInner, rank: usize, ts: u64, dur: u64) {
        let w = self.window_ns;
        let (first_w, last_w) = (ts / w, if dur == 0 { ts / w } else { (ts + dur - 1) / w });
        for widx in first_w..=last_w {
            m.window_mut(widx, rank).active = true;
        }
    }

    /// Add the exact overlap of `[ts, ts+dur)` with each window to the
    /// field selected by `f`.
    fn add_overlap(
        &self,
        m: &mut MonitorInner,
        rank: usize,
        ts: u64,
        dur: u64,
        f: impl Fn(&mut NodeWindow, u64),
    ) {
        let w = self.window_ns;
        if dur == 0 {
            return;
        }
        let end = ts + dur;
        let mut t = ts;
        while t < end {
            let widx = t / w;
            let wend = (widx + 1) * w;
            let chunk = end.min(wend) - t;
            f(m.window_mut(widx, rank), chunk);
            t += chunk;
        }
    }

    /// Split integer attribute `attr` of span `[ts, ts+dur)` across the
    /// windows it overlaps by cumulative rounding: window `i` receives
    /// `prefix(end_i) - prefix(start_i)` with
    /// `prefix(t) = attr * (t - ts) / dur` in `u128`. The shares are exact
    /// integers summing to `attr`, and each window's share depends only on
    /// the span itself — order-independent and u64-exact.
    fn split_attr(
        &self,
        m: &mut MonitorInner,
        rank: usize,
        ts: u64,
        dur: u64,
        attr: u64,
        f: impl Fn(&mut NodeWindow, u64),
    ) {
        let w = self.window_ns;
        if attr == 0 {
            return;
        }
        if dur == 0 {
            f(m.window_mut(ts / w, rank), attr);
            return;
        }
        let prefix = |t: u64| -> u64 { ((attr as u128 * (t - ts) as u128) / dur as u128) as u64 };
        let end = ts + dur;
        let mut t = ts;
        let mut given = 0u64;
        while t < end {
            let widx = t / w;
            let wend = ((widx + 1) * w).min(end);
            let upto = prefix(wend);
            let share = upto - given;
            given = upto;
            if share > 0 {
                f(m.window_mut(widx, rank), share);
            }
            t = wend;
        }
        debug_assert_eq!(given, attr);
    }

    /// Current virtual-time progress: (max event end seen, min unflushed
    /// rank's watermark). Live-view aids only; never part of report content.
    pub fn progress(&self) -> (u64, u64) {
        let m = self.locked();
        let hi = m.watermark.iter().copied().max().unwrap_or(0);
        let lo = m
            .watermark
            .iter()
            .enumerate()
            .filter(|(r, _)| !m.flushed.contains(r))
            .map(|(_, &t)| t)
            .min()
            .unwrap_or(hi);
        (hi, lo)
    }

    /// Compute the full health report from everything streamed so far.
    /// A pure function of the accumulated (commutative) state: calling it
    /// mid-run gives the live view, calling it after the run gives the
    /// deterministic final report.
    pub fn report(&self) -> HealthReport {
        let m = self.locked();
        let w = self.window_ns;
        let nodes = m.nodes;
        let Some(last_widx) = m.windows.keys().next_back().copied() else {
            return HealthReport {
                window_ns: w,
                nodes,
                windows: Vec::new(),
            };
        };
        // Per-rank last activity (max event end), for the silence rule.
        let mut last_event = vec![0u64; nodes];
        for (widx, v) in &m.windows {
            for (rank, nw) in v.iter().enumerate() {
                if nw.active {
                    last_event[rank] = last_event[rank].max((widx + 1) * w);
                }
            }
        }

        let mut loads_iter = m.loads.values().peekable();
        let mut current_loads: Option<&Vec<u32>> = None;
        let mut pred_iter = m.predictions.values().peekable();
        let mut current_pred: Option<f64> = None;
        let mut removed: BTreeSet<usize> = BTreeSet::new();
        let empty = Vec::new();
        let mut depth = vec![0i64; nodes];
        let mut silent = vec![0u32; nodes];
        let mut streaks = vec![vec![0u32; self.rules.len()]; nodes];
        let mut windows: Vec<WindowReport> = Vec::with_capacity(last_widx as usize + 1);

        // Removal timeline, applied at each decision's timestamp: drops
        // and confirmed deaths take a node *out* (its silence is the
        // runtime's own doing — or already acted upon — so the alert
        // rules must not keep firing on it); rejoins and admissions bring
        // it *back* under the rules. Ties keep out-before-back order
        // (stable sort over build order), which only matters for the
        // degenerate same-timestamp case.
        enum Removal<'a> {
            Out(&'a [usize]),
            Dead(usize),
            Back(usize),
        }
        let mut removal_events: Vec<(u64, Removal)> = Vec::new();
        for (cycle, nodes) in &m.drops {
            if let Some(ts) = m.decisions.get(&(*cycle, "nodes-dropped".to_string())) {
                removal_events.push((*ts, Removal::Out(nodes)));
            }
        }
        for (cycle, node) in &m.deaths {
            if let Some(ts) = m
                .decisions
                .get(&(*cycle, "node-confirmed-dead".to_string()))
            {
                removal_events.push((*ts, Removal::Dead(*node)));
            }
        }
        for ((cycle, kind), node) in &m.returns {
            if let Some(ts) = m.decisions.get(&(*cycle, kind.clone())) {
                removal_events.push((*ts, Removal::Back(*node)));
            }
        }
        removal_events.sort_by_key(|(ts, _)| *ts);
        let mut removal_idx = 0;

        for widx in 0..=last_widx {
            let t_start = widx * w;
            let t_end = (widx + 1) * w;
            let stats = m.windows.get(&widx).unwrap_or(&empty);
            while loads_iter.peek().is_some_and(|(ts, _)| *ts < t_end) {
                current_loads = Some(&loads_iter.next().unwrap().1);
            }
            while pred_iter.peek().is_some_and(|(ts, _)| *ts < t_end) {
                current_pred = Some(pred_iter.next().unwrap().1);
            }
            while removal_idx < removal_events.len() && removal_events[removal_idx].0 < t_end {
                match &removal_events[removal_idx].1 {
                    Removal::Out(ns) => removed.extend(ns.iter().copied()),
                    Removal::Dead(n) => {
                        removed.insert(*n);
                    }
                    Removal::Back(n) => {
                        removed.remove(n);
                    }
                }
                removal_idx += 1;
            }

            // Effective flop rates while computing, and the cluster median.
            let rate = |nw: &NodeWindow| -> Option<f64> {
                (nw.busy_ns > 0).then(|| nw.work_uflop as f64 * 1e3 / nw.busy_ns as f64)
            };
            let mut rates: Vec<f64> = (0..nodes)
                .filter(|n| !removed.contains(n))
                .filter_map(|n| stats.get(n).and_then(rate))
                .collect();
            rates.sort_by(f64::total_cmp);
            let median_rate = (!rates.is_empty()).then(|| rates[rates.len() / 2]);

            let cluster_active = stats.iter().any(|nw| nw.active);
            let mut node_rows = Vec::with_capacity(nodes);
            let mut alerts = Vec::new();
            let mut busys: Vec<u64> = Vec::new();

            for node in 0..nodes {
                let nw = stats.get(node).cloned().unwrap_or_default();
                depth[node] += nw.sends_to as i64 - nw.recvs_by as i64;
                if nw.active {
                    silent[node] = 0;
                } else if cluster_active && !removed.contains(&node) && last_event[node] > t_end {
                    silent[node] += 1;
                }
                if !removed.contains(&node) && nw.busy_ns > 0 {
                    busys.push(nw.busy_ns);
                }

                let interference = (nw.busy_ns > 0)
                    .then(|| nw.busy_ns.saturating_sub(nw.cpu_ns) as f64 / nw.busy_ns as f64);
                let late_share = nw.late_ns as f64 / w as f64;
                let rel_rate = match (rate(&nw), median_rate) {
                    (Some(r), Some(med)) if med > 0.0 => Some(r / med),
                    _ => None,
                };

                let mut state = HealthState::Healthy;
                if !removed.contains(&node) {
                    for (ri, rule) in self.rules.iter().enumerate() {
                        let value = match rule.metric {
                            RuleMetric::InterferenceShare => interference,
                            RuleMetric::LateWaitShare => Some(late_share),
                            RuleMetric::RelativeFlopRate => rel_rate,
                            RuleMetric::QueueDepth => Some(depth[node] as f64),
                            RuleMetric::SilentWindows => Some(silent[node] as f64),
                        };
                        let streak = &mut streaks[node][ri];
                        match value {
                            Some(v) if rule.hit(v) => {
                                *streak += 1;
                                if *streak >= rule.sustain {
                                    state = state.max(rule.classify);
                                    if *streak == rule.sustain {
                                        alerts.push(Alert {
                                            rule: rule.name,
                                            node,
                                            state: rule.classify,
                                            value: v,
                                            ts_ns: t_end,
                                        });
                                    }
                                }
                            }
                            Some(_) => *streak = 0,
                            // No data: hold the streak (idling through a
                            // redistribution neither clears nor advances).
                            None => {}
                        }
                    }
                } else {
                    streaks[node].iter_mut().for_each(|s| *s = 0);
                }

                node_rows.push(NodeHealth {
                    node,
                    state,
                    removed: removed.contains(&node),
                    eff_mflops: rate(&nw).map_or(0.0, |r| r / 1e6),
                    interference_share: interference.unwrap_or(0.0),
                    late_wait_share: late_share,
                    queue_depth: depth[node],
                    busy_ns: nw.busy_ns,
                    cpu_ns: nw.cpu_ns,
                    wait_ns: nw.wait_ns,
                    ncp: current_loads
                        .and_then(|l| l.get(node).copied())
                        .unwrap_or(0),
                });
            }

            let measured_imbalance = if busys.is_empty() {
                1.0
            } else {
                let max = *busys.iter().max().unwrap() as f64;
                let mean = busys.iter().sum::<u64>() as f64 / busys.len() as f64;
                max / mean
            };

            let decisions: Vec<Decision> = m
                .decisions
                .iter()
                .filter(|(_, &ts)| ts >= t_start && ts < t_end)
                .map(|((cycle, kind), &ts)| Decision {
                    kind: kind.clone(),
                    cycle: *cycle,
                    ts_ns: ts,
                })
                .collect();

            windows.push(WindowReport {
                index: widx,
                t_start_ns: t_start,
                t_end_ns: t_end,
                nodes: node_rows,
                alerts,
                decisions,
                measured_imbalance,
                predicted_imbalance: current_pred,
            });
        }

        // Sort each window's decisions by timestamp for presentation (the
        // BTreeMap iterates by (cycle, kind), not time).
        for win in &mut windows {
            win.decisions
                .sort_by_key(|d| (d.ts_ns, d.cycle, d.kind.clone()));
        }
        HealthReport {
            window_ns: w,
            nodes,
            windows,
        }
    }
}

impl EventSink for HealthMonitor {
    fn on_event(&self, ev: &TraceEvent) {
        let mut m = self.locked();
        let rank = ev.rank();
        m.note_rank(rank);
        match ev {
            TraceEvent::Complete {
                cat,
                name,
                ts_ns,
                dur_ns,
                args,
                ..
            } => {
                let (ts, dur) = (*ts_ns, *dur_ns);
                m.watermark[rank] = m.watermark[rank].max(ts + dur);
                self.mark_active(&mut m, rank, ts, dur);
                match (*cat, name.as_str()) {
                    ("runtime", "charge_rows") | ("runtime", "grace_measure") => {
                        self.add_overlap(&mut m, rank, ts, dur, |nw, c| nw.busy_ns += c);
                        if let Some(cpu) = arg_u64(args, "cpu_ns") {
                            self.split_attr(&mut m, rank, ts, dur, cpu, |nw, c| nw.cpu_ns += c);
                        }
                        if let Some(work) = arg_u64(args, "work_uflop") {
                            self.split_attr(&mut m, rank, ts, dur, work, |nw, c| {
                                nw.work_uflop += c
                            });
                        }
                    }
                    ("sched", "blocked") => {
                        self.add_overlap(&mut m, rank, ts, dur, |nw, c| nw.wait_ns += c);
                    }
                    ("runtime", "balance") => {
                        if let (Some(cycle), Some(pred)) =
                            (arg_u64(args, "cycle"), arg_f64(args, "predicted_imbalance"))
                        {
                            let end = ts + dur;
                            m.predictions
                                .entry(cycle)
                                .and_modify(|e| e.0 = e.0.min(end))
                                .or_insert((end, pred));
                        }
                    }
                    _ => {}
                }
            }
            TraceEvent::Instant {
                cat,
                name,
                ts_ns,
                args,
                ..
            } => {
                let ts = *ts_ns;
                m.watermark[rank] = m.watermark[rank].max(ts);
                self.mark_active(&mut m, rank, ts, 0);
                match (*cat, name.as_str()) {
                    ("comm", "send") => {
                        if let Some(peer) = arg_u64(args, "peer") {
                            let peer = peer as usize;
                            m.note_rank(peer);
                            m.window_mut(ts / self.window_ns, peer).sends_to += 1;
                        }
                    }
                    ("comm", "recv") => {
                        let widx = ts / self.window_ns;
                        let nw = m.window_mut(widx, rank);
                        nw.recvs_by += 1;
                        if let Some(late) = arg_u64(args, "late_ns") {
                            nw.late_ns += late;
                        }
                        if let Some(net) = arg_u64(args, "net_ns") {
                            nw.net_ns += net;
                        }
                    }
                    ("runtime", kind) if DECISION_KINDS.contains(&kind) => {
                        let cycle = arg_u64(args, "cycle").unwrap_or(0);
                        m.decisions
                            .entry((cycle, kind.to_string()))
                            .and_modify(|e| *e = (*e).min(ts))
                            .or_insert(ts);
                        if kind == "load-change" {
                            if let Some(Json::Arr(loads)) =
                                args.iter().find(|(k, _)| k == "loads").map(|(_, v)| v)
                            {
                                let vec: Vec<u32> = loads
                                    .iter()
                                    .filter_map(|v| v.as_u64())
                                    .map(|v| v as u32)
                                    .collect();
                                m.loads
                                    .entry(cycle)
                                    .and_modify(|e| e.0 = e.0.min(ts))
                                    .or_insert((ts, vec));
                            }
                        }
                        if kind == "nodes-dropped" {
                            if let Some(Json::Arr(nodes)) =
                                args.iter().find(|(k, _)| k == "nodes").map(|(_, v)| v)
                            {
                                let vec: Vec<usize> = nodes
                                    .iter()
                                    .filter_map(|v| v.as_u64())
                                    .map(|v| v as usize)
                                    .collect();
                                m.drops.entry(cycle).or_insert(vec);
                            }
                        }
                        if kind == "node-confirmed-dead" {
                            if let Some(node) = arg_u64(args, "node") {
                                m.deaths.entry(cycle).or_insert(node as usize);
                            }
                        }
                        if kind == "node-rejoined" || kind == "node-admitted" {
                            if let Some(node) = arg_u64(args, "node") {
                                m.returns
                                    .entry((cycle, kind.to_string()))
                                    .or_insert(node as usize);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn on_span_open(&self, rank: usize, _cat: &'static str, _name: &str, ts_ns: u64) {
        let mut m = self.locked();
        m.note_rank(rank);
        m.watermark[rank] = m.watermark[rank].max(ts_ns);
    }

    fn on_rank_flush(&self, rank: usize) {
        let mut m = self.locked();
        m.note_rank(rank);
        m.flushed.insert(rank);
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// One node's health in one window.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeHealth {
    pub node: usize,
    pub state: HealthState,
    /// The runtime dropped this node in an earlier cycle.
    pub removed: bool,
    /// Effective compute rate while executing, Mflop/s (0 when idle).
    pub eff_mflops: f64,
    pub interference_share: f64,
    pub late_wait_share: f64,
    /// Outstanding messages destined to this node at window end.
    pub queue_depth: i64,
    pub busy_ns: u64,
    pub cpu_ns: u64,
    pub wait_ns: u64,
    /// Competing processes per the runtime's last broadcast load vector.
    pub ncp: u32,
}

/// An alert that fired (its rule's streak reached `sustain`) in a window.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    pub rule: &'static str,
    pub node: usize,
    pub state: HealthState,
    /// The metric value that tripped the rule.
    pub value: f64,
    /// Virtual timestamp: the end of the tripping window.
    pub ts_ns: u64,
}

/// A runtime adaptation decision mirrored onto the health timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    pub kind: String,
    pub cycle: u64,
    pub ts_ns: u64,
}

/// One window of the health timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowReport {
    pub index: u64,
    pub t_start_ns: u64,
    pub t_end_ns: u64,
    pub nodes: Vec<NodeHealth>,
    pub alerts: Vec<Alert>,
    pub decisions: Vec<Decision>,
    /// max/mean busy time across active nodes (1.0 when idle).
    pub measured_imbalance: f64,
    /// The balancer's latest predicted post-redistribution imbalance.
    pub predicted_imbalance: Option<f64>,
}

/// The monitor's full output: every window since t = 0.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthReport {
    pub window_ns: u64,
    pub nodes: usize,
    pub windows: Vec<WindowReport>,
}

impl HealthReport {
    /// `HealthSnapshot` JSONL: one object per window (DESIGN.md §11 schema).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            let nodes = Json::Arr(
                w.nodes
                    .iter()
                    .map(|n| {
                        Json::obj([
                            ("node", Json::UInt(n.node as u64)),
                            ("state", Json::str(n.state.name())),
                            ("removed", Json::Bool(n.removed)),
                            ("eff_mflops", Json::Num(n.eff_mflops)),
                            ("interference_share", Json::Num(n.interference_share)),
                            ("late_wait_share", Json::Num(n.late_wait_share)),
                            ("queue_depth", Json::Num(n.queue_depth as f64)),
                            ("busy_ns", Json::UInt(n.busy_ns)),
                            ("cpu_ns", Json::UInt(n.cpu_ns)),
                            ("wait_ns", Json::UInt(n.wait_ns)),
                            ("ncp", Json::UInt(n.ncp as u64)),
                        ])
                    })
                    .collect(),
            );
            let alerts = Json::Arr(
                w.alerts
                    .iter()
                    .map(|a| {
                        Json::obj([
                            ("rule", Json::str(a.rule)),
                            ("node", Json::UInt(a.node as u64)),
                            ("state", Json::str(a.state.name())),
                            ("value", Json::Num(a.value)),
                            ("ts_ns", Json::UInt(a.ts_ns)),
                        ])
                    })
                    .collect(),
            );
            let decisions = Json::Arr(
                w.decisions
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("kind", Json::str(d.kind.clone())),
                            ("cycle", Json::UInt(d.cycle)),
                            ("ts_ns", Json::UInt(d.ts_ns)),
                        ])
                    })
                    .collect(),
            );
            let mut imbalance = vec![("measured".to_string(), Json::Num(w.measured_imbalance))];
            if let Some(p) = w.predicted_imbalance {
                imbalance.push(("predicted".to_string(), Json::Num(p)));
            }
            let doc = Json::obj([
                ("window", Json::UInt(w.index)),
                ("t_start_ns", Json::UInt(w.t_start_ns)),
                ("t_end_ns", Json::UInt(w.t_end_ns)),
                ("nodes", nodes),
                ("alerts", alerts),
                ("decisions", decisions),
                ("imbalance", Json::Obj(imbalance)),
            ]);
            out.push_str(&doc.to_string());
            out.push('\n');
        }
        out
    }

    /// Text dashboard frame: node table for the latest window, currently
    /// sustained alerts, and the most recent decisions. Pure rendering —
    /// the `--watch` loop in the bench harness re-prints it in place.
    pub fn render_dashboard(&self) -> String {
        let mut out = String::new();
        let Some(last) = self.windows.last() else {
            return "health: no events yet\n".to_string();
        };
        let _ = writeln!(
            out,
            "Dyn-MPI health — virtual t={:.3}s, window {}ms, #{}",
            last.t_end_ns as f64 / 1e9,
            self.window_ns / 1_000_000,
            last.index
        );
        let _ = writeln!(
            out,
            "{:<5} {:<12} {:>11} {:>8} {:>7} {:>7} {:>4}",
            "node", "state", "eff Mflop/s", "interf%", "late%", "qdepth", "ncp"
        );
        for n in &last.nodes {
            let state = if n.removed { "removed" } else { n.state.name() };
            let _ = writeln!(
                out,
                "{:<5} {:<12} {:>11.2} {:>8.0} {:>7.0} {:>7} {:>4}",
                n.node,
                state,
                n.eff_mflops,
                n.interference_share * 100.0,
                n.late_wait_share * 100.0,
                n.queue_depth,
                n.ncp
            );
        }
        let _ = writeln!(
            out,
            "imbalance: measured {:.2}{}",
            last.measured_imbalance,
            last.predicted_imbalance
                .map(|p| format!(", balancer predicted {p:.2}"))
                .unwrap_or_default()
        );
        let active: Vec<&Alert> = self
            .windows
            .iter()
            .flat_map(|w| &w.alerts)
            .filter(|a| {
                // An alert is "active" if its node still carries the
                // classification in the latest window.
                last.nodes
                    .get(a.node)
                    .is_some_and(|n| n.state >= a.state && n.state != HealthState::Healthy)
            })
            .collect();
        if active.is_empty() {
            let _ = writeln!(out, "alerts: none active");
        } else {
            let _ = writeln!(out, "alerts:");
            for a in active.iter().rev().take(6) {
                let _ = writeln!(
                    out,
                    "  {} node {} ({}) value {:.2} @{:.3}s",
                    a.rule,
                    a.node,
                    a.state.name(),
                    a.value,
                    a.ts_ns as f64 / 1e9
                );
            }
        }
        let decisions: Vec<&Decision> = self.windows.iter().flat_map(|w| &w.decisions).collect();
        if decisions.is_empty() {
            let _ = writeln!(out, "decisions: none yet");
        } else {
            let _ = writeln!(out, "decisions:");
            let skip = decisions.len().saturating_sub(5);
            for d in decisions.into_iter().skip(skip) {
                let _ = writeln!(
                    out,
                    "  {} cycle {} @{:.3}s",
                    d.kind,
                    d.cycle,
                    d.ts_ns as f64 / 1e9
                );
            }
        }
        out
    }

    /// All alerts across all windows, in timeline order.
    pub fn alerts(&self) -> Vec<&Alert> {
        self.windows.iter().flat_map(|w| &w.alerts).collect()
    }

    /// All decisions across all windows, in timeline order.
    pub fn decisions(&self) -> Vec<&Decision> {
        self.windows.iter().flat_map(|w| &w.decisions).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        cat: &'static str,
        name: &str,
        rank: usize,
        ts: u64,
        dur: u64,
        args: Vec<(String, Json)>,
    ) -> TraceEvent {
        TraceEvent::Complete {
            cat,
            name: name.to_string(),
            rank,
            ts_ns: ts,
            dur_ns: dur,
            args,
        }
    }

    fn charge(rank: usize, ts: u64, dur: u64, cpu: u64, work: u64) -> TraceEvent {
        span(
            "runtime",
            "charge_rows",
            rank,
            ts,
            dur,
            vec![
                ("rows".to_string(), Json::UInt(10)),
                ("cpu_ns".to_string(), Json::UInt(cpu)),
                ("work_uflop".to_string(), Json::UInt(work)),
            ],
        )
    }

    #[test]
    fn split_attr_is_exact_across_boundaries() {
        let mon = HealthMonitor::new(100);
        // A span crossing three windows with an attr that does not divide
        // evenly: shares must sum exactly.
        mon.on_event(&charge(0, 50, 230, 77, 1_000_003));
        let m = mon.locked();
        let cpu: u64 = m.windows.values().map(|v| v[0].cpu_ns).sum();
        let work: u64 = m.windows.values().map(|v| v[0].work_uflop).sum();
        let busy: u64 = m.windows.values().map(|v| v[0].busy_ns).sum();
        assert_eq!(cpu, 77);
        assert_eq!(work, 1_000_003);
        assert_eq!(busy, 230);
        assert_eq!(m.windows.len(), 3);
    }

    #[test]
    fn order_independent_report() {
        let events = [
            charge(0, 0, 90, 90, 500),
            charge(1, 0, 180, 90, 500),
            span("sched", "blocked", 0, 90, 90, vec![]),
            TraceEvent::Instant {
                cat: "comm",
                name: "recv".to_string(),
                rank: 0,
                ts_ns: 180,
                args: vec![
                    ("late_ns".to_string(), Json::UInt(60)),
                    ("net_ns".to_string(), Json::UInt(30)),
                ],
            },
        ];
        let fwd = HealthMonitor::new(100);
        events.iter().for_each(|e| fwd.on_event(e));
        let rev = HealthMonitor::new(100);
        events.iter().rev().for_each(|e| rev.on_event(e));
        assert_eq!(fwd.report(), rev.report());
        assert_eq!(fwd.report().to_jsonl(), rev.report().to_jsonl());
    }

    #[test]
    fn straggler_fires_after_sustain_windows() {
        let mon = HealthMonitor::new(100);
        // Node 1 computes at half node 0's rate from window 2 onward.
        for w in 0..6u64 {
            let slow = w >= 2;
            mon.on_event(&charge(0, w * 100, 80, 80, 800));
            let work = if slow { 400 } else { 800 };
            mon.on_event(&charge(1, w * 100, 80, if slow { 40 } else { 80 }, work));
        }
        let report = mon.report();
        let alerts = report.alerts();
        let strag: Vec<_> = alerts.iter().filter(|a| a.rule == "straggler").collect();
        assert_eq!(strag.len(), 1, "{alerts:?}");
        assert_eq!(strag[0].node, 1);
        // sustain = 2: hit in windows 2 and 3 ⇒ fires at end of window 3.
        assert_eq!(strag[0].ts_ns, 400);
        // And the node is classified Straggler from window 3 onward.
        assert_eq!(report.windows[3].nodes[1].state, HealthState::Straggler);
        assert_eq!(report.windows[1].nodes[1].state, HealthState::Healthy);
    }

    #[test]
    fn interference_marks_degraded() {
        let mon = HealthMonitor::new(100);
        for w in 0..4u64 {
            // busy 80, cpu 40 ⇒ interference share 0.5 > 0.2.
            mon.on_event(&charge(0, w * 100, 80, 40, 400));
            mon.on_event(&charge(1, w * 100, 80, 80, 400));
        }
        let report = mon.report();
        assert!(report
            .alerts()
            .iter()
            .any(|a| a.rule == "interference" && a.node == 0));
        assert_eq!(report.windows[3].nodes[0].state, HealthState::Degraded);
        assert_eq!(report.windows[3].nodes[1].state, HealthState::Healthy);
    }

    #[test]
    fn silence_marks_suspect_dead() {
        let mon = HealthMonitor::new(100);
        // Node 1 emits through window 9 (so last_event stays ahead), but
        // goes silent from window 2 on while node 0 keeps computing.
        mon.on_event(&charge(1, 0, 150, 150, 500));
        mon.on_event(&charge(1, 950, 40, 40, 100));
        for w in 0..10u64 {
            mon.on_event(&charge(0, w * 100, 80, 80, 400));
        }
        let report = mon.report();
        let dead: Vec<_> = report
            .alerts()
            .into_iter()
            .filter(|a| a.rule == "silent")
            .collect();
        assert!(!dead.is_empty());
        assert!(dead.iter().all(|a| a.node == 1));
    }

    #[test]
    fn decisions_dedup_across_ranks_by_min_ts() {
        let mon = HealthMonitor::new(100);
        for rank in 0..3 {
            mon.on_event(&TraceEvent::Instant {
                cat: "runtime",
                name: "redistributed".to_string(),
                rank,
                ts_ns: 250 + rank as u64, // each rank stamps its own time
                args: vec![("cycle".to_string(), Json::UInt(15))],
            });
        }
        let report = mon.report();
        let ds = report.decisions();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].ts_ns, 250);
        assert_eq!(ds[0].cycle, 15);
    }

    #[test]
    fn queue_depth_accumulates_across_windows() {
        let mon = HealthMonitor::new(100);
        for i in 0..5u64 {
            mon.on_event(&TraceEvent::Instant {
                cat: "comm",
                name: "send".to_string(),
                rank: 0,
                ts_ns: i * 40,
                args: vec![("peer".to_string(), Json::UInt(1))],
            });
        }
        mon.on_event(&TraceEvent::Instant {
            cat: "comm",
            name: "recv".to_string(),
            rank: 1,
            ts_ns: 150,
            args: vec![],
        });
        let report = mon.report();
        // Windows: sends at 0,40,80 (w0) and 120,160 (w1); recv in w1.
        assert_eq!(report.windows[0].nodes[1].queue_depth, 3);
        assert_eq!(report.windows[1].nodes[1].queue_depth, 4);
    }

    #[test]
    fn dashboard_renders() {
        let mon = HealthMonitor::new(100);
        mon.on_event(&charge(0, 0, 80, 40, 400));
        let text = mon.report().render_dashboard();
        assert!(text.contains("Dyn-MPI health"));
        assert!(text.contains("node"));
        assert!(HealthMonitor::new(1)
            .report()
            .render_dashboard()
            .contains("no events"));
    }
}
