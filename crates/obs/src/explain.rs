//! Decision audit & causal explanation (DESIGN.md §15).
//!
//! The health monitor (§11) describes *state* and the profiler (§10)
//! describes *time*; this module explains *actions*. An [`ExplainEngine`]
//! subscribes to a [`Recorder`](crate::Recorder) as an
//! [`EventSink`](crate::EventSink) and reconstructs, for every runtime
//! decision, the full causal chain:
//!
//! * **inputs** — the decision's complete argument snapshot (per-node
//!   loads, margins, predicted vs. measured cycle times), taken from the
//!   exact-u64 `*_ns`/`*_ppm` trace attributes the runtime events carry;
//! * **counterfactual** — the predicted makespan-per-cycle had the
//!   decision gone the other way. Both branches of every go/no-go rule
//!   (`should_drop`, the expansion rule) are computed by the runtime from
//!   the same replicated control data, so the not-taken branch is already
//!   in the event: for a drop that happened, keeping the node predicts the
//!   *measured* steady state; for a drop that did not, dropping predicts
//!   the `predicted_unloaded` model value. Deterministic by construction.
//! * **trigger chain** — which health alerts (straggler / interference /
//!   silent), on which nodes, preceded the decision on the virtual
//!   timeline, followed by the upstream runtime events (load-change,
//!   grace-complete, arrival) that carried the episode to the decision;
//! * **realized outcome** — the measured makespan-per-cycle in a window
//!   after the post-decision settling cycles, against the card's
//!   prediction. This generalizes the profiler's per-redistribution
//!   [`CycleAudit`](crate::CycleAudit) to every decision kind.
//!
//! Confirmed deaths additionally produce a **flight record**: detection
//! latency (first Suspect → Confirmed, in cycles and virtual ns), replay
//! cost (rollback depth, restored rows, recovery wall time), the buddy
//! that held the checkpoint, and — when the harness reports it — whether
//! the final checksum survived intact.
//!
//! Determinism contract: every fold is commutative and keyed by virtual
//! time ((cycle, kind) min-timestamp dedup of the replicated decision
//! instants, single-valued per-(cycle, rank) boundaries, the embedded
//! [`HealthMonitor`]'s windows), so the report — and its JSONL — is a pure
//! function of the event *set*: byte-identical across `--threads`,
//! `--shards`, and fast vs. stepped engine modes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::analysis::BlameEntry;
use crate::health::{Alert, HealthMonitor};
use crate::json::Json;
use crate::trace::{EventSink, TraceEvent};

/// Cycles skipped after a decision before its "after" outcome window
/// starts (control-pipeline lag pollutes them) — mirrors the profiler's
/// audit settle.
pub const EXPLAIN_SETTLE: u64 = 2;

/// Outcome window length in cycles, on each side of a decision — mirrors
/// the profiler's audit window.
pub const EXPLAIN_WINDOW: u64 = 3;

/// Decision kinds that get a card of their own. The remaining runtime
/// events (load-change, grace-complete, arrivals, drops-enacted,
/// suspect/confirm/recover) appear inside cards as chain links or flight
/// records rather than as cards.
const CARD_KINDS: &[&str] = &[
    "redistributed",
    "redist-skipped",
    "drop-evaluated",
    "expand-evaluated",
    "node-rejoined",
];

fn arg_u64(args: &[(String, Json)], key: &str) -> Option<u64> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
}

fn arg_bool(args: &[(String, Json)], key: &str) -> Option<bool> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_bool())
}

fn arg_usize_arr(args: &[(String, Json)], key: &str) -> Vec<usize> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_arr())
        .map(|a| {
            a.iter()
                .filter_map(Json::as_u64)
                .map(|v| v as usize)
                .collect()
        })
        .unwrap_or_default()
}

/// One replicated decision instant, deduped across ranks: the earliest
/// (ts, rank) wins; its args are the canonical snapshot (replicated
/// decisions broadcast their inputs, so every rank's copy is identical).
#[derive(Clone, Debug)]
struct DecisionInstant {
    ts_ns: u64,
    rank: usize,
    args: Vec<(String, Json)>,
}

#[derive(Default)]
struct ExplainInner {
    /// (cycle, kind) → earliest rank's instant (min (ts, rank) fold).
    decisions: BTreeMap<(u64, String), DecisionInstant>,
    /// (cycle, node) → earliest Suspect instant for that node.
    suspects: BTreeMap<(u64, usize), u64>,
    /// (cycle, rank) → `begin_cycle` instant timestamp (min fold — a
    /// replayed cycle after a rollback keeps its first, pre-crash bound).
    begin_cycle: BTreeMap<(u64, usize), u64>,
    /// (cycle, rank) → `end_cycle` span end (min fold, same reason).
    end_cycle: BTreeMap<(u64, usize), u64>,
    /// cycle → (earliest balance-span end, predicted post-balance
    /// imbalance) from the `balance` span.
    predictions: BTreeMap<u64, (u64, f64)>,
    /// Harness-reported post-run verdict: did the final checksum match
    /// the crash-free baseline? Folded into every flight record.
    checksum_intact: Option<bool>,
}

/// The streaming decision-audit engine. Create one, subscribe it to the
/// run's recorder (before installing rank scopes), then pull a
/// [`report`](ExplainEngine::report) at the end for the `--explain-out`
/// JSONL and text rendering.
pub struct ExplainEngine {
    monitor: HealthMonitor,
    inner: Mutex<ExplainInner>,
}

impl ExplainEngine {
    /// Engine with the given health-window width (the embedded monitor
    /// supplies the alert timeline that cards link as triggers).
    pub fn new(window_ns: u64) -> Self {
        ExplainEngine {
            monitor: HealthMonitor::new(window_ns),
            inner: Mutex::new(ExplainInner::default()),
        }
    }

    pub fn window_ns(&self) -> u64 {
        self.monitor.window_ns()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, ExplainInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Harness hook: record whether the run's final checksum matched the
    /// crash-free baseline. Shown on every flight record.
    pub fn set_checksum_intact(&self, intact: bool) {
        self.locked().checksum_intact = Some(intact);
    }

    /// Assemble the full explain report from everything streamed so far —
    /// a pure function of the accumulated commutative state.
    pub fn report(&self) -> ExplainReport {
        let health = self.monitor.report();
        let alerts: Vec<Alert> = health.alerts().into_iter().cloned().collect();
        let m = self.locked();

        // Per-cycle realized wall time: max (makespan-per-cycle) and mean
        // across ranks reporting both bounds.
        let mut walls: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (&(cycle, rank), &b) in &m.begin_cycle {
            if let Some(&e) = m.end_cycle.get(&(cycle, rank)) {
                if e > b {
                    walls.entry(cycle).or_default().push(e - b);
                }
            }
        }
        let max_wall: BTreeMap<u64, u64> = walls
            .iter()
            .map(|(&c, v)| (c, *v.iter().max().unwrap()))
            .collect();
        let mean_wall: BTreeMap<u64, u64> = walls
            .iter()
            .map(|(&c, v)| {
                let sum: u128 = v.iter().map(|&x| x as u128).sum();
                (c, (sum / v.len() as u128) as u64)
            })
            .collect();
        let window_mean = |map: &BTreeMap<u64, u64>, lo: u64, hi: u64| -> Option<u64> {
            let vals: Vec<u64> = (lo..=hi).filter_map(|c| map.get(&c).copied()).collect();
            (!vals.is_empty()).then(|| {
                let sum: u128 = vals.iter().map(|&x| x as u128).sum();
                (sum / vals.len() as u128) as u64
            })
        };
        let outcome_for = |cycle: u64, predicted: Option<u64>| -> Outcome {
            let before = (cycle > 1)
                .then(|| {
                    let lo = cycle.saturating_sub(EXPLAIN_WINDOW).max(1);
                    window_mean(&max_wall, lo, cycle - 1)
                })
                .flatten();
            let after = window_mean(
                &max_wall,
                cycle + EXPLAIN_SETTLE,
                cycle + EXPLAIN_SETTLE + EXPLAIN_WINDOW - 1,
            );
            Outcome {
                before_ns: before,
                after_ns: after,
                delta_vs_predicted_ns: match (after, predicted) {
                    (Some(a), Some(p)) => Some(a as i64 - p as i64),
                    _ => None,
                },
            }
        };

        // Most recent decision of `kind` at or before `ts`, optionally on
        // a specific node.
        let latest = |kind: &str, ts: u64, node: Option<usize>| -> Option<ChainLink> {
            m.decisions
                .iter()
                .filter(|((_, k), d)| {
                    k == kind
                        && d.ts_ns <= ts
                        && node.is_none_or(|n| arg_u64(&d.args, "node") == Some(n as u64))
                })
                .max_by_key(|((cycle, _), d)| (d.ts_ns, *cycle))
                .map(|((cycle, kind), d)| ChainLink::Decision {
                    kind: kind.clone(),
                    cycle: *cycle,
                    ts_ns: d.ts_ns,
                })
        };
        // Alerts preceding `ts` on the implicated nodes, latest per
        // (node, rule), in timeline order.
        let triggers_for = |ts: u64, nodes: &[usize]| -> Vec<ChainLink> {
            let mut latest_alert: BTreeMap<(usize, &'static str), &Alert> = BTreeMap::new();
            for a in &alerts {
                if a.ts_ns <= ts && (nodes.is_empty() || nodes.contains(&a.node)) {
                    let e = latest_alert.entry((a.node, a.rule)).or_insert(a);
                    if a.ts_ns > e.ts_ns {
                        *e = a;
                    }
                }
            }
            let mut links: Vec<ChainLink> = latest_alert
                .values()
                .map(|a| ChainLink::Alert {
                    rule: a.rule,
                    node: a.node,
                    state: a.state.name(),
                    value: a.value,
                    ts_ns: a.ts_ns,
                })
                .collect();
            links.sort_by_key(|a| a.sort_key());
            links
        };

        let mut cards: Vec<DecisionCard> = Vec::new();
        for ((cycle, kind), d) in &m.decisions {
            if !CARD_KINDS.contains(&kind.as_str()) {
                continue;
            }
            let (cycle, ts) = (*cycle, d.ts_ns);
            // Implicated nodes, prediction, and counterfactual per kind.
            let mut taken = kind.clone();
            let mut nodes: Vec<usize> = Vec::new();
            let mut predicted = None;
            let mut counterfactual = None;
            match kind.as_str() {
                "drop-evaluated" => {
                    nodes = arg_usize_arr(&d.args, "loaded");
                    let pred_unloaded = arg_u64(&d.args, "predicted_unloaded_ns");
                    let measured = arg_u64(&d.args, "measured_max_ns");
                    if arg_bool(&d.args, "dropped") == Some(true) {
                        taken = "drop".to_string();
                        predicted = pred_unloaded;
                        counterfactual = measured;
                    } else {
                        taken = "keep".to_string();
                        predicted = measured;
                        counterfactual = pred_unloaded;
                    }
                }
                "expand-evaluated" => {
                    nodes = arg_u64(&d.args, "node")
                        .map(|n| n as usize)
                        .into_iter()
                        .collect();
                    let pred_with = arg_u64(&d.args, "predicted_with_ns");
                    let measured = arg_u64(&d.args, "measured_max_ns");
                    if arg_bool(&d.args, "admitted") == Some(true) {
                        taken = "admit".to_string();
                        predicted = pred_with;
                        counterfactual = measured;
                    } else {
                        taken = "reject".to_string();
                        predicted = measured;
                        counterfactual = pred_with;
                    }
                }
                "redistributed" | "redist-skipped" => {
                    taken = if kind == "redistributed" {
                        "redistribute".to_string()
                    } else {
                        "skip".to_string()
                    };
                    // Implicated: the loaded nodes of the episode's load
                    // vector (the most recent load-change broadcast).
                    if let Some(((_, _), lc)) = m
                        .decisions
                        .iter()
                        .filter(|((_, k), lc)| k == "load-change" && lc.ts_ns <= ts)
                        .max_by_key(|((c, _), lc)| (lc.ts_ns, *c))
                    {
                        nodes = arg_usize_arr(&lc.args, "loads")
                            .iter()
                            .enumerate()
                            .filter(|(_, &l)| l > 0)
                            .map(|(n, _)| n)
                            .collect();
                    }
                    // The balancer predicts a post-balance *imbalance*;
                    // scaled by the pre-move mean cycle time it becomes a
                    // predicted makespan-per-cycle. Skipping keeps the
                    // measured status quo — that is the counterfactual
                    // (and the prediction, when the move was skipped).
                    let lo = cycle.saturating_sub(EXPLAIN_WINDOW).max(1);
                    let before_mean = (cycle > 1)
                        .then(|| window_mean(&mean_wall, lo, cycle - 1))
                        .flatten();
                    let before_max = (cycle > 1)
                        .then(|| window_mean(&max_wall, lo, cycle - 1))
                        .flatten();
                    let balanced = match (before_mean, m.predictions.get(&cycle)) {
                        (Some(mean), Some(&(_, pred))) if pred.is_finite() && pred > 0.0 => {
                            Some((mean as f64 * pred).round() as u64)
                        }
                        _ => None,
                    };
                    if kind == "redistributed" {
                        predicted = balanced;
                        counterfactual = before_max;
                    } else {
                        predicted = before_max;
                        counterfactual = balanced;
                    }
                }
                "node-rejoined" => {
                    taken = "rejoin".to_string();
                    nodes = arg_u64(&d.args, "node")
                        .map(|n| n as usize)
                        .into_iter()
                        .collect();
                }
                _ => {}
            }

            // Chain: alerts, then the upstream runtime events, then the
            // decision itself, then its enactment (if any).
            let mut chain = triggers_for(ts, &nodes);
            match kind.as_str() {
                "redistributed" | "redist-skipped" | "drop-evaluated" => {
                    chain.extend(latest("load-change", ts, None));
                    chain.extend(latest("grace-complete", ts, None));
                }
                "expand-evaluated" => {
                    chain.extend(latest("node-arrived", ts, nodes.first().copied()));
                    chain.extend(latest("grace-complete", ts, None));
                }
                _ => {}
            }
            chain.push(ChainLink::Decision {
                kind: kind.clone(),
                cycle,
                ts_ns: ts,
            });
            let enact_kind = match (kind.as_str(), taken.as_str()) {
                ("drop-evaluated", "drop") => Some("nodes-dropped"),
                ("expand-evaluated", "admit") => Some("node-admitted"),
                _ => None,
            };
            if let Some(ek) = enact_kind {
                if let Some(e) = m.decisions.get(&(cycle, ek.to_string())) {
                    chain.push(ChainLink::Decision {
                        kind: ek.to_string(),
                        cycle,
                        ts_ns: e.ts_ns,
                    });
                }
            }

            cards.push(DecisionCard {
                kind: kind.clone(),
                cycle,
                ts_ns: ts,
                taken,
                nodes,
                inputs: d.args.clone(),
                predicted_ns: predicted,
                counterfactual_ns: counterfactual,
                outcome: outcome_for(cycle, predicted),
                chain,
            });
        }
        cards.sort_by(|a, b| (a.ts_ns, a.cycle, &a.kind).cmp(&(b.ts_ns, b.cycle, &b.kind)));

        // Flight records: one per confirmed death.
        let mut flights: Vec<FlightRecord> = Vec::new();
        for ((cycle, kind), d) in &m.decisions {
            if kind != "node-confirmed-dead" {
                continue;
            }
            let (cycle, ts) = (*cycle, d.ts_ns);
            let Some(node) = arg_u64(&d.args, "node").map(|n| n as usize) else {
                continue;
            };
            let silent_cycles = arg_u64(&d.args, "silent_cycles").unwrap_or(0) as u32;
            // First Suspect of the streak that ended in this confirmation.
            let streak_lo = cycle.saturating_sub(u64::from(silent_cycles).saturating_sub(1));
            let suspected_ts = m
                .suspects
                .iter()
                .filter(|(&(c, n), &sts)| n == node && c >= streak_lo && c <= cycle && sts <= ts)
                .map(|(_, &sts)| sts)
                .min()
                .unwrap_or(ts);
            let recovered = m.decisions.get(&(cycle, "node-recovered".to_string()));
            let mut chain = triggers_for(ts, &[node]);
            if let Some(&sts) = m.suspects.get(&(streak_lo, node)) {
                chain.push(ChainLink::Decision {
                    kind: "node-suspected".to_string(),
                    cycle: streak_lo,
                    ts_ns: sts,
                });
            }
            chain.push(ChainLink::Decision {
                kind: "node-confirmed-dead".to_string(),
                cycle,
                ts_ns: ts,
            });
            if let Some(r) = recovered {
                chain.push(ChainLink::Decision {
                    kind: "node-recovered".to_string(),
                    cycle,
                    ts_ns: r.ts_ns,
                });
            }
            let rollback_to = recovered.and_then(|r| arg_u64(&r.args, "rollback_to"));
            flights.push(FlightRecord {
                node,
                confirmed_cycle: cycle,
                confirmed_ts_ns: ts,
                suspected_ts_ns: suspected_ts,
                detection_ns: ts - suspected_ts,
                silent_cycles,
                rollback_to,
                replay_cycles: rollback_to.map(|rb| cycle.saturating_sub(rb)),
                restored_rows: recovered.and_then(|r| arg_u64(&r.args, "restored_rows")),
                holder: recovered
                    .and_then(|r| arg_u64(&r.args, "holder"))
                    .map(|h| h as usize),
                recovery_ns: recovered.map(|r| r.ts_ns.saturating_sub(ts)),
                checksum_intact: m.checksum_intact,
                chain,
            });
        }
        flights.sort_by_key(|f| (f.confirmed_ts_ns, f.node));

        ExplainReport {
            window_ns: self.monitor.window_ns(),
            cards,
            flights,
        }
    }
}

impl EventSink for ExplainEngine {
    fn on_event(&self, ev: &TraceEvent) {
        // The embedded monitor sees everything; its windows and alert
        // streaks supply the trigger chains.
        self.monitor.on_event(ev);
        match ev {
            TraceEvent::Complete {
                cat,
                name,
                rank,
                ts_ns,
                dur_ns,
                args,
                ..
            } if *cat == "runtime" => {
                let end = ts_ns + dur_ns;
                let mut m = self.locked();
                match name.as_str() {
                    "end_cycle" => {
                        if let Some(c) = arg_u64(args, "cycle") {
                            m.end_cycle
                                .entry((c, *rank))
                                .and_modify(|e| *e = (*e).min(end))
                                .or_insert(end);
                        }
                    }
                    "balance" => {
                        if let (Some(c), Some(pred)) = (
                            arg_u64(args, "cycle"),
                            args.iter()
                                .find(|(k, _)| k == "predicted_imbalance")
                                .and_then(|(_, v)| v.as_f64()),
                        ) {
                            m.predictions
                                .entry(c)
                                .and_modify(|e| e.0 = e.0.min(end))
                                .or_insert((end, pred));
                        }
                    }
                    _ => {}
                }
            }
            TraceEvent::Instant {
                cat,
                name,
                rank,
                ts_ns,
                args,
                ..
            } if *cat == "runtime" => {
                let ts = *ts_ns;
                let mut m = self.locked();
                if name == "begin_cycle" {
                    if let Some(c) = arg_u64(args, "cycle") {
                        m.begin_cycle
                            .entry((c, *rank))
                            .and_modify(|e| *e = (*e).min(ts))
                            .or_insert(ts);
                    }
                    return;
                }
                if let Some(cycle) = arg_u64(args, "cycle") {
                    if name == "node-suspected" {
                        if let Some(node) = arg_u64(args, "node") {
                            m.suspects
                                .entry((cycle, node as usize))
                                .and_modify(|e| *e = (*e).min(ts))
                                .or_insert(ts);
                        }
                    }
                    let key = (cycle, name.clone());
                    match m.decisions.get_mut(&key) {
                        Some(d) if (d.ts_ns, d.rank) <= (ts, *rank) => {}
                        Some(d) => {
                            d.ts_ns = ts;
                            d.rank = *rank;
                            d.args = args.clone();
                        }
                        None => {
                            m.decisions.insert(
                                key,
                                DecisionInstant {
                                    ts_ns: ts,
                                    rank: *rank,
                                    args: args.clone(),
                                },
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_span_open(&self, rank: usize, cat: &'static str, name: &str, ts_ns: u64) {
        self.monitor.on_span_open(rank, cat, name, ts_ns);
    }

    fn on_rank_flush(&self, rank: usize) {
        self.monitor.on_rank_flush(rank);
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// One link in a card's causal chain, in timeline order.
#[derive(Clone, Debug, PartialEq)]
pub enum ChainLink {
    /// A health alert that preceded (and is implicated in) the decision.
    Alert {
        rule: &'static str,
        node: usize,
        state: &'static str,
        value: f64,
        ts_ns: u64,
    },
    /// A runtime event on the path to (or enacting) the decision.
    Decision {
        kind: String,
        cycle: u64,
        ts_ns: u64,
    },
}

impl ChainLink {
    pub fn ts_ns(&self) -> u64 {
        match self {
            ChainLink::Alert { ts_ns, .. } | ChainLink::Decision { ts_ns, .. } => *ts_ns,
        }
    }

    fn sort_key(&self) -> (u64, usize, String) {
        match self {
            ChainLink::Alert {
                ts_ns, node, rule, ..
            } => (*ts_ns, *node, (*rule).to_string()),
            ChainLink::Decision { ts_ns, kind, .. } => (*ts_ns, usize::MAX, kind.clone()),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            ChainLink::Alert {
                rule,
                node,
                state,
                value,
                ts_ns,
            } => Json::obj([
                ("type", Json::str("alert")),
                ("rule", Json::str(*rule)),
                ("node", Json::UInt(*node as u64)),
                ("state", Json::str(*state)),
                ("value", Json::Num(*value)),
                ("ts_ns", Json::UInt(*ts_ns)),
            ]),
            ChainLink::Decision { kind, cycle, ts_ns } => Json::obj([
                ("type", Json::str("decision")),
                ("kind", Json::str(kind.clone())),
                ("cycle", Json::UInt(*cycle)),
                ("ts_ns", Json::UInt(*ts_ns)),
            ]),
        }
    }
}

/// Realized outcome around a decision: measured makespan-per-cycle before
/// it and after the settling window, and the delta against the card's
/// prediction (positive: slower than predicted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    pub before_ns: Option<u64>,
    pub after_ns: Option<u64>,
    pub delta_vs_predicted_ns: Option<i64>,
}

/// One decision card: inputs, counterfactual, trigger chain, outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionCard {
    /// The runtime event kind (`drop-evaluated`, `redistributed`, ...).
    pub kind: String,
    pub cycle: u64,
    pub ts_ns: u64,
    /// What the runtime chose: `drop`/`keep`, `admit`/`reject`,
    /// `redistribute`/`skip`, `rejoin`.
    pub taken: String,
    /// Nodes implicated in the decision (loaded nodes for drop and
    /// redistribution episodes, the candidate for expansion/rejoin).
    pub nodes: Vec<usize>,
    /// The decision instant's complete argument snapshot.
    pub inputs: Vec<(String, Json)>,
    /// Predicted makespan-per-cycle of the branch actually taken.
    pub predicted_ns: Option<u64>,
    /// Predicted makespan-per-cycle had the decision gone the other way.
    pub counterfactual_ns: Option<u64>,
    pub outcome: Outcome,
    /// Causal chain: alerts → upstream events → decision → enactment.
    pub chain: Vec<ChainLink>,
}

/// Post-mortem for one confirmed death (DESIGN.md §14 fault path).
#[derive(Clone, Debug, PartialEq)]
pub struct FlightRecord {
    pub node: usize,
    pub confirmed_cycle: u64,
    pub confirmed_ts_ns: u64,
    /// First Suspect instant of the streak that confirmed.
    pub suspected_ts_ns: u64,
    /// Virtual time from first Suspect to Confirmed.
    pub detection_ns: u64,
    /// Silent control cycles the sustain rule counted.
    pub silent_cycles: u32,
    pub rollback_to: Option<u64>,
    /// Cycles replayed: confirmation cycle minus the rollback stamp.
    pub replay_cycles: Option<u64>,
    pub restored_rows: Option<u64>,
    /// Buddy (world rank) whose mirror restored the dead node's rows.
    pub holder: Option<usize>,
    /// Virtual time from Confirmed to recovery complete.
    pub recovery_ns: Option<u64>,
    /// Harness verdict: final checksum matched the crash-free baseline.
    pub checksum_intact: Option<bool>,
    pub chain: Vec<ChainLink>,
}

/// The engine's full output.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainReport {
    pub window_ns: u64,
    /// Decision cards in timeline order.
    pub cards: Vec<DecisionCard>,
    /// One flight record per confirmed death, in timeline order.
    pub flights: Vec<FlightRecord>,
}

fn opt_u64(fields: &mut Vec<(String, Json)>, key: &str, v: Option<u64>) {
    if let Some(x) = v {
        fields.push((key.to_string(), Json::UInt(x)));
    }
}

impl ExplainReport {
    /// JSONL: a header object (schema tag + the critical-path blame
    /// table), then one object per decision card, then one per flight
    /// record. `blame` comes from the profiler
    /// ([`ProfileReport::blame`](crate::ProfileReport)); pass `&[]` when
    /// no profile was computed.
    pub fn to_jsonl(&self, blame: &[BlameEntry]) -> String {
        let mut out = String::new();
        let header = Json::obj([
            ("explain", Json::str("v1")),
            ("window_ns", Json::UInt(self.window_ns)),
            ("cards", Json::UInt(self.cards.len() as u64)),
            ("flights", Json::UInt(self.flights.len() as u64)),
            (
                "blame",
                Json::Arr(
                    blame
                        .iter()
                        .take(8)
                        .map(|b| {
                            Json::obj([
                                ("node", Json::UInt(b.node as u64)),
                                ("cause", Json::str(b.cause)),
                                ("ns", Json::UInt(b.ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        out.push_str(&header.to_string());
        out.push('\n');
        for c in &self.cards {
            let mut fields = vec![
                ("card".to_string(), Json::str("decision")),
                ("kind".to_string(), Json::str(c.kind.clone())),
                ("cycle".to_string(), Json::UInt(c.cycle)),
                ("ts_ns".to_string(), Json::UInt(c.ts_ns)),
                ("taken".to_string(), Json::str(c.taken.clone())),
                (
                    "nodes".to_string(),
                    Json::Arr(c.nodes.iter().map(|&n| Json::UInt(n as u64)).collect()),
                ),
                ("inputs".to_string(), Json::Obj(c.inputs.clone())),
            ];
            opt_u64(&mut fields, "predicted_ns", c.predicted_ns);
            opt_u64(&mut fields, "counterfactual_ns", c.counterfactual_ns);
            let mut outcome = Vec::new();
            opt_u64(&mut outcome, "before_ns", c.outcome.before_ns);
            opt_u64(&mut outcome, "after_ns", c.outcome.after_ns);
            if let Some(d) = c.outcome.delta_vs_predicted_ns {
                outcome.push(("delta_vs_predicted_ns".to_string(), Json::Num(d as f64)));
            }
            fields.push(("outcome".to_string(), Json::Obj(outcome)));
            fields.push((
                "chain".to_string(),
                Json::Arr(c.chain.iter().map(ChainLink::to_json).collect()),
            ));
            // Card-local blame reference: the culprit rows for the
            // implicated nodes, from the same table as the header.
            fields.push((
                "blame".to_string(),
                Json::Arr(
                    blame
                        .iter()
                        .filter(|b| c.nodes.contains(&b.node))
                        .take(4)
                        .map(|b| {
                            Json::obj([
                                ("node", Json::UInt(b.node as u64)),
                                ("cause", Json::str(b.cause)),
                                ("ns", Json::UInt(b.ns)),
                            ])
                        })
                        .collect(),
                ),
            ));
            out.push_str(&Json::Obj(fields).to_string());
            out.push('\n');
        }
        for f in &self.flights {
            let mut fields = vec![
                ("card".to_string(), Json::str("flight-record")),
                ("node".to_string(), Json::UInt(f.node as u64)),
                ("confirmed_cycle".to_string(), Json::UInt(f.confirmed_cycle)),
                ("confirmed_ts_ns".to_string(), Json::UInt(f.confirmed_ts_ns)),
                ("suspected_ts_ns".to_string(), Json::UInt(f.suspected_ts_ns)),
                ("detection_ns".to_string(), Json::UInt(f.detection_ns)),
                (
                    "silent_cycles".to_string(),
                    Json::UInt(u64::from(f.silent_cycles)),
                ),
            ];
            opt_u64(&mut fields, "rollback_to", f.rollback_to);
            opt_u64(&mut fields, "replay_cycles", f.replay_cycles);
            opt_u64(&mut fields, "restored_rows", f.restored_rows);
            opt_u64(&mut fields, "holder", f.holder.map(|h| h as u64));
            opt_u64(&mut fields, "recovery_ns", f.recovery_ns);
            if let Some(ok) = f.checksum_intact {
                fields.push(("checksum_intact".to_string(), Json::Bool(ok)));
            }
            fields.push((
                "chain".to_string(),
                Json::Arr(f.chain.iter().map(ChainLink::to_json).collect()),
            ));
            out.push_str(&Json::Obj(fields).to_string());
            out.push('\n');
        }
        out
    }

    /// Human-readable report: blame table, decision cards with their
    /// causal chains and counterfactuals, flight records.
    pub fn render_text(&self, blame: &[BlameEntry]) -> String {
        let secs = |ns: u64| ns as f64 / 1e9;
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== Explain: {} decision card(s), {} flight record(s), window {}ms ==",
            self.cards.len(),
            self.flights.len(),
            self.window_ns / 1_000_000
        );
        if !blame.is_empty() {
            let total: u64 = blame.iter().map(|b| b.ns).sum();
            let _ = writeln!(out, "critical-path blame (top culprits):");
            for b in blame.iter().take(8) {
                let _ = writeln!(
                    out,
                    "  node {:>3}  {:<12} {:>10.6}s  ({:.1}%)",
                    b.node,
                    b.cause,
                    secs(b.ns),
                    if total == 0 {
                        0.0
                    } else {
                        100.0 * b.ns as f64 / total as f64
                    },
                );
            }
        }
        for c in &self.cards {
            let _ = writeln!(
                out,
                "\n[{}] cycle {} @{:.3}s — took `{}` on node(s) {:?}",
                c.kind,
                c.cycle,
                secs(c.ts_ns),
                c.taken,
                c.nodes
            );
            for link in &c.chain {
                match link {
                    ChainLink::Alert {
                        rule,
                        node,
                        state,
                        value,
                        ts_ns,
                    } => {
                        let _ = writeln!(
                            out,
                            "    alert    {rule} node {node} ({state}) value {value:.2} @{:.3}s",
                            secs(*ts_ns)
                        );
                    }
                    ChainLink::Decision { kind, cycle, ts_ns } => {
                        let _ = writeln!(
                            out,
                            "    event    {kind} cycle {cycle} @{:.3}s",
                            secs(*ts_ns)
                        );
                    }
                }
            }
            if let (Some(p), Some(cf)) = (c.predicted_ns, c.counterfactual_ns) {
                let _ = writeln!(
                    out,
                    "    predicted {:.3}ms/cycle; counterfactual (other branch) {:.3}ms/cycle",
                    ms(p),
                    ms(cf)
                );
            }
            if let Some(a) = c.outcome.after_ns {
                let _ = write!(out, "    realized {:.3}ms/cycle", ms(a));
                if let Some(b) = c.outcome.before_ns {
                    let _ = write!(out, " (was {:.3}ms)", ms(b));
                }
                if let Some(d) = c.outcome.delta_vs_predicted_ns {
                    let _ = write!(out, ", {:+.3}ms vs predicted", d as f64 / 1e6);
                }
                out.push('\n');
            }
        }
        for f in &self.flights {
            let _ = writeln!(
                out,
                "\n[flight-record] node {} confirmed dead at cycle {} @{:.3}s",
                f.node,
                f.confirmed_cycle,
                secs(f.confirmed_ts_ns)
            );
            let _ = writeln!(
                out,
                "    detection: {:.3}ms ({} silent cycles from first suspect @{:.3}s)",
                ms(f.detection_ns),
                f.silent_cycles,
                secs(f.suspected_ts_ns)
            );
            if let (Some(rb), Some(replay)) = (f.rollback_to, f.replay_cycles) {
                let _ = writeln!(
                    out,
                    "    replay: {} cycle(s) back to {}, {} row(s) restored from buddy {}{}",
                    replay,
                    rb,
                    f.restored_rows.unwrap_or(0),
                    f.holder.map_or("?".to_string(), |h| h.to_string()),
                    f.recovery_ns
                        .map(|r| format!(", recovery {:.3}ms", ms(r)))
                        .unwrap_or_default()
                );
            }
            if let Some(ok) = f.checksum_intact {
                let _ = writeln!(
                    out,
                    "    checksum: {}",
                    if ok { "intact" } else { "MISMATCH" }
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(kind: &str, rank: usize, ts: u64, mut args: Vec<(String, Json)>) -> TraceEvent {
        args.insert(0, ("cycle".to_string(), Json::UInt(10)));
        TraceEvent::Instant {
            cat: "runtime",
            name: kind.to_string(),
            rank,
            ts_ns: ts,
            args,
        }
    }

    fn cycle_bounds(engine: &ExplainEngine, cycle: u64, rank: usize, b: u64, e: u64) {
        engine.on_event(&TraceEvent::Instant {
            cat: "runtime",
            name: "begin_cycle".to_string(),
            rank,
            ts_ns: b,
            args: vec![("cycle".to_string(), Json::UInt(cycle))],
        });
        engine.on_event(&TraceEvent::Complete {
            cat: "runtime",
            name: "end_cycle".to_string(),
            rank,
            ts_ns: e,
            dur_ns: 0,
            args: vec![("cycle".to_string(), Json::UInt(cycle))],
        });
    }

    fn u(k: &str, v: u64) -> (String, Json) {
        (k.to_string(), Json::UInt(v))
    }

    #[test]
    fn drop_card_carries_counterfactual_and_outcome() {
        let engine = ExplainEngine::new(100);
        // Cycles 7..9 run at 200ns, 12..14 at 100ns: the drop paid off.
        for c in 7..=9u64 {
            cycle_bounds(&engine, c, 0, c * 1000, c * 1000 + 200);
        }
        for c in 12..=14u64 {
            cycle_bounds(&engine, c, 0, c * 1000, c * 1000 + 100);
        }
        engine.on_event(&decision(
            "drop-evaluated",
            0,
            9_500,
            vec![
                u("predicted_unloaded_ns", 110),
                u("measured_max_ns", 200),
                u("margin_ppm", 1_000_000),
                ("loaded".to_string(), Json::Arr(vec![Json::UInt(1)])),
                ("dropped".to_string(), Json::Bool(true)),
            ],
        ));
        let report = engine.report();
        assert_eq!(report.cards.len(), 1);
        let card = &report.cards[0];
        assert_eq!(card.taken, "drop");
        assert_eq!(card.nodes, vec![1]);
        assert_eq!(card.predicted_ns, Some(110));
        assert_eq!(card.counterfactual_ns, Some(200));
        assert_eq!(card.outcome.before_ns, Some(200));
        assert_eq!(card.outcome.after_ns, Some(100));
        assert_eq!(card.outcome.delta_vs_predicted_ns, Some(-10));
        assert!(matches!(
            card.chain.last(),
            Some(ChainLink::Decision { kind, .. }) if kind == "drop-evaluated"
        ));
    }

    #[test]
    fn report_is_order_independent() {
        let mk = |order_rev: bool| {
            let engine = ExplainEngine::new(100);
            let mut evs = vec![
                decision(
                    "load-change",
                    0,
                    8_000,
                    vec![(
                        "loads".to_string(),
                        Json::Arr(vec![Json::UInt(0), Json::UInt(2)]),
                    )],
                ),
                decision("redistributed", 1, 9_010, vec![u("seconds_ns", 500)]),
                decision("redistributed", 0, 9_000, vec![u("seconds_ns", 500)]),
                decision("grace-complete", 0, 8_500, vec![]),
            ];
            if order_rev {
                evs.reverse();
            }
            for e in &evs {
                engine.on_event(e);
            }
            cycle_bounds(&engine, 8, 0, 8_000, 8_200);
            cycle_bounds(&engine, 8, 1, 8_000, 8_300);
            let r = engine.report();
            r.to_jsonl(&[])
        };
        assert_eq!(mk(false), mk(true));
        // Min-ts dedup: the card carries the earliest rank's timestamp,
        // and the implicated nodes come from the load-change broadcast
        // (load-change itself appears in the chain, not as a card).
        let engine = ExplainEngine::new(100);
        engine.on_event(&decision(
            "load-change",
            0,
            8_000,
            vec![(
                "loads".to_string(),
                Json::Arr(vec![Json::UInt(0), Json::UInt(2)]),
            )],
        ));
        engine.on_event(&decision("redistributed", 1, 9_010, vec![]));
        engine.on_event(&decision("redistributed", 0, 9_000, vec![]));
        let r = engine.report();
        assert_eq!(r.cards.len(), 1);
        let card = &r.cards[0];
        assert_eq!(card.ts_ns, 9_000);
        assert_eq!(card.taken, "redistribute");
        assert_eq!(card.nodes, vec![1]); // only index 1 has load > 0
        assert!(card
            .chain
            .iter()
            .any(|l| matches!(l, ChainLink::Decision { kind, .. } if kind == "load-change")));
    }

    #[test]
    fn flight_record_links_suspects_and_recovery() {
        let engine = ExplainEngine::new(100);
        for (c, ts) in [(8u64, 800u64), (9, 900), (10, 1_000)] {
            engine.on_event(&TraceEvent::Instant {
                cat: "runtime",
                name: "node-suspected".to_string(),
                rank: 0,
                ts_ns: ts,
                args: vec![u("cycle", c), u("node", 2), u("silent_cycles", c - 7)],
            });
        }
        engine.on_event(&decision(
            "node-confirmed-dead",
            0,
            1_050,
            vec![u("node", 2), u("silent_cycles", 3)],
        ));
        engine.on_event(&decision(
            "node-recovered",
            0,
            1_400,
            vec![
                u("node", 2),
                u("rollback_to", 6),
                u("restored_rows", 48),
                u("holder", 3),
            ],
        ));
        engine.set_checksum_intact(true);
        let report = engine.report();
        assert_eq!(report.flights.len(), 1);
        let f = &report.flights[0];
        assert_eq!(f.node, 2);
        assert_eq!(f.confirmed_cycle, 10);
        assert_eq!(f.suspected_ts_ns, 800);
        assert_eq!(f.detection_ns, 250);
        assert_eq!(f.silent_cycles, 3);
        assert_eq!(f.rollback_to, Some(6));
        assert_eq!(f.replay_cycles, Some(4));
        assert_eq!(f.restored_rows, Some(48));
        assert_eq!(f.holder, Some(3));
        assert_eq!(f.recovery_ns, Some(350));
        assert_eq!(f.checksum_intact, Some(true));
        let jsonl = report.to_jsonl(&[]);
        assert!(jsonl.contains("\"checksum_intact\":true"));
        assert!(jsonl.contains("\"card\":\"flight-record\""));
        let text = report.render_text(&[]);
        assert!(text.contains("flight-record"));
        assert!(text.contains("checksum: intact"));
    }
}
