//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Recording is a single atomic RMW on a pre-registered handle; the registry
//! mutex is only touched when a metric is first named or a snapshot is
//! taken. Snapshots are plain data and merge commutatively/associatively, so
//! per-rank registries can be aggregated in any order with identical results.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Monotonic event counter. Overflow wraps modulo 2^64 (the semantics of
/// `fetch_add` on `AtomicU64`), matching `Snapshot::merge`'s wrapping sum.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-written value gauge (stored as `f64` bits). Merging snapshots keeps
/// the maximum, so gauges report peaks across ranks.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram over `u64` samples (bytes, nanoseconds, counts).
///
/// Bucket `i` counts samples `<= bounds[i]`; one final implicit bucket
/// counts everything larger. Bounds are fixed at registration so per-rank
/// snapshots of the same metric always merge bucket-by-bucket.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<u64>,
    /// bounds.len() + 1 cells; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one sample. Bucket choice: first bound `>= value`, else the
    /// overflow bucket.
    pub fn record(&self, value: u64) {
        let i = self.0.bounds.partition_point(|&b| b < value);
        self.0.counts[i].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
}

/// One rank's metrics. Cloning shares the underlying storage.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.locked();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.insert(name.to_string(), c.clone());
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.locked();
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.insert(name.to_string(), g.clone());
        g
    }

    /// Get or create the histogram named `name` with the given bucket upper
    /// bounds. Panics if the name exists with different bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.locked();
        if let Some(h) = inner.hists.get(name) {
            assert_eq!(
                h.bounds(),
                bounds,
                "histogram `{name}` re-registered with different bounds"
            );
            return h.clone();
        }
        let h = Histogram::new(bounds);
        inner.hists.insert(name.to_string(), h.clone());
        h
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.locked();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Plain-data histogram state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Plain-data registry state; the unit of cross-rank aggregation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Fold `other` into `self`. Counters add (wrapping, like recording),
    /// gauges keep the maximum, histograms add bucket-wise. All three folds
    /// are commutative and associative, so merge order never matters.
    /// Panics if the same histogram name appears with different bounds.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            let e = self.counters.entry(k.clone()).or_insert(0);
            *e = e.wrapping_add(*v);
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *e = e.max(*v);
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
                Some(mine) => {
                    assert_eq!(
                        mine.bounds, h.bounds,
                        "histogram `{k}` merged with different bounds"
                    );
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a = a.wrapping_add(*b);
                    }
                    mine.sum = mine.sum.wrapping_add(h.sum);
                    mine.count = mine.count.wrapping_add(h.count);
                }
            }
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render as a JSON object (used by the bench binaries' metrics dumps).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let hists = Json::Obj(
            self.hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj([
                            (
                                "bounds",
                                Json::Arr(h.bounds.iter().map(|&b| Json::UInt(b)).collect()),
                            ),
                            (
                                "counts",
                                Json::Arr(h.counts.iter().map(|&c| Json::UInt(c)).collect()),
                            ),
                            ("sum", Json::UInt(h.sum)),
                            ("count", Json::UInt(h.count)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", hists),
        ])
    }
}

/// Sanitize a metric name for Prometheus text exposition: `[a-zA-Z0-9_:]`
/// pass through, everything else (the registry's `.` separators, `-`)
/// becomes `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Unit a metric's samples are expressed in, as far as the exposition
/// layer can tell from its registry name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PromUnit {
    None,
    Bytes,
    /// Registry stores nanoseconds; exposition converts to base seconds.
    Seconds,
}

/// Exposition name for a registry metric, per the Prometheus naming
/// conventions: sanitized, with the unit moved to the canonical suffix
/// position — `sim.bytes_sent` → `sim_sent_bytes`, `lat.ns` →
/// `lat_seconds` (values converted from nanoseconds to base seconds).
/// Returns the renamed base name and the detected unit.
fn exposition_name(name: &str) -> (String, PromUnit) {
    let n = prom_name(name);
    if let Some(stripped) = n.strip_suffix("_ns") {
        return (format!("{stripped}_seconds"), PromUnit::Seconds);
    }
    if n.ends_with("_bytes") {
        return (n, PromUnit::Bytes);
    }
    if let Some(pos) = n.find("_bytes_") {
        // Move the embedded unit token to the suffix position.
        let mut moved = String::with_capacity(n.len());
        moved.push_str(&n[..pos]);
        moved.push_str(&n[pos + "_bytes".len()..]);
        moved.push_str("_bytes");
        return (moved, PromUnit::Bytes);
    }
    (n, PromUnit::None)
}

/// Render a [`Snapshot`] in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` and `# TYPE` lines per metric family,
/// unit-suffixed names (`_seconds`, `_bytes` — a clean rename, no alias
/// series) with counters additionally suffixed `_total`, nanosecond
/// metrics converted to base seconds, and histograms as **cumulative**
/// `_bucket{le="..."}` series plus the `+Inf` bucket, `_sum`, and
/// `_count`. Deterministic: snapshot maps are `BTreeMap`s, so output
/// order is the sorted registry name order.
pub fn prometheus_text(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let secs = |ns: u64| ns as f64 / 1e9;
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let (n, unit) = exposition_name(name);
        let _ = writeln!(out, "# HELP {n}_total Dyn-MPI metric `{name}`.");
        let _ = writeln!(out, "# TYPE {n}_total counter");
        if unit == PromUnit::Seconds {
            let _ = writeln!(out, "{n}_total {}", secs(*v));
        } else {
            let _ = writeln!(out, "{n}_total {v}");
        }
    }
    for (name, v) in &snap.gauges {
        let (n, unit) = exposition_name(name);
        let _ = writeln!(out, "# HELP {n} Dyn-MPI metric `{name}`.");
        let _ = writeln!(out, "# TYPE {n} gauge");
        if unit == PromUnit::Seconds {
            let _ = writeln!(out, "{n} {}", v / 1e9);
        } else {
            let _ = writeln!(out, "{n} {v}");
        }
    }
    for (name, h) in &snap.hists {
        let (n, unit) = exposition_name(name);
        let _ = writeln!(out, "# HELP {n} Dyn-MPI metric `{name}`.");
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            cum = cum.wrapping_add(c);
            match h.bounds.get(i) {
                Some(&b) if unit == PromUnit::Seconds => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", secs(b));
                }
                Some(&b) => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{b}\"}} {cum}");
                }
                None => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
                }
            }
        }
        if unit == PromUnit::Seconds {
            let _ = writeln!(out, "{n}_sum {}", secs(h.sum));
        } else {
            let _ = writeln!(out, "{n}_sum {}", h.sum);
        }
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// Power-of-two byte-size bucket bounds `1 KiB .. 16 MiB` — shared by the
/// transport message-size histograms so every rank's snapshot merges.
pub const BYTE_BUCKETS: [u64; 15] = [
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    1 << 24,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_wraps() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // Overflow wraps modulo 2^64.
        let c2 = r.counter("wrap");
        c2.add(u64::MAX);
        c2.add(5);
        assert_eq!(c2.get(), 4);
        assert_eq!(r.snapshot().counter("wrap"), 4);
    }

    #[test]
    fn same_name_shares_storage() {
        let r = Registry::new();
        r.counter("shared").add(2);
        r.counter("shared").add(3);
        assert_eq!(r.snapshot().counter("shared"), 5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let r = Registry::new();
        let h = r.histogram("h", &[10, 100]);
        h.record(0); // -> bucket 0 (<=10)
        h.record(10); // boundary value lands in its own bucket
        h.record(11); // -> bucket 1 (<=100)
        h.record(100);
        h.record(101); // -> overflow bucket
        h.record(u64::MAX);
        let s = r.snapshot().hists["h"].clone();
        assert_eq!(s.counts, vec![2, 2, 2]);
        assert_eq!(s.count, 6);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(10 + 11 + 100 + 101)
                .wrapping_add(u64::MAX)
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Registry::new().histogram("bad", &[5, 5]);
    }

    #[test]
    fn merge_is_order_independent_basic() {
        let mk = |c: u64, g: f64| {
            let r = Registry::new();
            r.counter("c").add(c);
            r.gauge("g").set(g);
            r.histogram("h", &[8, 64]).record(c);
            r.snapshot()
        };
        let parts = [mk(1, 0.5), mk(7, 9.0), mk(100, -3.0)];
        let mut fwd = Snapshot::default();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Snapshot::default();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.counter("c"), 108);
        assert_eq!(fwd.gauges["g"], 9.0);
        assert_eq!(fwd.hists["h"].count, 3);
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let r = Registry::new();
        r.counter("sim.msgs_sent").add(42);
        r.counter("sim.bytes_sent").add(1024);
        r.gauge("queue-depth").set(3.5);
        let h = r.histogram("lat.ns", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        let text = prometheus_text(&r.snapshot());
        // Counters carry HELP/TYPE and a `_total` suffix.
        assert!(text.contains("# HELP sim_msgs_sent_total Dyn-MPI metric `sim.msgs_sent`.\n"));
        assert!(text.contains("# TYPE sim_msgs_sent_total counter\nsim_msgs_sent_total 42\n"));
        // Embedded unit tokens move to the canonical suffix position.
        assert!(text.contains("# TYPE sim_sent_bytes_total counter\nsim_sent_bytes_total 1024\n"));
        assert!(!text.contains("sim_bytes_sent")); // clean rename, no alias
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 3.5\n"));
        // Nanosecond histograms expose as `_seconds`, bounds and sum
        // converted; buckets are cumulative, ending in +Inf == count.
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.00000001\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.0000001\"} 2\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_seconds_sum 0.000005055\n"));
        assert!(text.contains("lat_seconds_count 3\n"));
        assert!(!text.contains("lat_ns"));
    }

    #[test]
    fn exposition_names_move_units_to_suffix() {
        assert_eq!(
            exposition_name("sim.bytes_sent"),
            ("sim_sent_bytes".to_string(), PromUnit::Bytes)
        );
        assert_eq!(
            exposition_name("comm.msg_bytes_recvd"),
            ("comm_msg_recvd_bytes".to_string(), PromUnit::Bytes)
        );
        assert_eq!(
            exposition_name("redist.bytes_sent"),
            ("redist_sent_bytes".to_string(), PromUnit::Bytes)
        );
        assert_eq!(
            exposition_name("lat.ns"),
            ("lat_seconds".to_string(), PromUnit::Seconds)
        );
        assert_eq!(
            exposition_name("sim.sched.quanta"),
            ("sim_sched_quanta".to_string(), PromUnit::None)
        );
    }

    #[test]
    fn snapshot_json_round_trips_exact_counters() {
        let r = Registry::new();
        r.counter("bytes").add(u64::MAX - 1);
        let j = r.snapshot().to_json();
        let back = crate::json::Json::parse(&j.to_string()).unwrap();
        assert_eq!(
            back.get("counters").unwrap().get("bytes").unwrap().as_u64(),
            Some(u64::MAX - 1)
        );
    }
}
