//! Span/event tracing stamped with **virtual** time.
//!
//! The simulator's clock is a `u64` nanosecond count since simulation start,
//! so every tracing call takes an explicit `ts_ns` — guards cannot observe
//! virtual time at drop, and wallclock would be meaningless inside a
//! discrete-event run. A thread-local scope, installed per rank thread by
//! the cluster runner, buffers events locally; nothing is shared until the
//! scope flushes into its [`Recorder`](crate::Recorder). With no scope
//! installed every call is a no-op, so instrumented code costs almost
//! nothing outside traced runs.

use std::cell::RefCell;
use std::sync::Arc;

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::Recorder;

/// A streaming consumer of trace events, notified *at emission time* on the
/// emitting rank's thread — before anything reaches the [`Recorder`]'s
/// buffers. This is the hook the online health monitor
/// ([`health`](crate::health)) hangs off: it sees every span close and
/// instant as the simulated run produces them, rather than parsing the
/// trace after the run ends.
///
/// Implementations must be `Send + Sync`: ranks run on separate threads and
/// call into the same sink concurrently. A sink that wants deterministic
/// *output* must therefore fold events with commutative operations keyed by
/// virtual timestamp (the monitor's sliding windows do exactly this), since
/// cross-rank arrival order at the sink is scheduling-dependent.
///
/// Subscribe with [`Recorder::subscribe`] **before** installing rank
/// scopes; scopes capture the sink list at install time.
pub trait EventSink: Send + Sync {
    /// An event was emitted: a span closed or an instant fired.
    fn on_event(&self, ev: &TraceEvent);

    /// A span opened on `rank` at `ts_ns`. Default: ignored. (Useful for
    /// low-watermark tracking; the matching close arrives via
    /// [`on_event`](EventSink::on_event).)
    fn on_span_open(&self, _rank: usize, _cat: &'static str, _name: &str, _ts_ns: u64) {}

    /// `rank`'s tracing scope flushed (its thread finished or unwound).
    fn on_rank_flush(&self, _rank: usize) {}
}

/// One trace event, timestamps in virtual nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A closed span (`ph: "X"` in Chrome trace_event terms).
    Complete {
        cat: &'static str,
        name: String,
        /// Rank that emitted the span (exported as `tid`).
        rank: usize,
        ts_ns: u64,
        dur_ns: u64,
        args: Vec<(String, Json)>,
    },
    /// A point event (`ph: "i"`).
    Instant {
        cat: &'static str,
        name: String,
        rank: usize,
        ts_ns: u64,
        args: Vec<(String, Json)>,
    },
}

impl TraceEvent {
    pub fn ts_ns(&self) -> u64 {
        match self {
            TraceEvent::Complete { ts_ns, .. } | TraceEvent::Instant { ts_ns, .. } => *ts_ns,
        }
    }

    pub fn rank(&self) -> usize {
        match self {
            TraceEvent::Complete { rank, .. } | TraceEvent::Instant { rank, .. } => *rank,
        }
    }

    pub fn cat(&self) -> &'static str {
        match self {
            TraceEvent::Complete { cat, .. } | TraceEvent::Instant { cat, .. } => cat,
        }
    }

    pub fn name(&self) -> &str {
        match self {
            TraceEvent::Complete { name, .. } | TraceEvent::Instant { name, .. } => name,
        }
    }
}

/// The span categories the instrumentation layers emit. Parsers use this
/// list to map category strings back to the `&'static str` the in-memory
/// [`TraceEvent`] carries.
pub const KNOWN_CATS: &[&str] = &["sched", "comm", "runtime", "redist", "net", "app"];

/// Map a category string to a `&'static str`, reusing the [`KNOWN_CATS`]
/// entries and leaking (deduplicated) storage for anything else. Needed when
/// parsing serialized traces back into [`TraceEvent`]s; the leak is bounded
/// by the number of *distinct* unknown categories ever seen.
pub fn intern_cat(cat: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    if let Some(k) = KNOWN_CATS.iter().find(|k| **k == cat) {
        return k;
    }
    static EXTRA: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut extra = EXTRA
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(k) = extra.iter().find(|k| **k == cat) {
        return k;
    }
    let leaked: &'static str = Box::leak(cat.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

struct OpenSpan {
    cat: &'static str,
    name: String,
    ts_ns: u64,
}

struct RankScope {
    recorder: Recorder,
    rank: usize,
    registry: Registry,
    events: Vec<TraceEvent>,
    stack: Vec<OpenSpan>,
    /// Streaming sinks captured from the recorder at install time. Empty
    /// for un-subscribed recorders, in which case emission cost is
    /// unchanged from before sinks existed.
    sinks: Arc<[Arc<dyn EventSink>]>,
}

impl RankScope {
    /// Buffer `ev` for the recorder and stream it to every sink.
    fn emit(&mut self, ev: TraceEvent) {
        for sink in self.sinks.iter() {
            sink.on_event(&ev);
        }
        self.events.push(ev);
    }
}

thread_local! {
    static SCOPE: RefCell<Option<RankScope>> = const { RefCell::new(None) };
}

/// RAII handle returned by [`Recorder::install`]. Dropping it — including
/// during a panic unwind — flushes the rank's buffered events and metrics
/// snapshot into the recorder and clears the thread-local scope.
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            if let Some(mut scope) = s.borrow_mut().take() {
                // Close any spans left open (panic unwind mid-span): give
                // them zero duration at their start time so the trace stays
                // well-formed.
                while let Some(open) = scope.stack.pop() {
                    let ev = TraceEvent::Complete {
                        cat: open.cat,
                        name: open.name,
                        rank: scope.rank,
                        ts_ns: open.ts_ns,
                        dur_ns: 0,
                        args: vec![("truncated".to_string(), Json::Bool(true))],
                    };
                    scope.emit(ev);
                }
                for sink in scope.sinks.iter() {
                    sink.on_rank_flush(scope.rank);
                }
                scope
                    .recorder
                    .absorb(scope.rank, scope.events, scope.registry.snapshot());
            }
        });
    }
}

pub(crate) fn install_scope(recorder: Recorder, rank: usize) -> ScopeGuard {
    let sinks = recorder.sinks();
    SCOPE.with(|s| {
        let prev = s.borrow_mut().replace(RankScope {
            recorder,
            rank,
            registry: Registry::new(),
            events: Vec::new(),
            stack: Vec::new(),
            sinks,
        });
        assert!(prev.is_none(), "tracing scope already installed on thread");
    });
    ScopeGuard { _priv: () }
}

/// Is a tracing scope installed on this thread?
pub fn enabled() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

fn with_scope<T>(f: impl FnOnce(&mut RankScope) -> T) -> Option<T> {
    SCOPE.with(|s| s.borrow_mut().as_mut().map(f))
}

/// Open a span at virtual time `ts_ns`. Pair with [`span_end`]; spans on one
/// rank must close in LIFO order (they nest).
pub fn span_begin(cat: &'static str, name: &str, ts_ns: u64) {
    with_scope(|scope| {
        for sink in scope.sinks.iter() {
            sink.on_span_open(scope.rank, cat, name, ts_ns);
        }
        scope.stack.push(OpenSpan {
            cat,
            name: name.to_string(),
            ts_ns,
        });
    });
}

/// Close the innermost open span at virtual time `ts_ns`.
pub fn span_end(ts_ns: u64) {
    span_end_args(ts_ns, Vec::new());
}

/// Close the innermost open span, attaching `args` to the emitted event.
pub fn span_end_args(ts_ns: u64, args: Vec<(String, Json)>) {
    with_scope(|scope| {
        let Some(open) = scope.stack.pop() else {
            debug_assert!(false, "span_end with no open span");
            return;
        };
        let rank = scope.rank;
        scope.emit(TraceEvent::Complete {
            cat: open.cat,
            name: open.name,
            rank,
            ts_ns: open.ts_ns,
            dur_ns: ts_ns.saturating_sub(open.ts_ns),
            args,
        });
    });
}

/// Emit a point event at virtual time `ts_ns`.
pub fn instant(cat: &'static str, name: &str, ts_ns: u64, args: Vec<(String, Json)>) {
    with_scope(|scope| {
        let rank = scope.rank;
        scope.emit(TraceEvent::Instant {
            cat,
            name: name.to_string(),
            rank,
            ts_ns,
            args,
        });
    });
}

/// Add `n` to the counter `name` in this rank's registry (no-op untraced).
pub fn count(name: &str, n: u64) {
    with_scope(|scope| scope.registry.counter(name).add(n));
}

/// Set the gauge `name` in this rank's registry (no-op untraced).
pub fn gauge_set(name: &str, value: f64) {
    with_scope(|scope| scope.registry.gauge(name).set(value));
}

/// Record `value` into histogram `name` with `bounds` (no-op untraced).
pub fn observe(name: &str, bounds: &[u64], value: u64) {
    with_scope(|scope| scope.registry.histogram(name, bounds).record(value));
}

/// Handles for hot paths that record many times: resolves once, then each
/// record is a bare atomic. `None` when tracing is off for this thread.
pub fn counter_handle(name: &str) -> Option<Counter> {
    with_scope(|scope| scope.registry.counter(name))
}

pub fn gauge_handle(name: &str) -> Option<Gauge> {
    with_scope(|scope| scope.registry.gauge(name))
}

pub fn histogram_handle(name: &str, bounds: &[u64]) -> Option<Histogram> {
    with_scope(|scope| scope.registry.histogram(name, bounds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_without_scope() {
        assert!(!enabled());
        span_begin("cat", "x", 0);
        span_end(10);
        instant("cat", "p", 5, vec![]);
        count("c", 1);
        assert!(counter_handle("c").is_none());
    }

    #[test]
    fn spans_nest_and_flush_on_drop() {
        let rec = Recorder::new();
        {
            let _guard = rec.install(3);
            assert!(enabled());
            span_begin("runtime", "outer", 100);
            span_begin("runtime", "inner", 150);
            count("events", 2);
            span_end(180);
            instant("runtime", "mark", 190, vec![("k".into(), Json::UInt(1))]);
            span_end(200);
        }
        assert!(!enabled());
        let events = rec.events();
        assert_eq!(events.len(), 3);
        // Sorted by start time: outer (100) precedes inner (150).
        let TraceEvent::Complete {
            name,
            ts_ns,
            dur_ns,
            rank,
            ..
        } = &events[0]
        else {
            panic!("expected span");
        };
        assert_eq!(
            (name.as_str(), *ts_ns, *dur_ns, *rank),
            ("outer", 100, 100, 3)
        );
        let TraceEvent::Complete {
            name,
            ts_ns,
            dur_ns,
            ..
        } = &events[1]
        else {
            panic!("expected span");
        };
        assert_eq!((name.as_str(), *ts_ns, *dur_ns), ("inner", 150, 30));
        assert_eq!(rec.merged_metrics().counter("events"), 2);
    }

    #[test]
    fn intern_cat_reuses_known_and_dedups_unknown() {
        assert_eq!(intern_cat("sched"), "sched");
        let a = intern_cat("custom-cat");
        let b = intern_cat("custom-cat");
        assert!(std::ptr::eq(a, b), "unknown cats must dedup to one leak");
    }

    #[test]
    fn open_spans_truncate_on_unwind() {
        let rec = Recorder::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = rec.install(0);
            span_begin("runtime", "doomed", 50);
            panic!("boom");
        }));
        assert!(r.is_err());
        let events = rec.events();
        assert_eq!(events.len(), 1);
        let TraceEvent::Complete {
            name, dur_ns, args, ..
        } = &events[0]
        else {
            panic!("expected span");
        };
        assert_eq!(name, "doomed");
        assert_eq!(*dur_ns, 0);
        assert_eq!(args[0].0, "truncated");
    }
}
