//! # dynmpi-obs — virtual-time observability for the Dyn-MPI reproduction
//!
//! Three pieces, usable independently:
//!
//! * **Tracing** ([`trace`]): spans and instants stamped with *virtual*
//!   nanoseconds (the simulator's clock, not wallclock). A thread-local
//!   scope installed per rank thread buffers events without cross-thread
//!   contention; everything is a no-op when no scope is installed.
//! * **Metrics** ([`metrics`]): counters, gauges, and fixed-bucket
//!   histograms with atomic recording and plain-data snapshots whose merge
//!   is commutative and associative.
//! * **Exporters** ([`export`]): Chrome `trace_event` JSON (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>) and a JSONL stream,
//!   plus a parser for round-trip verification. The tiny [`json`] module
//!   backs both and is reused by the bench binaries for row output.
//!
//! The [`Recorder`] ties it together: one per traced run, cloned into each
//! rank thread, collecting per-rank events and metric snapshots for export.
//!
//! This crate deliberately has **no dependencies** (it sits below the
//! simulator in the crate graph) and never reads the wallclock: callers pass
//! explicit timestamps, which is what keeps traces deterministic.

pub mod analysis;
pub mod explain;
pub mod export;
pub mod health;
pub mod json;
pub mod metrics;
pub mod trace;

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

pub use trace::TraceEvent;

pub use analysis::{
    analyze, BlameEntry, Buckets, CritSegment, CycleAudit, ProfileReport, RankAttribution, SegKind,
};
pub use explain::{ChainLink, DecisionCard, ExplainEngine, ExplainReport, FlightRecord, Outcome};
pub use export::{parse_chrome_trace, parse_jsonl, ParsedEvent};
pub use health::{
    default_rules, Alert, AlertRule, HealthMonitor, HealthReport, HealthState, NodeHealth,
    RuleMetric, RuleOp, DEFAULT_WINDOW_NS,
};
pub use json::Json;
pub use metrics::{
    prometheus_text, Counter, Gauge, HistSnapshot, Histogram, Registry, Snapshot, BYTE_BUCKETS,
};
pub use trace::{
    count, counter_handle, enabled, gauge_handle, gauge_set, histogram_handle, instant, observe,
    span_begin, span_end, span_end_args, EventSink, ScopeGuard,
};

#[derive(Default)]
struct RecorderInner {
    /// Flushed rank buffers tagged with a global absorb-order sequence
    /// number; sorted on read (see [`Recorder::events`]).
    events: Vec<(u64, TraceEvent)>,
    /// Next absorb-order sequence number.
    next_seq: u64,
    /// One metrics snapshot per rank (last flush wins per rank).
    snapshots: Vec<(usize, Snapshot)>,
    /// Streaming subscribers; cloned into each rank scope at install.
    sinks: Vec<Arc<dyn EventSink>>,
}

/// Collects trace events and metric snapshots from every rank of one run.
///
/// Cheap to clone (shared interior). Typical use:
///
/// ```
/// use dynmpi_obs::Recorder;
///
/// let rec = Recorder::new();
/// let handles: Vec<_> = (0..2)
///     .map(|rank| {
///         let rec = rec.clone();
///         std::thread::spawn(move || {
///             let _guard = rec.install(rank);
///             dynmpi_obs::span_begin("sched", "run", 0);
///             dynmpi_obs::count("quanta", 1);
///             dynmpi_obs::span_end(10_000);
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(rec.events().len(), 2);
/// assert_eq!(rec.merged_metrics().counter("quanta"), 2);
/// ```
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl Recorder {
    pub fn new() -> Self {
        Recorder::default()
    }

    fn locked(&self) -> MutexGuard<'_, RecorderInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Install a tracing scope for `rank` on the calling thread. The
    /// returned guard flushes buffered events and this rank's metrics
    /// snapshot back into the recorder when dropped (even on panic).
    ///
    /// Panics if the thread already has a scope installed.
    pub fn install(&self, rank: usize) -> ScopeGuard {
        trace::install_scope(self.clone(), rank)
    }

    /// Register a streaming [`EventSink`]: it is called at emission time,
    /// on the emitting rank's thread, for every span close and instant.
    /// Subscribe **before** installing rank scopes — scopes capture the
    /// sink list when installed, so later subscriptions only affect ranks
    /// installed afterwards.
    pub fn subscribe(&self, sink: Arc<dyn EventSink>) {
        self.locked().sinks.push(sink);
    }

    /// Snapshot of the current sink list (captured per rank at install).
    pub(crate) fn sinks(&self) -> Arc<[Arc<dyn EventSink>]> {
        self.locked().sinks.clone().into()
    }

    pub(crate) fn absorb(&self, rank: usize, events: Vec<TraceEvent>, snapshot: Snapshot) {
        let mut inner = self.locked();
        for ev in events {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            inner.events.push((seq, ev));
        }
        inner.snapshots.retain(|(r, _)| *r != rank);
        inner.snapshots.push((rank, snapshot));
    }

    /// All flushed events, in the canonical trace order.
    ///
    /// **Ordering contract:** events are sorted by
    /// `(ts_ns, rank, emission seq)` — virtual timestamp first, rank as the
    /// cross-rank tie-break, and each rank's own emission order as the final
    /// stable tie-break (a span is "emitted" when it *closes*, so at equal
    /// timestamps an instant fired before a zero-length span's close
    /// precedes it). The order is total and deterministic: rank buffers
    /// preserve emission order and the sort never reorders equal keys, so
    /// two runs of the same program produce the same sequence regardless of
    /// thread flush interleaving. Exporters ([`chrome_trace`](export::chrome_trace),
    /// [`jsonl`](export::jsonl)) and the [`analysis`] module consume this
    /// order as-is and never re-sort.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events = self.locked().events.clone();
        events.sort_by_key(|(seq, e)| (e.ts_ns(), e.rank(), *seq));
        events.into_iter().map(|(_, e)| e).collect()
    }

    /// Per-rank metric snapshots, sorted by rank.
    pub fn snapshots(&self) -> Vec<(usize, Snapshot)> {
        let mut snaps = self.locked().snapshots.clone();
        snaps.sort_by_key(|(r, _)| *r);
        snaps
    }

    /// All ranks' metrics merged into one aggregate.
    pub fn merged_metrics(&self) -> Snapshot {
        let mut total = Snapshot::default();
        for (_, s) in self.snapshots() {
            total.merge(&s);
        }
        total
    }

    /// Chrome `trace_event` JSON document of everything recorded so far.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(&self.events())
    }

    /// JSONL stream of everything recorded so far.
    pub fn jsonl(&self) -> String {
        export::jsonl(&self.events())
    }

    /// Run the [`analysis`] pass over everything recorded so far.
    pub fn profile(&self) -> analysis::ProfileReport {
        analysis::analyze(&self.events())
    }

    /// Write the Chrome trace to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }

    /// Write the JSONL stream to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.jsonl())
    }

    /// Write the merged metrics report (JSON) to `path`, including the
    /// per-rank snapshots under `"ranks"`.
    pub fn write_metrics(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let ranks = Json::Obj(
            self.snapshots()
                .into_iter()
                .map(|(r, s)| (r.to_string(), s.to_json()))
                .collect(),
        );
        let doc = Json::obj([
            ("merged", self.merged_metrics().to_json()),
            ("ranks", ranks),
        ]);
        std::fs::write(path, doc.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_collects_across_threads() {
        let rec = Recorder::new();
        let handles: Vec<_> = (0..4)
            .map(|rank| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    let _guard = rec.install(rank);
                    span_begin("sched", "run", rank as u64 * 100);
                    count("sim.msgs_sent", rank as u64);
                    span_end(rank as u64 * 100 + 50);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        // Sorted by virtual time.
        assert!(events.windows(2).all(|w| w[0].ts_ns() <= w[1].ts_ns()));
        assert_eq!(rec.merged_metrics().counter("sim.msgs_sent"), 6); // 0+1+2+3
        assert_eq!(rec.snapshots().len(), 4);
    }

    #[test]
    fn events_order_is_ts_rank_then_emission_seq() {
        let rec = Recorder::new();
        {
            let _g = rec.install(1);
            // Two events at the same timestamp: emission order must hold.
            instant("comm", "first", 100, vec![]);
            instant("comm", "second", 100, vec![]);
        }
        {
            let _g = rec.install(0);
            instant("comm", "third", 100, vec![]);
        }
        let names: Vec<String> = rec.events().iter().map(|e| e.name().to_string()).collect();
        // Rank 0 sorts before rank 1 at equal ts, even though it flushed
        // later; within rank 1 the emission order is preserved.
        assert_eq!(names, vec!["third", "first", "second"]);
    }

    #[test]
    fn reinstall_same_rank_replaces_snapshot() {
        let rec = Recorder::new();
        {
            let _g = rec.install(0);
            count("c", 1);
        }
        {
            let _g = rec.install(0);
            count("c", 5);
        }
        // Events accumulate, snapshots replace per rank.
        assert_eq!(rec.merged_metrics().counter("c"), 5);
        assert_eq!(rec.snapshots().len(), 1);
    }
}
