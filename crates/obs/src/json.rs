//! A small JSON value type with a writer and a strict recursive-descent
//! parser. This is the only JSON machinery in the workspace: exporters use
//! the writer, and the trace round-trip tests use the parser.
//!
//! Integers are kept exact: `Json::UInt` survives writing and re-parsing
//! bit-for-bit (needed so metric counters reconcile with `SimReport` totals
//! by exact integer comparison), while `Json::Num` covers everything else.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Exact non-negative integer (counters, byte totals, timestamps).
    UInt(u64),
    /// Any other number, rendered with enough precision to round-trip.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects: `Json::obj([("k", v), ...])`.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Iterate object fields as a map view (for tests that compare by key).
    pub fn to_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(fields) => Some(fields.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }

    // -- writer -------------------------------------------------------------

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // Shortest representation that round-trips through f64.
                    let _ = write!(out, "{f}");
                    // `{}` on an integral f64 prints without a decimal point;
                    // that is still valid JSON, leave as-is.
                } else {
                    // JSON has no Inf/NaN; export as null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // -- parser -------------------------------------------------------------

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl std::fmt::Display for Json {
    /// Compact JSON serialization (`to_string()` comes with it).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "42", "18446744073709551615"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!(Json::parse("-1.5").unwrap(), Json::Num(-1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn uint_is_exact_at_u64_max() {
        let v = Json::UInt(u64::MAX);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn round_trips_structures() {
        let v = Json::obj([
            ("name", Json::str("comm/allreduce")),
            ("ts", Json::Num(12.625)),
            ("n", Json::UInt(7)),
            (
                "args",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("a\"b\\c\nd")]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let text = r#" { "a" : [ 1 , { "b" : "x" } ] , "c" : null } "#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u00e9A\"").unwrap(),
            Json::Str("éA".to_string())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        // Raw multi-byte characters pass through unescaped too.
        assert_eq!(Json::parse(r#""né""#).unwrap(), Json::Str("né".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn control_chars_escape_and_round_trip() {
        let v = Json::Str("\u{1}x".to_string());
        let text = v.to_string();
        assert!(text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
