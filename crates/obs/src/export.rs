//! Trace exporters: Chrome `trace_event` JSON and a JSONL event stream.
//!
//! The Chrome format (loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>) wants timestamps in *microseconds*; our events
//! carry virtual nanoseconds, so `ts`/`dur` are emitted as fractional
//! microseconds to preserve sub-µs precision. `pid` is always 0 (one
//! simulated job); `tid` is the rank, so each rank gets its own track.

use crate::json::{Json, JsonError};
use crate::trace::{intern_cat, TraceEvent};

fn args_json(args: &[(String, Json)]) -> Json {
    Json::Obj(args.to_vec())
}

fn us(ns: u64) -> Json {
    if ns.is_multiple_of(1_000) {
        Json::UInt(ns / 1_000)
    } else {
        Json::Num(ns as f64 / 1_000.0)
    }
}

fn event_json(ev: &TraceEvent) -> Json {
    match ev {
        TraceEvent::Complete {
            cat,
            name,
            rank,
            ts_ns,
            dur_ns,
            args,
        } => Json::obj([
            ("ph", Json::str("X")),
            ("cat", Json::str(*cat)),
            ("name", Json::str(name.clone())),
            ("pid", Json::UInt(0)),
            ("tid", Json::UInt(*rank as u64)),
            ("ts", us(*ts_ns)),
            ("dur", us(*dur_ns)),
            ("args", args_json(args)),
        ]),
        TraceEvent::Instant {
            cat,
            name,
            rank,
            ts_ns,
            args,
        } => Json::obj([
            ("ph", Json::str("i")),
            ("cat", Json::str(*cat)),
            ("name", Json::str(name.clone())),
            ("pid", Json::UInt(0)),
            ("tid", Json::UInt(*rank as u64)),
            ("ts", us(*ts_ns)),
            ("s", Json::str("t")),
            ("args", args_json(args)),
        ]),
    }
}

/// Render events as a Chrome `trace_event` document:
/// `{"displayTimeUnit":"ns","traceEvents":[...]}`.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let items: Vec<Json> = events.iter().map(event_json).collect();
    Json::obj([
        ("displayTimeUnit", Json::str("ns")),
        ("traceEvents", Json::Arr(items)),
    ])
    .to_string()
}

/// Render events as JSONL: one event object per line, same fields as the
/// Chrome export but with exact nanosecond `ts_ns`/`dur_ns` timestamps.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let j = match ev {
            TraceEvent::Complete {
                cat,
                name,
                rank,
                ts_ns,
                dur_ns,
                args,
            } => Json::obj([
                ("kind", Json::str("span")),
                ("cat", Json::str(*cat)),
                ("name", Json::str(name.clone())),
                ("rank", Json::UInt(*rank as u64)),
                ("ts_ns", Json::UInt(*ts_ns)),
                ("dur_ns", Json::UInt(*dur_ns)),
                ("args", args_json(args)),
            ]),
            TraceEvent::Instant {
                cat,
                name,
                rank,
                ts_ns,
                args,
            } => Json::obj([
                ("kind", Json::str("instant")),
                ("cat", Json::str(*cat)),
                ("name", Json::str(name.clone())),
                ("rank", Json::UInt(*rank as u64)),
                ("ts_ns", Json::UInt(*ts_ns)),
                ("args", args_json(args)),
            ]),
        };
        out.push_str(&j.to_string());
        out.push('\n');
    }
    out
}

/// A span decoded from an exported Chrome trace (round-trip direction).
/// Timestamps are back in nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedEvent {
    pub phase: char,
    pub cat: String,
    pub name: String,
    pub pid: u64,
    pub tid: u64,
    pub ts_ns: u64,
    pub dur_ns: u64,
    /// Span/instant attributes, in emission order.
    pub args: Vec<(String, Json)>,
}

/// Parse a Chrome `trace_event` document produced by [`chrome_trace`] back
/// into its events. Used by round-trip tests and by external tooling that
/// wants to post-process exported traces.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ParsedEvent>, JsonError> {
    let doc = Json::parse(text)?;
    let bad = |msg: &str| JsonError {
        pos: 0,
        msg: msg.to_string(),
    };
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing traceEvents array"))?;
    let mut out = Vec::with_capacity(events.len());
    for (idx, ev) in events.iter().enumerate() {
        let bad = |msg: &str| JsonError {
            pos: 0,
            msg: format!("traceEvents[{idx}]: {msg}"),
        };
        let field_str = |k: &str| {
            ev.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing string field `{k}`")))
        };
        let field_u64 = |k: &str| {
            ev.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("missing integer field `{k}`")))
        };
        // ts/dur may be fractional µs; decode to ns with rounding.
        let field_ns = |k: &str, required: bool| -> Result<u64, JsonError> {
            match ev.get(k).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => Ok((v * 1_000.0).round() as u64),
                Some(_) => Err(bad(&format!("negative time field `{k}`"))),
                None if required => Err(bad(&format!("missing time field `{k}`"))),
                None => Ok(0),
            }
        };
        let ph = field_str("ph")?;
        let args = match ev.get("args") {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        };
        out.push(ParsedEvent {
            phase: ph.chars().next().ok_or_else(|| bad("empty ph"))?,
            cat: field_str("cat")?,
            name: field_str("name")?,
            pid: field_u64("pid")?,
            tid: field_u64("tid")?,
            ts_ns: field_ns("ts", true)?,
            dur_ns: field_ns("dur", ph == "X")?,
            args,
        });
    }
    Ok(out)
}

/// Parse a JSONL stream produced by [`jsonl`] back into [`TraceEvent`]s,
/// preserving exact nanosecond timestamps, attribute order, and the event
/// order of the stream. Blank lines are skipped. Together with
/// [`analysis::analyze`](crate::analysis::analyze) this makes offline
/// profiling of dumped traces possible without the original `Recorder`.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, JsonError> {
    let bad = |msg: String| JsonError { pos: 0, msg };
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // Attach the 1-based line number to any JSON-level error so a bad
        // line in a long dump is findable (the inner `pos` is the byte
        // offset *within* the line).
        let j = Json::parse(line).map_err(|e| JsonError {
            pos: e.pos,
            msg: format!("line {}: {}", lineno + 1, e.msg),
        })?;
        let field_str = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("line {}: missing string `{k}`", lineno + 1)))
        };
        let field_u64 = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("line {}: missing integer `{k}`", lineno + 1)))
        };
        let args = match j.get("args") {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        };
        let cat = intern_cat(&field_str("cat")?);
        let name = field_str("name")?;
        let rank = field_u64("rank")? as usize;
        let ts_ns = field_u64("ts_ns")?;
        match field_str("kind")?.as_str() {
            "span" => out.push(TraceEvent::Complete {
                cat,
                name,
                rank,
                ts_ns,
                dur_ns: field_u64("dur_ns")?,
                args,
            }),
            "instant" => out.push(TraceEvent::Instant {
                cat,
                name,
                rank,
                ts_ns,
                args,
            }),
            other => return Err(bad(format!("line {}: unknown kind `{other}`", lineno + 1))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Complete {
                cat: "sched",
                name: "run".to_string(),
                rank: 0,
                ts_ns: 1_500,
                dur_ns: 10_000,
                args: vec![("work".to_string(), Json::Num(5.5))],
            },
            TraceEvent::Instant {
                cat: "runtime",
                name: "load-change".to_string(),
                rank: 2,
                ts_ns: 2_000_000,
                args: vec![],
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips() {
        let text = chrome_trace(&sample());
        let parsed = parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].phase, 'X');
        assert_eq!(parsed[0].cat, "sched");
        assert_eq!(parsed[0].ts_ns, 1_500); // fractional µs decoded exactly
        assert_eq!(parsed[0].dur_ns, 10_000);
        assert_eq!(parsed[1].phase, 'i');
        assert_eq!(parsed[1].tid, 2);
        assert_eq!(parsed[1].ts_ns, 2_000_000);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let text = jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let j = Json::parse(line).unwrap();
            assert!(j.get("kind").is_some());
            assert!(j.get("ts_ns").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn parse_rejects_non_trace_documents() {
        assert!(parse_chrome_trace("[1,2,3]").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\": [{}]}").is_err());
    }

    #[test]
    fn jsonl_round_trips_events_exactly() {
        let events = sample();
        let parsed = parse_jsonl(&jsonl(&events)).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn chrome_parse_preserves_args_in_order() {
        let ev = TraceEvent::Instant {
            cat: "comm",
            name: "send".to_string(),
            rank: 1,
            ts_ns: 42,
            args: vec![
                ("peer".to_string(), Json::UInt(3)),
                ("seq".to_string(), Json::UInt(7)),
                ("bytes".to_string(), Json::UInt(1024)),
            ],
        };
        let parsed = parse_chrome_trace(&chrome_trace(std::slice::from_ref(&ev))).unwrap();
        assert_eq!(parsed[0].args.len(), 3);
        assert_eq!(parsed[0].args[0].0, "peer");
        assert_eq!(parsed[0].args[1], ("seq".to_string(), Json::UInt(7)));
        assert_eq!(parsed[0].args[2].1.as_u64(), Some(1024));
    }

    #[test]
    fn parse_jsonl_reports_line_numbers_for_bad_json() {
        // Two good lines, then a truncated third: the error must name
        // line 3, not panic or point at byte 0 of the whole stream.
        let mut text = jsonl(&sample());
        text.push_str("{\"kind\":\"span\",\"cat\":\"sched\"");
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.msg.contains("line 3"), "{err}");

        let err = parse_jsonl("{\"kind\":\"span\"}\ngarbage here\n").unwrap_err();
        assert!(err.msg.contains("line 1"), "{err}");
        let err = parse_jsonl("\n\ngarbage here\n").unwrap_err();
        assert!(err.msg.contains("line 3"), "{err}");
    }

    #[test]
    fn parse_jsonl_survives_truncated_and_binary_garbage() {
        // Truncation mid-escape, mid-number, mid-object — all errors with
        // a line number, never a panic.
        for frag in [
            "{\"kind\":\"span\",\"name\":\"a\\",
            "{\"kind\":\"span\",\"ts_ns\":12",
            "{",
            "\u{0}\u{1}\u{2}",
            "{\"kind\":\"instant\",\"cat\":\"x\",\"name\":\"n\",\"rank\":-1,\"ts_ns\":0}",
        ] {
            let err = parse_jsonl(frag).unwrap_err();
            assert!(err.msg.contains("line 1"), "{frag:?} -> {err}");
        }
    }

    #[test]
    fn chrome_parse_errors_name_the_offending_event() {
        let doc = r#"{"traceEvents":[
            {"ph":"i","cat":"a","name":"n","pid":0,"tid":0,"ts":1,"args":{}},
            {"ph":"X","cat":"a","name":"n","pid":0,"tid":0,"args":{}}
        ]}"#;
        let err = parse_chrome_trace(doc).unwrap_err();
        assert!(err.msg.contains("traceEvents[1]"), "{err}");
        assert!(err.msg.contains("`ts`"), "{err}");

        let neg = r#"{"traceEvents":[{"ph":"i","cat":"a","name":"n","pid":0,"tid":0,"ts":-5}]}"#;
        let err = parse_chrome_trace(neg).unwrap_err();
        assert!(err.msg.contains("traceEvents[0]"), "{err}");
        assert!(err.msg.contains("negative"), "{err}");
    }

    #[test]
    fn parse_jsonl_rejects_malformed_lines() {
        assert!(parse_jsonl(
            "{\"kind\":\"mystery\",\"cat\":\"x\",\"name\":\"n\",\"rank\":0,\"ts_ns\":0}"
        )
        .is_err());
        assert!(parse_jsonl("{\"kind\":\"span\"}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert_eq!(parse_jsonl("\n\n").unwrap().len(), 0);
    }
}
