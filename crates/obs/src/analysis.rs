//! Trace analysis: wait-state attribution, cross-rank critical path, and
//! per-adaptation-cycle audits over [`TraceEvent`] streams.
//!
//! The paper's whole argument (§4.2–4.4) is that per-iteration time
//! decomposes into compute, competing-process interference, communication
//! wait, and redistribution cost. The raw traces only *record* spans; this
//! module turns them into numbers:
//!
//! * **Per-rank buckets** ([`Buckets`]): every nanosecond of each rank's
//!   makespan is classified into exactly one of seven exclusive buckets —
//!   `compute` (CPU actually consumed by the application), `interference`
//!   (scheduler slices lost to competing processes), `late_wait`
//!   (blocked at a receive before the matching send was even issued),
//!   `network` (blocked while the message was serializing or queued on a
//!   NIC), `redist` (inside a `redistribute` span), `runtime` (inside the
//!   monitor/balancer pipeline: `end_cycle`, `finish_grace`, `balance`,
//!   `drop_eval`), and `other` (untraced time, e.g. virtual sleeps). The
//!   buckets sum to the rank's makespan *exactly* — no double counting.
//! * **Critical path** ([`CritSegment`]): a backward replay from the
//!   last-finishing rank. Whenever the walk reaches a blocked receive it
//!   follows the message (linked by the `seq` attribute) to its sender and
//!   continues there, so the segments partition `[0, makespan]` across
//!   ranks: work segments on one rank, transfer segments hopping between
//!   them.
//! * **Cycle audits** ([`CycleAudit`]): for every redistribution, the
//!   balancer's predicted post-balance imbalance (from the `balance` span)
//!   against the *measured* max/mean cycle-time imbalance in windows
//!   before and after the move.
//!
//! ## Input contract
//!
//! `analyze` takes events in the order [`Recorder::events`](crate::Recorder::events)
//! returns them — sorted by `(ts_ns, rank, emission seq)` — and never
//! re-sorts. Streams parsed back from disk via
//! [`parse_jsonl`](crate::export::parse_jsonl) preserve that order.
//!
//! ## Span-aggregation equivalence
//!
//! The simulator's fast path aggregates thousands of scheduler quanta into
//! one `sched` span; stepped mode (`DYNMPI_SIM_STEPPED=1`) emits them one
//! by one. Both attach exact `cpu`/`slices` attributes, and this analyzer
//! attributes from those sums rather than from span counts, so the
//! resulting buckets, critical path, and audits are bit-identical between
//! the two modes (see `crates/sim/tests/profile_equivalence.rs`).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::json::Json;
use crate::trace::TraceEvent;

/// Runtime-pipeline span names whose contents count as runtime overhead
/// (monitor + balancer), not application time.
const RUNTIME_OVERHEAD_SPANS: &[&str] = &[
    "end_cycle",
    "finish_grace",
    "balance",
    "drop_eval",
    "arrival_eval",
    "crash_recovery",
];

/// Measured-imbalance window length (cycles) on each side of a
/// redistribution.
const AUDIT_WINDOW: u64 = 3;

/// Cycles skipped right after a redistribution before the "after" window
/// starts (the control-plane pipeline lag pollutes them).
const AUDIT_SETTLE: u64 = 2;

fn arg_u64(args: &[(String, Json)], key: &str) -> Option<u64> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
}

fn arg_f64(args: &[(String, Json)], key: &str) -> Option<f64> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

// ---------------------------------------------------------------------------
// Public result types
// ---------------------------------------------------------------------------

/// Exclusive per-rank time buckets, in virtual nanoseconds. They sum to the
/// rank's makespan exactly (`total() == makespan_ns`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Buckets {
    /// CPU consumed by application code (including per-row grace timing).
    pub compute_ns: u64,
    /// Wall time inside application `sched` spans not spent running: the
    /// scheduler slices of competing processes.
    pub interference_ns: u64,
    /// Blocked at a receive before the matching send was issued
    /// (late-sender / late-receiver wait).
    pub late_wait_ns: u64,
    /// Blocked while the matching message was in the network
    /// (serialization plus NIC queueing — see
    /// [`RankAttribution::contention_ns`] for the queued share).
    pub network_ns: u64,
    /// Everything inside a `redistribute` span: pack, exchange, unpack.
    pub redist_ns: u64,
    /// Everything inside the runtime adaptation pipeline (`end_cycle`,
    /// `finish_grace`, `balance`, `drop_eval`): monitor + balancer cost.
    pub runtime_ns: u64,
    /// Untraced time (virtual sleeps, gaps). Small by construction.
    pub other_ns: u64,
}

impl Buckets {
    /// Sum of all buckets — equals the rank's makespan.
    pub fn total(&self) -> u64 {
        self.compute_ns
            + self.interference_ns
            + self.late_wait_ns
            + self.network_ns
            + self.redist_ns
            + self.runtime_ns
            + self.other_ns
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("compute_ns", Json::UInt(self.compute_ns)),
            ("interference_ns", Json::UInt(self.interference_ns)),
            ("late_wait_ns", Json::UInt(self.late_wait_ns)),
            ("network_ns", Json::UInt(self.network_ns)),
            ("redist_ns", Json::UInt(self.redist_ns)),
            ("runtime_ns", Json::UInt(self.runtime_ns)),
            ("other_ns", Json::UInt(self.other_ns)),
        ])
    }
}

/// One rank's attribution row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankAttribution {
    pub rank: usize,
    /// End of this rank's last traced event (virtual ns since start).
    pub makespan_ns: u64,
    pub buckets: Buckets,
    /// Total CPU this rank actually consumed, across all contexts
    /// (compute plus the CPU share of redist/runtime spans).
    pub busy_ns: u64,
    /// Share of `buckets.network_ns` spent queued behind a busy NIC
    /// rather than serializing — the contention component.
    pub contention_ns: u64,
}

impl RankAttribution {
    /// Percentage of the makespan attributed to a traced bucket (i.e.
    /// everything except `other`). 100.0 when fully covered.
    pub fn coverage_pct(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 100.0;
        }
        100.0 * (1.0 - self.buckets.other_ns as f64 / self.makespan_ns as f64)
    }
}

/// What a critical-path segment was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegKind {
    /// The rank was executing (compute, local waits, runtime work).
    Work { rank: usize },
    /// The path followed a message from `src` to `dst`.
    Transfer {
        src: usize,
        dst: usize,
        bytes: u64,
        tag: u64,
    },
}

/// One segment of the cross-rank critical path. Segments are returned in
/// time order and partition `[0, makespan_ns]` with no gaps or overlaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CritSegment {
    pub kind: SegKind,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl CritSegment {
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    fn to_json(self) -> Json {
        let mut fields = vec![
            ("start_ns".to_string(), Json::UInt(self.start_ns)),
            ("end_ns".to_string(), Json::UInt(self.end_ns)),
        ];
        match self.kind {
            SegKind::Work { rank } => {
                fields.insert(0, ("kind".to_string(), Json::str("work")));
                fields.push(("rank".to_string(), Json::UInt(rank as u64)));
            }
            SegKind::Transfer {
                src,
                dst,
                bytes,
                tag,
            } => {
                fields.insert(0, ("kind".to_string(), Json::str("transfer")));
                fields.push(("src".to_string(), Json::UInt(src as u64)));
                fields.push(("dst".to_string(), Json::UInt(dst as u64)));
                fields.push(("bytes".to_string(), Json::UInt(bytes)));
                fields.push(("tag".to_string(), Json::UInt(tag)));
            }
        }
        Json::Obj(fields)
    }
}

/// Predicted vs. realized imbalance around one redistribution.
///
/// Imbalance is the max/mean ratio of per-rank mean cycle wall time over a
/// [`AUDIT_WINDOW`]-cycle window; `None` when the window has no data (run
/// ended, fewer than two ranks reporting).
#[derive(Clone, Debug, PartialEq)]
pub struct CycleAudit {
    /// Phase cycle the redistribution executed in.
    pub cycle: u64,
    /// Wall seconds the redistribution itself took.
    pub redist_seconds: f64,
    pub rows_moved: u64,
    /// Fraction of rows that changed owner.
    pub moved_fraction: Option<f64>,
    /// The balancer's predicted post-balance imbalance (from the `balance`
    /// span's attributes).
    pub predicted_imbalance: Option<f64>,
    /// Measured imbalance over the cycles just before the grace period's
    /// redistribution fired.
    pub imbalance_before: Option<f64>,
    /// Measured imbalance after the move (skipping the pipeline-lag
    /// settle cycles).
    pub imbalance_after: Option<f64>,
}

impl CycleAudit {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("cycle".to_string(), Json::UInt(self.cycle)),
            ("seconds".to_string(), Json::Num(self.redist_seconds)),
            ("rows_moved".to_string(), Json::UInt(self.rows_moved)),
        ];
        let opt = |fields: &mut Vec<(String, Json)>, key: &str, v: Option<f64>| {
            if let Some(x) = v {
                if x.is_finite() {
                    fields.push((key.to_string(), Json::Num(x)));
                }
            }
        };
        opt(&mut fields, "moved_fraction", self.moved_fraction);
        opt(&mut fields, "predicted_imbalance", self.predicted_imbalance);
        opt(&mut fields, "imbalance_before", self.imbalance_before);
        opt(&mut fields, "imbalance_after", self.imbalance_after);
        Json::Obj(fields)
    }
}

/// One row of the critical-path blame table: exact nanoseconds of the
/// cross-rank critical path charged to a `(node, cause)` bucket. The
/// causes reuse the [`Buckets`] vocabulary plus `transfer` (the path rode
/// a message, blamed on the sending node). Entries sum exactly to the
/// critical-path length, so the table answers "who, doing what, set the
/// makespan".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlameEntry {
    pub node: usize,
    pub cause: &'static str,
    pub ns: u64,
}

impl BlameEntry {
    fn to_json(self) -> Json {
        Json::obj([
            ("node", Json::UInt(self.node as u64)),
            ("cause", Json::str(self.cause)),
            ("ns", Json::UInt(self.ns)),
        ])
    }
}

/// The full analysis result: per-rank attribution, critical path, audits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// End of the last traced event across all ranks.
    pub makespan_ns: u64,
    /// One row per rank, sorted by rank.
    pub ranks: Vec<RankAttribution>,
    /// Time-ordered critical path partitioning `[0, makespan_ns]`.
    pub critical_path: Vec<CritSegment>,
    /// One audit per redistribution, in cycle order.
    pub cycles: Vec<CycleAudit>,
    /// Critical-path blame, largest share first (ties by node, cause).
    pub blame: Vec<BlameEntry>,
}

impl ProfileReport {
    /// Total duration of the critical path (== `makespan_ns` whenever the
    /// trace is non-empty, since the segments partition it).
    pub fn critical_path_ns(&self) -> u64 {
        self.critical_path.iter().map(CritSegment::dur_ns).sum()
    }

    /// Worst per-rank coverage: the smallest share of any rank's makespan
    /// that landed in a traced (non-`other`) bucket.
    pub fn min_coverage_pct(&self) -> f64 {
        self.ranks
            .iter()
            .map(RankAttribution::coverage_pct)
            .fold(100.0, f64::min)
    }

    /// The `n` longest critical-path segments, longest first.
    pub fn top_segments(&self, n: usize) -> Vec<CritSegment> {
        let mut segs = self.critical_path.clone();
        segs.sort_by_key(|s| std::cmp::Reverse(s.dur_ns()));
        segs.truncate(n);
        segs
    }

    /// The `n` largest blame entries (the top-culprit table).
    pub fn top_blame(&self, n: usize) -> &[BlameEntry] {
        &self.blame[..n.min(self.blame.len())]
    }

    /// JSON document (schema documented in DESIGN.md §10).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("makespan_ns", Json::UInt(self.makespan_ns)),
            ("critical_path_ns", Json::UInt(self.critical_path_ns())),
            ("min_coverage_pct", Json::Num(self.min_coverage_pct())),
            (
                "ranks",
                Json::Arr(
                    self.ranks
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("rank", Json::UInt(r.rank as u64)),
                                ("makespan_ns", Json::UInt(r.makespan_ns)),
                                ("busy_ns", Json::UInt(r.busy_ns)),
                                ("contention_ns", Json::UInt(r.contention_ns)),
                                ("buckets", r.buckets.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "critical_path",
                Json::Arr(self.critical_path.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "cycles",
                Json::Arr(self.cycles.iter().map(CycleAudit::to_json).collect()),
            ),
            (
                "blame",
                Json::Arr(self.blame.iter().map(|b| b.to_json()).collect()),
            ),
        ])
    }

    /// Human-readable report: attribution table, top critical-path
    /// segments, redistribution audits.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let secs = |ns: u64| ns as f64 / 1e9;
        let pct = |ns: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * ns as f64 / total as f64
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== Profile: makespan {:.6}s, {} ranks, critical path {} segments ({:.6}s) ==",
            secs(self.makespan_ns),
            self.ranks.len(),
            self.critical_path.len(),
            secs(self.critical_path_ns()),
        );
        let _ = writeln!(
            out,
            "{:>4}  {:>11}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}",
            "rank", "makespan(s)", "comp%", "intf%", "late%", "net%", "redist%", "rt%", "other%"
        );
        for r in &self.ranks {
            let b = &r.buckets;
            let m = r.makespan_ns;
            let _ = writeln!(
                out,
                "{:>4}  {:>11.6}  {:>7.2}  {:>7.2}  {:>7.2}  {:>7.2}  {:>7.2}  {:>7.2}  {:>7.2}",
                r.rank,
                secs(m),
                pct(b.compute_ns, m),
                pct(b.interference_ns, m),
                pct(b.late_wait_ns, m),
                pct(b.network_ns, m),
                pct(b.redist_ns, m),
                pct(b.runtime_ns, m),
                pct(b.other_ns, m),
            );
        }
        let _ = writeln!(out, "-- top critical-path segments --");
        for s in self.top_segments(10) {
            match s.kind {
                SegKind::Work { rank } => {
                    let _ = writeln!(
                        out,
                        "  [rank {rank}] work {:.6}s  (t={:.6}s..{:.6}s)",
                        secs(s.dur_ns()),
                        secs(s.start_ns),
                        secs(s.end_ns),
                    );
                }
                SegKind::Transfer {
                    src,
                    dst,
                    bytes,
                    tag,
                } => {
                    let _ = writeln!(
                        out,
                        "  [{src}->{dst}] transfer {:.6}s  ({bytes} B, tag {tag}, t={:.6}s..{:.6}s)",
                        secs(s.dur_ns()),
                        secs(s.start_ns),
                        secs(s.end_ns),
                    );
                }
            }
        }
        if !self.blame.is_empty() {
            let _ = writeln!(out, "-- critical-path blame (top culprits) --");
            for b in self.top_blame(8) {
                let _ = writeln!(
                    out,
                    "  node {:>3}  {:<12} {:>10.6}s  ({:.1}% of path)",
                    b.node,
                    b.cause,
                    secs(b.ns),
                    pct(b.ns, self.critical_path_ns()),
                );
            }
        }
        if !self.cycles.is_empty() {
            let _ = writeln!(out, "-- redistribution audits --");
            for c in &self.cycles {
                let fmt_opt = |v: Option<f64>| match v {
                    Some(x) if x.is_finite() => format!("{x:.3}"),
                    _ => "-".to_string(),
                };
                let _ = writeln!(
                    out,
                    "  cycle {:>4}: moved {} rows in {:.4}s; imbalance predicted {} | before {} | after {}",
                    c.cycle,
                    c.rows_moved,
                    c.redist_seconds,
                    fmt_opt(c.predicted_imbalance),
                    fmt_opt(c.imbalance_before),
                    fmt_opt(c.imbalance_after),
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Internal timeline model
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Interval {
    start: u64,
    end: u64,
}

/// A blocked-receive wait, linked (when the recv was traced with `peer`
/// and `seq` attributes) to the `(sender rank, seq)` of the message that
/// resolved it.
#[derive(Clone, Copy, Debug)]
struct BlockedWait {
    start: u64,
    end: u64,
    link: Option<(usize, u64)>,
    /// RX-NIC queueing charged to the resolving message (`rx_queued_ns`).
    rx_queued: u64,
}

/// A scheduler leaf span: the only thing (besides blocked waits and
/// untraced sleeps) that consumes virtual time on a rank.
#[derive(Clone, Copy, Debug)]
struct SchedLeaf {
    start: u64,
    end: u64,
    cpu: u64,
}

/// One message-send record, keyed by `(sender rank, seq)` — sequence
/// numbers are per-sender program order, so the pair is globally unique.
#[derive(Clone, Copy, Debug)]
struct SendRec {
    rank: usize,
    ts: u64,
    bytes: u64,
    tag: u64,
    queued: u64,
}

#[derive(Default)]
struct Lane {
    makespan: u64,
    sched: Vec<SchedLeaf>,
    blocked: Vec<BlockedWait>,
    redist_ctx: Vec<Interval>,
    runtime_ctx: Vec<Interval>,
    begin_cycle: BTreeMap<u64, u64>,
    end_cycle: BTreeMap<u64, u64>,
}

/// Merge possibly nested/overlapping intervals into a disjoint sorted list.
fn merge(mut v: Vec<Interval>) -> Vec<Interval> {
    v.sort_by_key(|i| (i.start, i.end));
    let mut out: Vec<Interval> = Vec::with_capacity(v.len());
    for i in v {
        match out.last_mut() {
            Some(last) if i.start <= last.end => last.end = last.end.max(i.end),
            _ => out.push(i),
        }
    }
    out
}

/// Is `[start, end)` contained in one of the merged `intervals`?
fn contained(intervals: &[Interval], start: u64, end: u64) -> bool {
    let idx = intervals.partition_point(|i| i.start <= start);
    idx > 0 && intervals[idx - 1].end >= end
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

/// Analyze a trace-event stream (in [`Recorder::events`](crate::Recorder::events)
/// order) into a [`ProfileReport`].
pub fn analyze(events: &[TraceEvent]) -> ProfileReport {
    let mut lanes: BTreeMap<usize, Lane> = BTreeMap::new();
    let mut sends: HashMap<(usize, u64), SendRec> = HashMap::new();
    // Redistribution instants, deduped by cycle: (seconds, rows_moved).
    let mut redists: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    // `balance` span attributes, keyed by cycle.
    let mut balances: BTreeMap<u64, (Option<f64>, Option<f64>)> = BTreeMap::new();

    for ev in events {
        let rank = ev.rank();
        let lane = lanes.entry(rank).or_default();
        match ev {
            TraceEvent::Complete {
                cat,
                name,
                ts_ns,
                dur_ns,
                args,
                ..
            } => {
                let (start, end) = (*ts_ns, ts_ns + dur_ns);
                lane.makespan = lane.makespan.max(end);
                match *cat {
                    "sched" => {
                        if name == "blocked" {
                            lane.blocked.push(BlockedWait {
                                start,
                                end,
                                link: None,
                                rx_queued: 0,
                            });
                        } else {
                            // Fall back on the span name when the exact
                            // `cpu` attribute is absent (legacy traces).
                            let cpu = arg_u64(args, "cpu").unwrap_or(if name == "run" {
                                end - start
                            } else {
                                0
                            });
                            lane.sched.push(SchedLeaf {
                                start,
                                end,
                                cpu: cpu.min(end - start),
                            });
                        }
                    }
                    "redist" if name == "redistribute" => {
                        lane.redist_ctx.push(Interval { start, end });
                    }
                    "runtime" if RUNTIME_OVERHEAD_SPANS.contains(&name.as_str()) => {
                        lane.runtime_ctx.push(Interval { start, end });
                        if name == "end_cycle" {
                            if let Some(c) = arg_u64(args, "cycle") {
                                lane.end_cycle.entry(c).or_insert(end);
                            }
                        }
                        if name == "balance" {
                            if let Some(c) = arg_u64(args, "cycle") {
                                balances.entry(c).or_insert((
                                    arg_f64(args, "predicted_imbalance"),
                                    arg_f64(args, "moved_fraction"),
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
            TraceEvent::Instant {
                cat,
                name,
                ts_ns,
                args,
                ..
            } => {
                lane.makespan = lane.makespan.max(*ts_ns);
                match (*cat, name.as_str()) {
                    ("comm", "send") => {
                        if let Some(seq) = arg_u64(args, "seq") {
                            sends.insert(
                                (rank, seq),
                                SendRec {
                                    rank,
                                    ts: *ts_ns,
                                    bytes: arg_u64(args, "bytes").unwrap_or(0),
                                    tag: arg_u64(args, "tag").unwrap_or(0),
                                    queued: arg_u64(args, "queued_ns").unwrap_or(0),
                                },
                            );
                        }
                    }
                    ("comm", "recv") => {
                        // Link the wait that this receive resolved: the
                        // receiver pops the message at the instant its
                        // blocked span ends, so the timestamps coincide.
                        // Seqs are per-sender, so the link key needs the
                        // peer (sending rank) too.
                        if let Some(last) = lane.blocked.last_mut() {
                            if last.end == *ts_ns && last.link.is_none() {
                                if let (Some(peer), Some(seq)) =
                                    (arg_u64(args, "peer"), arg_u64(args, "seq"))
                                {
                                    last.link = Some((peer as usize, seq));
                                    last.rx_queued = arg_u64(args, "rx_queued_ns").unwrap_or(0);
                                }
                            }
                        }
                    }
                    ("runtime", "begin_cycle") => {
                        if let Some(c) = arg_u64(args, "cycle") {
                            lane.begin_cycle.entry(c).or_insert(*ts_ns);
                        }
                    }
                    ("runtime", "redistributed") => {
                        if let Some(c) = arg_u64(args, "cycle") {
                            redists.entry(c).or_insert((
                                arg_f64(args, "seconds").unwrap_or(0.0),
                                arg_u64(args, "rows_moved").unwrap_or(0),
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Context intervals become disjoint unions for containment queries.
    for lane in lanes.values_mut() {
        lane.redist_ctx = merge(std::mem::take(&mut lane.redist_ctx));
        lane.runtime_ctx = merge(std::mem::take(&mut lane.runtime_ctx));
    }

    let makespan = lanes.values().map(|l| l.makespan).max().unwrap_or(0);
    let ranks = attribute(&lanes, &sends);
    let critical_path = critical_path(&lanes, &sends, makespan);
    let cycles = cycle_audits(&lanes, &redists, &balances);
    let blame = blame(&lanes, &sends, &critical_path);

    ProfileReport {
        makespan_ns: makespan,
        ranks,
        critical_path,
        cycles,
        blame,
    }
}

/// Overlap of `[a_start, a_end)` with `[b_start, b_end)` in ns.
fn overlap(a_start: u64, a_end: u64, b_start: u64, b_end: u64) -> u64 {
    a_end.min(b_end).saturating_sub(a_start.max(b_start))
}

/// Fold the critical path into the `(node, cause)` blame table. Work
/// segments are re-classified against the owning rank's lane exactly like
/// [`attribute`] classifies whole spans — redist/runtime context first,
/// then compute vs. interference (a partial leaf overlap splits its CPU
/// by the same u128 cumulative-prefix rule as the health monitor's
/// `split_attr`, so shares are exact and order-independent), blocked
/// waits by the late/network boundary at the matching send's timestamp.
/// Transfer segments are blamed on the sending node as `transfer`.
/// Uncovered path time stays `other`. Entries sum exactly to the
/// critical-path length.
fn blame(
    lanes: &BTreeMap<usize, Lane>,
    sends: &HashMap<(usize, u64), SendRec>,
    path: &[CritSegment],
) -> Vec<BlameEntry> {
    let mut table: BTreeMap<(usize, &'static str), u64> = BTreeMap::new();
    let mut add = |node: usize, cause: &'static str, ns: u64| {
        if ns > 0 {
            *table.entry((node, cause)).or_insert(0) += ns;
        }
    };
    for seg in path {
        match seg.kind {
            SegKind::Transfer { src, .. } => add(src, "transfer", seg.dur_ns()),
            SegKind::Work { rank } => {
                let lane = &lanes[&rank];
                let mut covered = 0u64;
                for s in &lane.sched {
                    let ov = overlap(s.start, s.end, seg.start_ns, seg.end_ns);
                    if ov == 0 {
                        continue;
                    }
                    covered += ov;
                    if contained(&lane.redist_ctx, s.start, s.end) {
                        add(rank, "redist", ov);
                    } else if contained(&lane.runtime_ctx, s.start, s.end) {
                        add(rank, "runtime", ov);
                    } else {
                        let dur = s.end - s.start;
                        let (lo, hi) = (seg.start_ns.max(s.start), seg.end_ns.min(s.end));
                        let prefix = |t: u64| -> u64 {
                            ((s.cpu as u128 * (t - s.start) as u128) / dur as u128) as u64
                        };
                        let cpu_share = prefix(hi) - prefix(lo);
                        add(rank, "compute", cpu_share);
                        add(rank, "interference", ov - cpu_share);
                    }
                }
                for w in &lane.blocked {
                    let ov = overlap(w.start, w.end, seg.start_ns, seg.end_ns);
                    if ov == 0 {
                        continue;
                    }
                    covered += ov;
                    if contained(&lane.redist_ctx, w.start, w.end) {
                        add(rank, "redist", ov);
                    } else if contained(&lane.runtime_ctx, w.start, w.end) {
                        add(rank, "runtime", ov);
                    } else {
                        match w.link.and_then(|k| sends.get(&k)) {
                            Some(send) => {
                                let boundary = send.ts.clamp(w.start, w.end);
                                let (lo, hi) = (seg.start_ns.max(w.start), seg.end_ns.min(w.end));
                                let late = overlap(lo, hi, w.start, boundary);
                                add(rank, "late-wait", late);
                                add(rank, "network", ov - late);
                            }
                            None => add(rank, "late-wait", ov),
                        }
                    }
                }
                add(rank, "other", seg.dur_ns().saturating_sub(covered));
            }
        }
    }
    let mut out: Vec<BlameEntry> = table
        .into_iter()
        .map(|((node, cause), ns)| BlameEntry { node, cause, ns })
        .collect();
    out.sort_by_key(|b| (std::cmp::Reverse(b.ns), b.node, b.cause));
    out
}

fn attribute(
    lanes: &BTreeMap<usize, Lane>,
    sends: &HashMap<(usize, u64), SendRec>,
) -> Vec<RankAttribution> {
    let mut out = Vec::with_capacity(lanes.len());
    for (&rank, lane) in lanes {
        let mut b = Buckets::default();
        let mut busy = 0u64;
        let mut contention = 0u64;
        let mut covered_ns = 0u64;
        for s in &lane.sched {
            let dur = s.end - s.start;
            covered_ns += dur;
            busy += s.cpu;
            if contained(&lane.redist_ctx, s.start, s.end) {
                b.redist_ns += dur;
            } else if contained(&lane.runtime_ctx, s.start, s.end) {
                b.runtime_ns += dur;
            } else {
                b.compute_ns += s.cpu;
                b.interference_ns += dur - s.cpu;
            }
        }
        for w in &lane.blocked {
            let dur = w.end - w.start;
            covered_ns += dur;
            if contained(&lane.redist_ctx, w.start, w.end) {
                b.redist_ns += dur;
                continue;
            }
            if contained(&lane.runtime_ctx, w.start, w.end) {
                b.runtime_ns += dur;
                continue;
            }
            match w.link.and_then(|k| sends.get(&k)) {
                Some(send) => {
                    // Up to the send instant the wait is the sender's
                    // fault; from the send to delivery it is the network's.
                    let boundary = send.ts.clamp(w.start, w.end);
                    b.late_wait_ns += boundary - w.start;
                    let net = w.end - boundary;
                    b.network_ns += net;
                    // Contention = TX-side plus RX-side NIC queueing of
                    // the resolving message, capped at the network share.
                    contention += (send.queued + w.rx_queued).min(net);
                }
                // No matching send traced (e.g. truncated stream): the
                // whole wait is a late-sender wait.
                None => b.late_wait_ns += dur,
            }
        }
        b.other_ns = lane.makespan.saturating_sub(covered_ns);
        out.push(RankAttribution {
            rank,
            makespan_ns: lane.makespan,
            buckets: b,
            busy_ns: busy,
            contention_ns: contention,
        });
    }
    out
}

/// Backward replay: start at the end of the last-finishing rank and walk
/// toward t=0, hopping to the sender whenever a linked blocked receive
/// gated progress. Produces a gap-free partition of `[0, makespan]`.
fn critical_path(
    lanes: &BTreeMap<usize, Lane>,
    sends: &HashMap<(usize, u64), SendRec>,
    makespan: u64,
) -> Vec<CritSegment> {
    if makespan == 0 || lanes.is_empty() {
        return Vec::new();
    }
    let mut cur = 0usize;
    let mut best = 0u64;
    for (&r, lane) in lanes {
        if lane.makespan > best {
            best = lane.makespan;
            cur = r;
        }
    }
    let mut t = makespan;
    let mut segs: Vec<CritSegment> = Vec::new();
    let mut visited: HashSet<(usize, usize)> = HashSet::new();
    loop {
        let lane = &lanes[&cur];
        let pick = lane
            .blocked
            .iter()
            .enumerate()
            .rev()
            .find(|(i, w)| {
                w.end <= t
                    && w.link.map(|k| sends.contains_key(&k)).unwrap_or(false)
                    && !visited.contains(&(cur, *i))
            })
            .map(|(i, w)| (i, *w));
        let Some((i, w)) = pick else {
            if t > 0 {
                segs.push(CritSegment {
                    kind: SegKind::Work { rank: cur },
                    start_ns: 0,
                    end_ns: t,
                });
            }
            break;
        };
        visited.insert((cur, i));
        if t > w.end {
            segs.push(CritSegment {
                kind: SegKind::Work { rank: cur },
                start_ns: w.end,
                end_ns: t,
            });
        }
        let send = sends[&w.link.expect("picked waits are linked")];
        let s_ts = send.ts.min(w.end);
        if w.end > s_ts {
            segs.push(CritSegment {
                kind: SegKind::Transfer {
                    src: send.rank,
                    dst: cur,
                    bytes: send.bytes,
                    tag: send.tag,
                },
                start_ns: s_ts,
                end_ns: w.end,
            });
        }
        cur = send.rank;
        t = s_ts;
        if t == 0 {
            break;
        }
    }
    segs.reverse();
    segs
}

/// Max/mean ratio of per-rank mean cycle wall time over cycles
/// `[lo, hi]`. `None` without at least two ranks reporting.
fn window_imbalance(lanes: &BTreeMap<usize, Lane>, lo: u64, hi: u64) -> Option<f64> {
    let mut per_rank: Vec<f64> = Vec::new();
    for lane in lanes.values() {
        let mut total = 0u64;
        let mut n = 0u64;
        for c in lo..=hi {
            if let (Some(&b), Some(&e)) = (lane.begin_cycle.get(&c), lane.end_cycle.get(&c)) {
                if e > b {
                    total += e - b;
                    n += 1;
                }
            }
        }
        if n > 0 {
            per_rank.push(total as f64 / n as f64);
        }
    }
    if per_rank.len() < 2 {
        return None;
    }
    let max = per_rank.iter().fold(0.0f64, |a, &b| a.max(b));
    let mean = per_rank.iter().sum::<f64>() / per_rank.len() as f64;
    (mean > 0.0).then(|| max / mean)
}

fn cycle_audits(
    lanes: &BTreeMap<usize, Lane>,
    redists: &BTreeMap<u64, (f64, u64)>,
    balances: &BTreeMap<u64, (Option<f64>, Option<f64>)>,
) -> Vec<CycleAudit> {
    redists
        .iter()
        .map(|(&cycle, &(seconds, rows_moved))| {
            let (predicted, moved_fraction) = balances.get(&cycle).copied().unwrap_or((None, None));
            let before = (cycle > 1).then(|| {
                let lo = cycle.saturating_sub(AUDIT_WINDOW).max(1);
                window_imbalance(lanes, lo, cycle - 1)
            });
            let after = window_imbalance(
                lanes,
                cycle + AUDIT_SETTLE,
                cycle + AUDIT_SETTLE + AUDIT_WINDOW - 1,
            );
            CycleAudit {
                cycle,
                redist_seconds: seconds,
                rows_moved,
                moved_fraction,
                predicted_imbalance: predicted,
                imbalance_before: before.flatten(),
                imbalance_after: after,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: &'static str, name: &str, rank: usize, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent::Complete {
            cat,
            name: name.to_string(),
            rank,
            ts_ns: ts,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    fn span_args(
        cat: &'static str,
        name: &str,
        rank: usize,
        ts: u64,
        dur: u64,
        args: Vec<(String, Json)>,
    ) -> TraceEvent {
        TraceEvent::Complete {
            cat,
            name: name.to_string(),
            rank,
            ts_ns: ts,
            dur_ns: dur,
            args,
        }
    }

    fn inst(name: &str, rank: usize, ts: u64, args: Vec<(String, Json)>) -> TraceEvent {
        TraceEvent::Instant {
            cat: "comm",
            name: name.to_string(),
            rank,
            ts_ns: ts,
            args,
        }
    }

    fn u(k: &str, v: u64) -> (String, Json) {
        (k.to_string(), Json::UInt(v))
    }

    /// Rank 1 computes 100ns, sends to rank 0 who blocked at t=10; the
    /// message was issued at 110 and arrived at 150.
    fn two_rank_trace() -> Vec<TraceEvent> {
        vec![
            // rank 0: 10ns compute, then blocked 10..150, then 50 compute.
            span_args("sched", "run", 0, 0, 10, vec![u("cpu", 10), u("slices", 1)]),
            span("sched", "blocked", 0, 10, 140),
            // rank 1: 110ns compute (55 cpu under 1 competitor), send.
            span_args(
                "sched",
                "run+wait",
                1,
                0,
                110,
                vec![u("cpu", 55), u("slices", 11)],
            ),
            inst(
                "send",
                1,
                110,
                vec![
                    u("peer", 0),
                    u("tag", 7),
                    u("seq", 42),
                    u("bytes", 64),
                    u("queued_ns", 3),
                ],
            ),
            inst(
                "recv",
                0,
                150,
                vec![
                    u("peer", 1),
                    u("tag", 7),
                    u("seq", 42),
                    u("bytes", 64),
                    u("rx_queued_ns", 2),
                ],
            ),
            span_args(
                "sched",
                "run",
                0,
                150,
                50,
                vec![u("cpu", 50), u("slices", 1)],
            ),
        ]
    }

    #[test]
    fn buckets_sum_to_makespan_and_split_waits() {
        let report = analyze(&two_rank_trace());
        assert_eq!(report.makespan_ns, 200);
        let r0 = &report.ranks[0];
        assert_eq!(r0.makespan_ns, 200);
        assert_eq!(r0.buckets.total(), 200);
        assert_eq!(r0.buckets.compute_ns, 60);
        // Blocked 10..150 with the send issued at 110: 100ns late-sender
        // wait, 40ns network.
        assert_eq!(r0.buckets.late_wait_ns, 100);
        assert_eq!(r0.buckets.network_ns, 40);
        // TX queueing (3) + RX queueing (2), both under the 40ns net share.
        assert_eq!(r0.contention_ns, 5);
        let r1 = &report.ranks[1];
        assert_eq!(r1.buckets.compute_ns, 55);
        assert_eq!(r1.buckets.interference_ns, 55);
        assert_eq!(r1.buckets.total(), r1.makespan_ns);
        // Rank 1's trace ends at 110: the remaining 0 is exact coverage.
        assert_eq!(r1.buckets.other_ns, 0);
    }

    #[test]
    fn critical_path_partitions_makespan_and_crosses_ranks() {
        let report = analyze(&two_rank_trace());
        assert_eq!(report.critical_path_ns(), report.makespan_ns);
        // Expected: work on rank 1 up to the send, transfer 1->0, work on
        // rank 0 from the wake to the end.
        assert_eq!(report.critical_path.len(), 3);
        assert_eq!(
            report.critical_path[0].kind,
            SegKind::Work { rank: 1 },
            "{:?}",
            report.critical_path
        );
        assert_eq!(
            report.critical_path[1].kind,
            SegKind::Transfer {
                src: 1,
                dst: 0,
                bytes: 64,
                tag: 7
            }
        );
        assert_eq!(
            (
                report.critical_path[1].start_ns,
                report.critical_path[1].end_ns
            ),
            (110, 150)
        );
        assert_eq!(report.critical_path[2].kind, SegKind::Work { rank: 0 });
        // Contiguous partition.
        assert_eq!(report.critical_path[0].start_ns, 0);
        for w in report.critical_path.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }
    }

    #[test]
    fn context_spans_reclassify_contained_time() {
        let events = vec![
            span("runtime", "end_cycle", 0, 0, 100),
            span_args("sched", "run", 0, 10, 30, vec![u("cpu", 30)]),
            span("sched", "blocked", 0, 40, 50),
            span("redist", "redistribute", 0, 100, 100),
            span_args("sched", "run", 0, 120, 60, vec![u("cpu", 60)]),
        ];
        let report = analyze(&events);
        let r0 = &report.ranks[0];
        // Both leaves inside end_cycle count as runtime overhead; the one
        // inside redistribute counts as redistribution.
        assert_eq!(r0.buckets.runtime_ns, 80);
        assert_eq!(r0.buckets.redist_ns, 60);
        assert_eq!(r0.buckets.compute_ns, 0);
        assert_eq!(r0.buckets.other_ns, 200 - 140);
        assert_eq!(r0.buckets.total(), r0.makespan_ns);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let report = analyze(&[]);
        assert_eq!(report.makespan_ns, 0);
        assert!(report.ranks.is_empty());
        assert!(report.critical_path.is_empty());
        assert_eq!(report.min_coverage_pct(), 100.0);
    }

    #[test]
    fn report_json_has_schema_fields() {
        let report = analyze(&two_rank_trace());
        let j = report.to_json();
        assert!(j.get("makespan_ns").and_then(Json::as_u64).is_some());
        assert!(j.get("ranks").and_then(Json::as_arr).is_some());
        let segs = j.get("critical_path").and_then(Json::as_arr).unwrap();
        assert!(!segs.is_empty());
        assert!(segs[0].get("kind").and_then(Json::as_str).is_some());
        let text = report.render_text();
        assert!(text.contains("critical path"));
        assert!(text.contains("rank"));
    }

    #[test]
    fn blame_tiles_critical_path_and_names_culprits() {
        let report = analyze(&two_rank_trace());
        let total: u64 = report.blame.iter().map(|b| b.ns).sum();
        assert_eq!(total, report.critical_path_ns());
        // The path rides rank 1's compute (55 cpu of the 110ns segment,
        // rest interference), the 40ns transfer blamed on the sender, and
        // rank 0's tail compute.
        assert!(report
            .blame
            .iter()
            .any(|b| b.node == 1 && b.cause == "transfer" && b.ns == 40));
        assert!(report
            .blame
            .iter()
            .any(|b| b.node == 1 && b.cause == "interference" && b.ns == 55));
        assert!(report
            .blame
            .iter()
            .any(|b| b.node == 0 && b.cause == "compute" && b.ns == 50));
        // Sorted descending; top_blame truncates.
        assert!(report.blame.windows(2).all(|w| w[0].ns >= w[1].ns));
        assert_eq!(report.top_blame(2).len(), 2);
        let text = report.render_text();
        assert!(text.contains("critical-path blame"));
    }

    #[test]
    fn self_send_zero_progress_terminates() {
        // A rank whose blocked wait resolves from a message it sent itself
        // at the very same timestamp must not loop forever.
        let events = vec![
            inst(
                "send",
                0,
                50,
                vec![u("peer", 0), u("seq", 1), u("bytes", 0), u("tag", 1)],
            ),
            span("sched", "blocked", 0, 40, 10),
            inst(
                "recv",
                0,
                50,
                vec![u("peer", 0), u("seq", 1), u("bytes", 0), u("tag", 1)],
            ),
            span_args("sched", "run", 0, 50, 10, vec![u("cpu", 10)]),
        ];
        let report = analyze(&events);
        assert_eq!(report.critical_path_ns(), report.makespan_ns);
    }
}
