//! # dynmpi — the Dyn-MPI runtime
//!
//! A from-scratch implementation of **Dyn-MPI** (Weatherly, Lowenthal,
//! Nakazawa, Lowenthal — SC 2003): an extension to message passing that
//! *automatically* redistributes data when the application or the
//! underlying non dedicated cluster changes.
//!
//! ## What it does
//!
//! * **Registration** (§2.2): the application registers its
//!   redistributable arrays — [`DenseMatrix`] in the 2-D projection
//!   layout, [`SparseMatrix`] as a vector of lists — its phases, and the
//!   DRSD ([`Drsd`]) of every array reference in a parallel loop.
//! * **Monitoring** (§4.2): per-cycle load readings from the `dmpi_ps`
//!   daemon; on a change, a 5-cycle *grace period* measures true unloaded
//!   per-iteration times via `/proc` or min-of-`gethrtime`.
//! * **Distribution** (§4.3): [`balance::successive_balance`] corrects the
//!   relative-power baseline for the CPU cost of communication on loaded
//!   nodes, calibrated by [`microbench`].
//! * **Redistribution & removal** (§4.4): whole extended rows move in
//!   single messages with storage reuse; after a post-redistribution
//!   window the runtime physically removes nodes whose participation
//!   hurts, reassigning relative ranks; global operations keep removed
//!   nodes current via send-out-only participation.
//!
//! ## Minimal usage sketch
//!
//! ```no_run
//! use dynmpi::{AccessMode, CommPattern, DenseMatrix, Drsd, DynMpi, DynMpiConfig, RedistArray};
//! use dynmpi_comm::run_threads;
//!
//! run_threads(4, |t| {
//!     let n = 1024;
//!     let mut rt = DynMpi::init(t, n, DynMpiConfig::default());
//!     let a = rt.register_dense("A", n);
//!     let ph = rt.init_phase(0, n, CommPattern::NearestNeighbor);
//!     rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::with_halo(1));
//!     let mut m = DenseMatrix::<f64>::new(n, n);
//!     let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
//!     rt.setup(&mut arrays);
//!     m.fill_rows(&rt.local_rows(a), |_, _| 0.0);
//!     for _step in 0..100 {
//!         rt.begin_cycle();
//!         if rt.participating() {
//!             let (lo, hi) = rt.my_range(ph).unwrap();
//!             for _i in lo..=hi { /* stencil on m */ }
//!             rt.charge_rows(ph, |_i| 5.0 * n as f64);
//!             // explicit neighbor exchange via t.send_slice/recv_vec …
//!         }
//!         let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
//!         rt.end_cycle(&mut arrays);
//!     }
//! });
//! ```

pub mod array;
pub mod balance;
pub mod checkpoint;
pub mod config;
pub mod dense;
pub mod dist;
pub mod drsd;
pub mod events;
pub mod microbench;
pub mod redist;
pub mod rowset;
pub mod runtime;
pub mod sparse;
pub mod timing;

pub use array::{AllocStats, ArrayKind, ArrayMeta, RedistArray};
pub use checkpoint::{BuddyCheckpoint, CKPT_BYTES_SENT, CKPT_REFRESHES, CKPT_REFRESH_TIMEOUTS};

pub use balance::{
    partition_rows, predict_cycle_time, relative_power, successive_balance,
    successive_balance_with_floor, CommModel, NodeLoad,
};
pub use config::{BalancerKind, DropPolicy, DynMpiConfig};
pub use dense::{ContiguousMatrix, DenseMatrix};
pub use dist::Distribution;
pub use drsd::{AccessMode, ArrayAccess, Bound, Drsd};
pub use events::RuntimeEvent;
pub use redist::{ghost_needs, RedistOutcome};
pub use rowset::RowSet;
pub use runtime::{ArrayId, CommPattern, CycleReport, DynMpi, PhaseId, PhaseSpec};
pub use sparse::{SparseMatrix, SparseRow};
pub use timing::{RowTimer, TimingMode};
