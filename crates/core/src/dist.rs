//! Data distributions over the first (distributed) array dimension.
//!
//! Dyn-MPI's model (§2.1): a *variable block* distribution assigns each
//! node a contiguous (possibly unequal) run of rows; a *cyclic*
//! distribution assigns rows modulo the node count. Distributions are
//! expressed over the **active** node set (relative ranks), since removed
//! nodes own nothing.

use crate::rowset::RowSet;

/// An assignment of `nrows` rows to `n` (active) nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Contiguous blocks: node `k` owns `starts[k]..starts[k+1]`.
    /// Invariant: `starts[0] == 0`, non-decreasing, `starts[n] == nrows`.
    Block { starts: Vec<usize> },
    /// Row `r` belongs to node `r % nnodes`.
    Cyclic { nnodes: usize, nrows: usize },
}

impl Distribution {
    /// An even block distribution (the usual starting point).
    pub fn block_even(nrows: usize, nnodes: usize) -> Distribution {
        let w = vec![1.0; nnodes];
        Distribution::block_from_weights(nrows, &w, 0)
    }

    /// Explicit per-node row counts.
    pub fn block_from_counts(counts: &[usize]) -> Distribution {
        assert!(!counts.is_empty(), "no nodes");
        let mut starts = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0;
        starts.push(0);
        for &c in counts {
            acc += c;
            starts.push(acc);
        }
        Distribution::Block { starts }
    }

    /// Blocks proportional to `weights` via the largest-remainder method,
    /// with an optional per-node floor of `min_rows` (used by *logical*
    /// node dropping, where a "removed" node keeps a minimum share so
    /// ranks stay static — §2.2).
    ///
    /// Weights must be non-negative with a positive sum.
    pub fn block_from_weights(nrows: usize, weights: &[f64], min_rows: usize) -> Distribution {
        let n = weights.len();
        assert!(n > 0, "no nodes");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite: {weights:?}"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        assert!(
            min_rows * n <= nrows,
            "min_rows {min_rows} × {n} nodes exceeds {nrows} rows"
        );

        // Largest remainder over the rows above the floor.
        let free = nrows - min_rows * n;
        let mut counts = vec![min_rows; n];
        let mut floors = 0usize;
        let mut rema: Vec<(f64, usize)> = Vec::with_capacity(n);
        for (i, &w) in weights.iter().enumerate() {
            let t = w / total * free as f64;
            let fl = t.floor() as usize;
            counts[i] += fl;
            floors += fl;
            rema.push((t - fl as f64, i));
        }
        // Hand out the remainder to the largest fractional parts;
        // ties break toward lower index for determinism.
        rema.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for k in 0..(free - floors) {
            counts[rema[k].1] += 1;
        }
        Distribution::block_from_counts(&counts)
    }

    /// A cyclic distribution.
    pub fn cyclic(nrows: usize, nnodes: usize) -> Distribution {
        assert!(nnodes > 0, "no nodes");
        Distribution::Cyclic { nnodes, nrows }
    }

    /// Number of active nodes.
    pub fn nnodes(&self) -> usize {
        match self {
            Distribution::Block { starts } => starts.len() - 1,
            Distribution::Cyclic { nnodes, .. } => *nnodes,
        }
    }

    /// Total rows distributed.
    pub fn nrows(&self) -> usize {
        match self {
            Distribution::Block { starts } => *starts.last().unwrap(),
            Distribution::Cyclic { nrows, .. } => *nrows,
        }
    }

    /// Owner (relative rank) of `row`.
    pub fn owner(&self, row: usize) -> usize {
        assert!(row < self.nrows(), "row {row} out of {}", self.nrows());
        match self {
            Distribution::Block { starts } => {
                // starts is sorted; find k with starts[k] <= row < starts[k+1].
                starts.partition_point(|&s| s <= row) - 1
            }
            Distribution::Cyclic { nnodes, .. } => row % nnodes,
        }
    }

    /// Rows owned by relative rank `node`.
    pub fn rows_of(&self, node: usize) -> RowSet {
        assert!(node < self.nnodes());
        match self {
            Distribution::Block { starts } => RowSet::from_range(starts[node]..starts[node + 1]),
            Distribution::Cyclic { nnodes, nrows } => RowSet::strided(node, *nrows, *nnodes),
        }
    }

    /// The contiguous row range `[lo, hi]` (inclusive) of `node`, for
    /// block distributions; `None` when empty or cyclic.
    pub fn block_range(&self, node: usize) -> Option<(usize, usize)> {
        match self {
            Distribution::Block { starts } => {
                let (lo, hi) = (starts[node], starts[node + 1]);
                (lo < hi).then(|| (lo, hi - 1))
            }
            Distribution::Cyclic { .. } => None,
        }
    }

    /// Per-node row counts.
    pub fn counts(&self) -> Vec<usize> {
        (0..self.nnodes()).map(|k| self.rows_of(k).len()).collect()
    }

    /// The row transfers needed to move from `self` to `new`: a list of
    /// `(src_rel_old_dist, dst_rel_new_dist, rows)` with non-empty row
    /// sets. Relative ranks refer to each distribution's own node set, so
    /// callers must map them to world ranks appropriately.
    pub fn transfers_to(&self, new: &Distribution) -> Vec<(usize, usize, RowSet)> {
        assert_eq!(self.nrows(), new.nrows(), "row-space mismatch");
        let mut out = Vec::new();
        for src in 0..self.nnodes() {
            let have = self.rows_of(src);
            for dst in 0..new.nnodes() {
                let want = new.rows_of(dst);
                let mv = have.intersect(&want);
                if !mv.is_empty() {
                    out.push((src, dst, mv));
                }
            }
        }
        out
    }
}

#[cfg(test)]
// Single-range arrays are exactly what `ranges()` assertions compare against.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    #[test]
    fn even_blocks() {
        let d = Distribution::block_even(10, 3);
        assert_eq!(d.counts(), vec![4, 3, 3]);
        assert_eq!(d.rows_of(0).ranges(), &[0..4]);
        assert_eq!(d.rows_of(2).ranges(), &[7..10]);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(4), 1);
        assert_eq!(d.owner(9), 2);
        assert_eq!(d.block_range(1), Some((4, 6)));
    }

    #[test]
    fn weighted_blocks() {
        // 2:1:1 over 8 rows → 4,2,2.
        let d = Distribution::block_from_weights(8, &[2.0, 1.0, 1.0], 0);
        assert_eq!(d.counts(), vec![4, 2, 2]);
    }

    #[test]
    fn weights_partition_exactly() {
        for nrows in [1usize, 7, 100, 2048] {
            for weights in [
                vec![1.0, 1.0],
                vec![0.3, 0.2, 0.5],
                vec![5.0, 1e-6, 2.0, 2.0],
            ] {
                let d = Distribution::block_from_weights(nrows, &weights, 0);
                assert_eq!(d.counts().iter().sum::<usize>(), nrows);
            }
        }
    }

    #[test]
    fn zero_weight_gets_zero_rows() {
        let d = Distribution::block_from_weights(10, &[1.0, 0.0, 1.0], 0);
        assert_eq!(d.counts(), vec![5, 0, 5]);
        // The empty node has an empty row set and no block range.
        assert!(d.rows_of(1).is_empty());
        assert_eq!(d.block_range(1), None);
    }

    #[test]
    fn min_rows_floor_applies() {
        // Logical drop: loaded node keeps at least 2 rows.
        let d = Distribution::block_from_weights(100, &[1.0, 0.0, 1.0], 2);
        let c = d.counts();
        assert_eq!(c[1], 2);
        assert_eq!(c.iter().sum::<usize>(), 100);
    }

    #[test]
    fn cyclic_ownership() {
        let d = Distribution::cyclic(10, 3);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(4), 1);
        assert_eq!(d.owner(8), 2);
        assert_eq!(d.rows_of(1).iter().collect::<Vec<_>>(), vec![1, 4, 7]);
        assert_eq!(d.counts(), vec![4, 3, 3]);
    }

    #[test]
    fn transfers_between_blocks() {
        let old = Distribution::block_from_counts(&[6, 2]);
        let new = Distribution::block_from_counts(&[3, 5]);
        let t = old.transfers_to(&new);
        // Node 0 keeps 0..3, sends 3..6 to node 1; node 1 keeps 6..8.
        assert_eq!(
            t,
            vec![
                (0, 0, RowSet::from_range(0..3)),
                (0, 1, RowSet::from_range(3..6)),
                (1, 1, RowSet::from_range(6..8)),
            ]
        );
    }

    #[test]
    fn transfers_change_node_count() {
        // Physical drop: 3 nodes → 2 nodes.
        let old = Distribution::block_from_counts(&[3, 3, 3]);
        let new = Distribution::block_from_counts(&[5, 4]);
        let t = old.transfers_to(&new);
        let moved: usize = t
            .iter()
            .filter(|(s, d, _)| s != d)
            .map(|(_, _, rs)| rs.len())
            .sum();
        assert!(moved >= 3, "the dropped node's rows must move");
        // Every row lands exactly once.
        let mut all = RowSet::new();
        let mut total = 0;
        for (_, _, rs) in &t {
            total += rs.len();
            all = all.union(rs);
        }
        assert_eq!(total, 9);
        assert_eq!(all.ranges(), &[0..9]);
    }

    #[test]
    fn block_cyclic_conversion_transfers() {
        let old = Distribution::block_even(6, 2);
        let new = Distribution::cyclic(6, 2);
        let t = old.transfers_to(&new);
        let total: usize = t.iter().map(|(_, _, rs)| rs.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    #[should_panic(expected = "min_rows")]
    fn min_rows_overflow_rejected() {
        let _ = Distribution::block_from_weights(5, &[1.0, 1.0, 1.0], 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn owner_out_of_range_panics() {
        let d = Distribution::block_even(4, 2);
        let _ = d.owner(4);
    }
}
