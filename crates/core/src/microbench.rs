//! Micro-benchmark calibration of the communication-penalty model (§4.3).
//!
//! The paper determines effective distributions "by executing
//! micro-benchmarks … for different computation to communication ratios".
//! This module reproduces that: it runs synthetic two-node
//! nearest-neighbor programs on the simulator, sweeping the loaded node's
//! work fraction to find the empirically best split, and fits the
//! [`CommModel::wait_factor`](crate::balance::CommModel) that makes
//! successive balancing predict that split.

use dynmpi_comm::{SimTransport, Transport};
use dynmpi_sim::{Cluster, LoadScript, NodeSpec, SimTime};

use crate::balance::{successive_balance_with_floor, CommModel, NodeLoad};

/// One probe point: a computation/communication ratio and a load level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbePoint {
    /// Total per-cycle compute work (units) across both nodes.
    pub total_work: f64,
    /// Bytes exchanged with each neighbor per cycle.
    pub msg_bytes: usize,
    /// Competing processes on node 0.
    pub ncp: u32,
}

/// Result of probing one point: the measured best fraction for the loaded
/// node and the naive (relative power) fraction for reference.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeResult {
    pub point: ProbePoint,
    /// Loaded-node work fraction minimizing the measured cycle time.
    pub best_fraction: f64,
    /// `1/(1+ncp) / (1 + 1/(1+ncp))` — the relative-power fraction.
    pub naive_fraction: f64,
    /// Cycle time at the best fraction (seconds).
    pub best_cycle: f64,
    /// Cycle time at the naive fraction (seconds).
    pub naive_cycle: f64,
}

/// Runs one synthetic two-node program: node 0 carries `frac` of the
/// work and one ghost exchange with node 1 per cycle. Returns the mean
/// cycle time in virtual seconds.
pub fn measure_two_node_cycle(speed: f64, point: ProbePoint, frac: f64, cycles: usize) -> f64 {
    let script = LoadScript::dedicated().at_time(0, SimTime::ZERO, point.ncp);
    let cluster = Cluster::homogeneous(2, NodeSpec::with_speed(speed)).with_script(script);
    let out = cluster.run_spmd(|ctx| {
        let t = SimTransport::new(ctx);
        let me = t.rank();
        let work = if me == 0 {
            point.total_work * frac
        } else {
            point.total_work * (1.0 - frac)
        };
        let other = 1 - me;
        let payload = vec![0u8; point.msg_bytes];
        // Warm-up cycle to de-skew the ranks, then measure.
        for _ in 0..2 {
            t.compute(work);
            t.send_bytes(other, 1, payload.clone());
            let _ = t.recv_bytes(other, 1);
        }
        let start = t.wtime();
        for _ in 0..cycles {
            t.compute(work);
            t.send_bytes(other, 1, payload.clone());
            let _ = t.recv_bytes(other, 1);
        }
        (t.wtime() - start) / cycles as f64
    });
    // The slower rank's mean cycle is the cycle time.
    out.results.iter().cloned().fold(0.0, f64::max)
}

/// Probes one point: sweeps the loaded node's fraction on a grid and
/// returns the argmin along with the naive split's performance.
pub fn probe(speed: f64, point: ProbePoint, grid: usize, cycles: usize) -> ProbeResult {
    let avail0 = 1.0 / f64::from(point.ncp + 1);
    let naive = avail0 / (avail0 + 1.0);
    let mut best_fraction = naive;
    let mut best_cycle = f64::INFINITY;
    for k in 0..=grid {
        let frac = naive * k as f64 / grid as f64; // 0 ..= naive
        let c = measure_two_node_cycle(speed, point, frac, cycles);
        if c < best_cycle {
            best_cycle = c;
            best_fraction = frac;
        }
    }
    let naive_cycle = measure_two_node_cycle(speed, point, naive, cycles);
    ProbeResult {
        point,
        best_fraction,
        naive_fraction: naive,
        best_cycle,
        naive_cycle,
    }
}

/// Fits the `wait_factor` of the penalty model to a set of probe results:
/// picks the factor (on a grid) whose successive-balancing split best
/// matches the measured optima, in total squared error.
pub fn fit_wait_factor(results: &[ProbeResult], quantum: f64) -> f64 {
    let mut best = 0.5;
    let mut best_err = f64::INFINITY;
    for k in 0..=40 {
        let wf = k as f64 * 0.05; // 0.0 ..= 2.0
        let mut err = 0.0;
        for r in results {
            let model = CommModel {
                blocking_recvs_per_cycle: 1.0,
                quantum,
                wait_factor: wf,
            };
            let loads = [
                NodeLoad {
                    ncp: r.point.ncp,
                    speed: 1.0,
                },
                NodeLoad::unloaded(1.0),
            ];
            // 1000 virtual rows of uniform weight.
            let w = vec![r.point.total_work / 1000.0; 1000];
            let d = successive_balance_with_floor(&w, &loads, &model, 0, 0.0);
            let predicted = d.counts()[0] as f64 / 1000.0;
            err += (predicted - r.best_fraction).powi(2);
        }
        if err < best_err {
            best_err = err;
            best = wf;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_split_is_even() {
        let p = ProbePoint {
            total_work: 2.0e5,
            msg_bytes: 4096,
            ncp: 0,
        };
        let a = measure_two_node_cycle(1e6, p, 0.5, 5);
        let b = measure_two_node_cycle(1e6, p, 0.3, 5);
        assert!(
            a < b,
            "even split must beat 30/70 when unloaded: {a} vs {b}"
        );
    }

    #[test]
    fn loaded_node_best_fraction_below_naive() {
        // Communication-heavy point: the loaded node should get less than
        // its relative power share.
        let p = ProbePoint {
            total_work: 4.0e4,
            msg_bytes: 16_384,
            ncp: 2,
        };
        let r = probe(1e6, p, 8, 6);
        assert!(
            r.best_fraction <= r.naive_fraction + 1e-9,
            "best {} vs naive {}",
            r.best_fraction,
            r.naive_fraction
        );
        assert!(r.best_cycle <= r.naive_cycle + 1e-9);
    }

    #[test]
    fn fit_produces_reasonable_factor() {
        let p = ProbePoint {
            total_work: 4.0e4,
            msg_bytes: 16_384,
            ncp: 2,
        };
        let r = probe(1e6, p, 8, 6);
        let wf = fit_wait_factor(&[r], 0.010);
        assert!((0.0..=2.0).contains(&wf), "wait factor {wf}");
    }
}
