//! Effecting a redistribution (§4.4).
//!
//! Given the old and new distributions (each over its own active group),
//! every participant (1) determines ownership, (2) sends away rows it no
//! longer owns, (3) receives rows it now owns, (4) fetches the ghost rows
//! its DRSDs say it reads but does not own, and (5) drops storage that is
//! neither owned nor a needed ghost. Rows that stay put are untouched —
//! the projection allocation's pointer reuse.
//!
//! All participants compute the identical transfer schedule from shared
//! state, so messages need no headers: a `(src, dst, array)` triple fully
//! determines the row set.
//!
//! # Schedules
//!
//! The schedule is computed once per `(old_dist, new_dist, accesses)` as
//! a [`TransferSchedule`] and cached ([`ScheduleCache`]) across cycles
//! whose distribution didn't change. Construction prunes partner pairs
//! with O(1) bound arithmetic — [`crate::drsd::Drsd::envelope`] for ghost
//! legs, block-boundary binary search for ownership moves — so the
//! expensive [`ghost_needs`] evaluation runs **only** for pairs whose row
//! sets can actually intersect (the [`GHOST_NEEDS_EVALS`] counter holds
//! the line), instead of the former every-rank × every-rank × every-array
//! sweep.

use std::rc::Rc;

use dynmpi_comm::{CommOps, Group, Transport};
use dynmpi_obs::{self as obs, Json};

use crate::array::RedistArray;
use crate::dist::Distribution;
use crate::drsd::{AccessMode, ArrayAccess};
use crate::rowset::RowSet;

/// Runtime-internal tag space (above the collective tags).
const TAG_MOVE: u64 = 1 << 33;
const TAG_GHOST: u64 = (1 << 33) + 0x10_0000;

/// Counter: number of full [`ghost_needs`] evaluations. Schedule
/// construction must keep this at O(intersecting pairs), not O(n²).
pub const GHOST_NEEDS_EVALS: &str = "redist.ghost_needs_evals";

/// Counter: number of [`TransferSchedule`] constructions — stays flat
/// across cycles when the [`ScheduleCache`] hits.
pub const SCHEDULE_BUILDS: &str = "redist.schedule_builds";

/// Cost accounting for one redistribution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RedistOutcome {
    /// Wall time of the whole operation (including the closing barrier).
    pub seconds: f64,
    /// Rows whose ownership moved to or from this rank.
    pub rows_moved: usize,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
}

/// Computes the ghost rows every member of `group` needs for `array`,
/// given the distribution and the phase access list: the union of all
/// read sections evaluated over the member's owned ranges, minus what it
/// owns.
pub fn ghost_needs(
    dist: &Distribution,
    rel: usize,
    array: usize,
    accesses: &[ArrayAccess],
    nrows: usize,
) -> RowSet {
    obs::count(GHOST_NEEDS_EVALS, 1);
    let owned = dist.rows_of(rel);
    let mut need = RowSet::new();
    for acc in accesses {
        if acc.array != array || acc.mode == AccessMode::Write {
            continue;
        }
        for r in owned.ranges() {
            need = need.union(&acc.drsd.eval(r.start, r.end - 1, nrows));
        }
    }
    need.diff(&owned)
}

/// First and last (inclusive) row owned by `rel`, without materializing a
/// [`RowSet`]. `None` when the node owns nothing.
fn owned_bounds(dist: &Distribution, rel: usize) -> Option<(usize, usize)> {
    match dist {
        Distribution::Block { .. } => dist.block_range(rel),
        Distribution::Cyclic { nnodes, nrows } => {
            (rel < *nrows).then(|| (rel, rel + (*nrows - 1 - rel) / *nnodes * *nnodes))
        }
    }
}

/// Conservative half-open envelope of every row `rel` may *read* on
/// `array` (owned rows included): the union of each read access's
/// [`crate::drsd::Drsd::envelope`] over the node's owned bounds, merged
/// into one interval. O(accesses); `None` means the node reads nothing.
fn read_envelope(
    dist: &Distribution,
    rel: usize,
    array: usize,
    accesses: &[ArrayAccess],
    nrows: usize,
) -> Option<(usize, usize)> {
    let (first, last) = owned_bounds(dist, rel)?;
    let mut env: Option<(usize, usize)> = None;
    for acc in accesses {
        if acc.array != array || acc.mode == AccessMode::Write {
            continue;
        }
        if let Some((lo, hi)) = acc.drsd.envelope(first, last, nrows) {
            env = Some(match env {
                Some((elo, ehi)) => (elo.min(lo), ehi.max(hi)),
                None => (lo, hi),
            });
        }
    }
    env
}

/// Relative ranks of `dist` whose owned rows can intersect the inclusive
/// row interval `[lo, hi]`. Binary search on block boundaries; the full
/// node range for cyclic distributions (every node straddles the space).
fn overlapping_nodes(dist: &Distribution, lo: usize, hi: usize) -> std::ops::Range<usize> {
    match dist {
        Distribution::Block { starts } => {
            let a = starts.partition_point(|&s| s <= lo).saturating_sub(1);
            let b = starts.partition_point(|&s| s <= hi).min(starts.len() - 1);
            a..b.max(a)
        }
        Distribution::Cyclic { nnodes, .. } => 0..*nnodes,
    }
}

/// This rank's complete transfer schedule for one redistribution: which
/// rows to send to / receive from whom, per phase, in deterministic
/// partner order. Pure data — building it performs no communication, so
/// every participant derives matching schedules from shared state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TransferSchedule {
    /// Phase A sends `(dst world rank, rows)`: rows I had that `dst` now
    /// owns. Identical for every array; ascending `dst` order.
    pub move_sends: Vec<(usize, RowSet)>,
    /// Phase A receives `(src world rank, rows)`: rows I now own that
    /// `src` had. Ascending `src` order.
    pub move_recvs: Vec<(usize, RowSet)>,
    /// Phase B sends per array: ghost rows each reader needs from me.
    pub ghost_sends: Vec<Vec<(usize, RowSet)>>,
    /// Phase B receives per array: my ghost needs, split by owner.
    pub ghost_recvs: Vec<Vec<(usize, RowSet)>>,
    /// Per-array keep sets (new owned rows ∪ my ghost needs); storage
    /// outside them is released in Phase C.
    pub keep: Vec<RowSet>,
}

impl TransferSchedule {
    /// Builds the schedule for world rank `me`. `narrays` is the number
    /// of registered arrays (ghost legs and keep sets are per array).
    ///
    /// Partner discovery is pruned before any [`ghost_needs`] evaluation:
    /// ownership moves consider only nodes whose blocks overlap mine, and
    /// ghost legs only nodes whose read envelope can reach my rows — a
    /// non-intersecting `(src, dst)` pair costs two comparisons, not a
    /// `RowSet` materialization.
    pub fn build(
        me: usize,
        old_group: &Group,
        old_dist: &Distribution,
        new_group: &Group,
        new_dist: &Distribution,
        accesses: &[ArrayAccess],
        narrays: usize,
    ) -> TransferSchedule {
        obs::count(SCHEDULE_BUILDS, 1);
        let nrows = old_dist.nrows();
        assert_eq!(nrows, new_dist.nrows(), "row-space mismatch");

        let my_old = old_group
            .rel_of(me)
            .map(|r| old_dist.rows_of(r))
            .unwrap_or_default();
        let my_new = new_group
            .rel_of(me)
            .map(|r| new_dist.rows_of(r))
            .unwrap_or_default();

        let mut sched = TransferSchedule::default();

        // ---- Phase A partners: block-overlap pruning ------------------
        if let (Some(first), Some(last)) = (my_old.first(), my_old.last()) {
            for dst_rel in overlapping_nodes(new_dist, first, last) {
                let dst = new_group.world_rank(dst_rel);
                if dst == me {
                    continue;
                }
                let mv = my_old.intersect(&new_dist.rows_of(dst_rel));
                if !mv.is_empty() {
                    sched.move_sends.push((dst, mv));
                }
            }
        }
        if let (Some(first), Some(last)) = (my_new.first(), my_new.last()) {
            for src_rel in overlapping_nodes(old_dist, first, last) {
                let src = old_group.world_rank(src_rel);
                if src == me {
                    continue;
                }
                let mv = my_new.intersect(&old_dist.rows_of(src_rel));
                if !mv.is_empty() {
                    sched.move_recvs.push((src, mv));
                }
            }
        }

        // ---- Phase B partners: envelope pruning -----------------------
        let my_bounds = owned_bounds_of(&my_new);
        let me_new_rel = new_group.rel_of(me);
        for ai in 0..narrays {
            // Sends: evaluate a reader's needs only when its envelope can
            // reach my rows.
            let mut sends = Vec::new();
            if let Some((my_first, my_last)) = my_bounds {
                for dst_rel in 0..new_group.size() {
                    let dst = new_group.world_rank(dst_rel);
                    if dst == me {
                        continue;
                    }
                    let Some((lo, hi)) = read_envelope(new_dist, dst_rel, ai, accesses, nrows)
                    else {
                        continue;
                    };
                    if hi <= my_first || lo > my_last {
                        continue;
                    }
                    let need = ghost_needs(new_dist, dst_rel, ai, accesses, nrows);
                    let from_me = need.intersect(&my_new);
                    if !from_me.is_empty() {
                        sends.push((dst, from_me));
                    }
                }
            }
            sched.ghost_sends.push(sends);

            // Receives: my own needs, split by owner; owner candidates
            // come from the need's bounding interval.
            let mut recvs = Vec::new();
            let mut keep = my_new.clone();
            if let Some(my_rel) = me_new_rel {
                let need = ghost_needs(new_dist, my_rel, ai, accesses, nrows);
                if let (Some(first), Some(last)) = (need.first(), need.last()) {
                    for src_rel in overlapping_nodes(new_dist, first, last) {
                        let src = new_group.world_rank(src_rel);
                        if src == me {
                            continue;
                        }
                        let from_src = need.intersect(&new_dist.rows_of(src_rel));
                        if !from_src.is_empty() {
                            recvs.push((src, from_src));
                        }
                    }
                }
                keep = keep.union(&need);
            } else {
                keep = RowSet::new();
            }
            sched.ghost_recvs.push(recvs);
            sched.keep.push(keep);
        }
        sched
    }

    /// Rows this rank sends plus receives in Phase A, for one array.
    pub fn moved_rows(&self) -> usize {
        self.move_sends
            .iter()
            .chain(&self.move_recvs)
            .map(|(_, rows)| rows.len())
            .sum()
    }

    /// True when the schedule neither moves ownership nor exchanges
    /// ghosts — e.g. a single-node group.
    pub fn is_quiescent(&self) -> bool {
        self.move_sends.is_empty()
            && self.move_recvs.is_empty()
            && self.ghost_sends.iter().all(Vec::is_empty)
            && self.ghost_recvs.iter().all(Vec::is_empty)
    }
}

fn owned_bounds_of(rows: &RowSet) -> Option<(usize, usize)> {
    Some((rows.first()?, rows.last()?))
}

/// Caches the last [`TransferSchedule`] against its defining state, so
/// steady-state cycles (same groups, same distributions) skip schedule
/// construction entirely. One cache per rank; `accesses` are fixed after
/// setup, so they are not part of the key.
#[derive(Default)]
pub struct ScheduleCache {
    key: Option<(Vec<usize>, Distribution, Vec<usize>, Distribution)>,
    sched: Option<Rc<TransferSchedule>>,
}

impl ScheduleCache {
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// Returns the cached schedule when groups and distributions are
    /// unchanged, rebuilding (and re-keying) otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule(
        &mut self,
        me: usize,
        old_group: &Group,
        old_dist: &Distribution,
        new_group: &Group,
        new_dist: &Distribution,
        accesses: &[ArrayAccess],
        narrays: usize,
    ) -> Rc<TransferSchedule> {
        let hit = self.key.as_ref().is_some_and(|(om, od, nm, nd)| {
            om == old_group.members()
                && od == old_dist
                && nm == new_group.members()
                && nd == new_dist
        });
        if !hit {
            self.sched = Some(Rc::new(TransferSchedule::build(
                me, old_group, old_dist, new_group, new_dist, accesses, narrays,
            )));
            self.key = Some((
                old_group.members().to_vec(),
                old_dist.clone(),
                new_group.members().to_vec(),
                new_dist.clone(),
            ));
        }
        Rc::clone(self.sched.as_ref().expect("schedule just ensured"))
    }

    /// Drops the cached entry (e.g. when the access list changes).
    pub fn invalidate(&mut self) {
        self.key = None;
        self.sched = None;
    }
}

/// Executes a redistribution. Must be called collectively by every member
/// of `old_group` ∪ `new_group` (a rank leaving the computation
/// participates as a sender; a rank joining participates as a receiver).
///
/// `accesses` is the flattened access list across all phases, used for
/// ghost-row acquisition. Builds a fresh [`TransferSchedule`]; use
/// [`execute_cached`] on paths that repeat distributions.
#[allow(clippy::too_many_arguments)]
pub fn execute<T: Transport>(
    t: &T,
    me: usize,
    old_group: &Group,
    old_dist: &Distribution,
    new_group: &Group,
    new_dist: &Distribution,
    accesses: &[ArrayAccess],
    arrays: &mut [&mut dyn RedistArray],
) -> RedistOutcome {
    let sched = TransferSchedule::build(
        me,
        old_group,
        old_dist,
        new_group,
        new_dist,
        accesses,
        arrays.len(),
    );
    execute_with(t, me, &sched, old_group, new_group, arrays)
}

/// Like [`execute`], but reuses `cache` so repeated redistributions over
/// unchanged groups and distributions skip schedule construction.
#[allow(clippy::too_many_arguments)]
pub fn execute_cached<T: Transport>(
    t: &T,
    me: usize,
    cache: &mut ScheduleCache,
    old_group: &Group,
    old_dist: &Distribution,
    new_group: &Group,
    new_dist: &Distribution,
    accesses: &[ArrayAccess],
    arrays: &mut [&mut dyn RedistArray],
) -> RedistOutcome {
    let sched = cache.schedule(
        me,
        old_group,
        old_dist,
        new_group,
        new_dist,
        accesses,
        arrays.len(),
    );
    execute_with(t, me, &sched, old_group, new_group, arrays)
}

/// Executes a redistribution from a prebuilt schedule. The schedule must
/// have been built for this `me` and the same group/distribution pair on
/// every participant (SPMD discipline: matching sends and receives are
/// derived from the same shared state).
pub fn execute_with<T: Transport>(
    t: &T,
    me: usize,
    sched: &TransferSchedule,
    old_group: &Group,
    new_group: &Group,
    arrays: &mut [&mut dyn RedistArray],
) -> RedistOutcome {
    let t0 = t.wtime();
    let traced = obs::enabled();
    if traced {
        obs::span_begin("redist", "redistribute", t.now_ns());
    }
    assert_eq!(
        sched.keep.len(),
        arrays.len(),
        "schedule was built for a different array count"
    );

    let mut rows_moved = 0usize;
    let mut bytes_sent = 0u64;

    // ---- Phase A: ownership moves -------------------------------------
    if traced {
        obs::span_begin("redist", "exchange", t.now_ns());
    }
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let tag = TAG_MOVE + ai as u64;
        if traced {
            obs::span_begin("redist", "pack", t.now_ns());
        }
        for (dst, mv) in &sched.move_sends {
            let payload = arr.pack_rows(mv, true);
            rows_moved += mv.len();
            bytes_sent += payload.len() as u64;
            t.send_bytes(*dst, tag, payload);
        }
        if traced {
            obs::span_end(t.now_ns());
            obs::span_begin("redist", "unpack", t.now_ns());
        }
        for (src, mv) in &sched.move_recvs {
            let payload = t.recv_bytes(*src, tag);
            rows_moved += mv.len();
            arr.unpack_rows(mv, &payload);
        }
        if traced {
            obs::span_end(t.now_ns());
        }
    }
    if traced {
        obs::span_end(t.now_ns());
        obs::span_begin("redist", "ghost_exchange", t.now_ns());
    }

    // ---- Phase B: ghost acquisition ------------------------------------
    // Sources are the *new* owners, who now hold every row.
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let tag = TAG_GHOST + ai as u64;
        for (dst, from_me) in &sched.ghost_sends[ai] {
            let payload = arr.pack_rows(from_me, false);
            bytes_sent += payload.len() as u64;
            t.send_bytes(*dst, tag, payload);
        }
        for (src, from_src) in &sched.ghost_recvs[ai] {
            let payload = t.recv_bytes(*src, tag);
            arr.unpack_rows(from_src, &payload);
        }
    }

    // ---- Phase C: release stale storage --------------------------------
    if traced {
        obs::span_end(t.now_ns());
        obs::span_begin("redist", "release", t.now_ns());
    }
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let stale = arr.present_rows().diff(&sched.keep[ai]);
        arr.drop_rows(&stale);
    }
    if traced {
        obs::span_end(t.now_ns());
    }

    // Close with a barrier over everyone involved so the measured time
    // covers the full collective operation.
    let mut members: Vec<usize> = old_group
        .members()
        .iter()
        .chain(new_group.members())
        .copied()
        .collect();
    members.sort_unstable();
    members.dedup();
    let all = Group::new(members, me);
    t.barrier(&all);

    if traced {
        obs::count("redist.rows_moved", rows_moved as u64);
        obs::count("redist.bytes_sent", bytes_sent);
        obs::span_end_args(
            t.now_ns(),
            vec![
                ("rows_moved".to_string(), Json::UInt(rows_moved as u64)),
                ("bytes_sent".to_string(), Json::UInt(bytes_sent)),
            ],
        );
    }
    RedistOutcome {
        seconds: t.wtime() - t0,
        rows_moved,
        bytes_sent,
    }
}

/// Executes the *recovery* redistribution after a confirmed node death.
///
/// Semantics are those of [`execute`] over `old_group → new_group`, except
/// that `dead` (a member of `old_group`, absent from `new_group`) no longer
/// exists: `holder` — the buddy that materialized `dead`'s checkpointed
/// rows locally ([`crate::checkpoint::BuddyCheckpoint::materialize_mirror`])
/// — stands in for it. Every survivor of `old_group` ∪ `new_group` must
/// call this collectively; callers must have rolled their own rows back to
/// the same checkpoint first, so row contents match the distributions.
///
/// Protocol deltas vs. a plain redistribution:
/// - the holder executes `dead`'s Phase A sends by proxy from the
///   materialized mirror, *after* its own sends per array (senders and
///   receivers agree on that order, which keeps the shared-FIFO
///   `(holder, tag)` channel unambiguous);
/// - proxy legs aimed at the holder itself are skipped on both sides —
///   those rows are already local from the mirror;
/// - receivers take their `src == dead` entry last, from `holder`;
/// - the closing barrier spans `old_group` ∪ `new_group` *minus* `dead`.
///
/// `rows_moved`/`bytes_sent` count actual transfers only (skipped
/// self-legs are not transfers; the runtime reports restored rows
/// separately via `NodeRecovered`).
#[allow(clippy::too_many_arguments)]
pub fn execute_recovery<T: Transport>(
    t: &T,
    me: usize,
    old_group: &Group,
    old_dist: &Distribution,
    new_group: &Group,
    new_dist: &Distribution,
    accesses: &[ArrayAccess],
    arrays: &mut [&mut dyn RedistArray],
    dead: usize,
    holder: usize,
) -> RedistOutcome {
    assert_ne!(me, dead, "the dead rank cannot participate in recovery");
    assert_ne!(holder, dead, "the buddy holder must be a survivor");
    assert!(
        old_group.rel_of(dead).is_some() && new_group.rel_of(dead).is_none(),
        "dead rank must leave the group in recovery"
    );

    let t0 = t.wtime();
    let traced = obs::enabled();
    if traced {
        obs::span_begin("redist", "recovery", t.now_ns());
    }

    let narrays = arrays.len();
    let sched = TransferSchedule::build(
        me, old_group, old_dist, new_group, new_dist, accesses, narrays,
    );
    // The dead rank's schedule, built from the same shared state: only
    // Phase A sends survive (it owns nothing in `new_dist`), and the
    // holder executes them from the materialized mirror.
    let proxy = (me == holder).then(|| {
        TransferSchedule::build(
            dead, old_group, old_dist, new_group, new_dist, accesses, narrays,
        )
    });

    let mut rows_moved = 0usize;
    let mut bytes_sent = 0u64;

    // ---- Phase A: ownership moves, with the holder standing in --------
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let tag = TAG_MOVE + ai as u64;
        for (dst, mv) in &sched.move_sends {
            let payload = arr.pack_rows(mv, true);
            rows_moved += mv.len();
            bytes_sent += payload.len() as u64;
            t.send_bytes(*dst, tag, payload);
        }
        if let Some(p) = &proxy {
            for (dst, mv) in &p.move_sends {
                if *dst == me {
                    // Self-leg: the mirror already holds these rows.
                    continue;
                }
                let payload = arr.pack_rows(mv, true);
                rows_moved += mv.len();
                bytes_sent += payload.len() as u64;
                t.send_bytes(*dst, tag, payload);
            }
        }
        for (src, mv) in sched.move_recvs.iter().filter(|(s, _)| *s != dead) {
            let payload = t.recv_bytes(*src, tag);
            rows_moved += mv.len();
            arr.unpack_rows(mv, &payload);
        }
        if let Some((_, mv)) = sched.move_recvs.iter().find(|(s, _)| *s == dead) {
            if me != holder {
                let payload = t.recv_bytes(holder, tag);
                rows_moved += mv.len();
                arr.unpack_rows(mv, &payload);
            }
            // me == holder: the rows never left local storage.
        }
    }

    // ---- Phase B: ghost acquisition (survivors only by construction) --
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let tag = TAG_GHOST + ai as u64;
        for (dst, from_me) in &sched.ghost_sends[ai] {
            let payload = arr.pack_rows(from_me, false);
            bytes_sent += payload.len() as u64;
            t.send_bytes(*dst, tag, payload);
        }
        for (src, from_src) in &sched.ghost_recvs[ai] {
            let payload = t.recv_bytes(*src, tag);
            arr.unpack_rows(from_src, &payload);
        }
    }

    // ---- Phase C: release stale storage (drops any mirror surplus) ----
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let stale = arr.present_rows().diff(&sched.keep[ai]);
        arr.drop_rows(&stale);
    }

    let mut members: Vec<usize> = old_group
        .members()
        .iter()
        .chain(new_group.members())
        .copied()
        .filter(|&r| r != dead)
        .collect();
    members.sort_unstable();
    members.dedup();
    let all = Group::new(members, me);
    t.barrier(&all);

    if traced {
        obs::count("redist.rows_moved", rows_moved as u64);
        obs::count("redist.bytes_sent", bytes_sent);
        obs::span_end_args(
            t.now_ns(),
            vec![
                ("dead".to_string(), Json::UInt(dead as u64)),
                ("holder".to_string(), Json::UInt(holder as u64)),
                ("rows_moved".to_string(), Json::UInt(rows_moved as u64)),
                ("bytes_sent".to_string(), Json::UInt(bytes_sent)),
            ],
        );
    }
    RedistOutcome {
        seconds: t.wtime() - t0,
        rows_moved,
        bytes_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::drsd::Drsd;
    use crate::sparse::SparseMatrix;
    use dynmpi_comm::run_threads;

    fn read_halo(array: usize) -> ArrayAccess {
        ArrayAccess {
            array,
            mode: AccessMode::Read,
            drsd: Drsd::with_halo(1),
        }
    }

    #[test]
    fn ghost_needs_halo() {
        let d = Distribution::block_from_counts(&[4, 4, 4]);
        let acc = [read_halo(0)];
        // Middle node needs one row on each side.
        assert_eq!(
            ghost_needs(&d, 1, 0, &acc, 12).iter().collect::<Vec<_>>(),
            vec![3, 8]
        );
        // Edge nodes clamp.
        assert_eq!(
            ghost_needs(&d, 0, 0, &acc, 12).iter().collect::<Vec<_>>(),
            vec![4]
        );
        assert_eq!(
            ghost_needs(&d, 2, 0, &acc, 12).iter().collect::<Vec<_>>(),
            vec![7]
        );
    }

    #[test]
    fn ghost_needs_ignores_writes_and_other_arrays() {
        let d = Distribution::block_from_counts(&[4, 4]);
        let acc = [
            ArrayAccess {
                array: 0,
                mode: AccessMode::Write,
                drsd: Drsd::with_halo(2),
            },
            read_halo(1),
        ];
        assert!(ghost_needs(&d, 0, 0, &acc, 8).is_empty());
        assert!(!ghost_needs(&d, 0, 1, &acc, 8).is_empty());
    }

    #[test]
    fn ghost_needs_empty_owner() {
        let d = Distribution::block_from_counts(&[8, 0]);
        let acc = [read_halo(0)];
        assert!(ghost_needs(&d, 1, 0, &acc, 8).is_empty());
    }

    /// The schedule must match a brute-force reconstruction of the
    /// original all-pairs computation, for random block layouts.
    #[test]
    fn schedule_matches_bruteforce_all_pairs() {
        dynmpi_testkit::check("redist-schedule-oracle", |rng| {
            let n = rng.range_usize(1, 7);
            let nrows = rng.range_usize(n, 64);
            let halo = rng.range_i64(0, 4);
            let counts = |rng: &mut dynmpi_testkit::Rng| {
                let mut c = vec![0usize; n];
                for _ in 0..nrows {
                    c[rng.range_usize(0, n)] += 1;
                }
                c
            };
            let old = Distribution::block_from_counts(&counts(rng));
            let new = Distribution::block_from_counts(&counts(rng));
            let acc = [ArrayAccess {
                array: 0,
                mode: AccessMode::Read,
                drsd: Drsd::with_halo(halo),
            }];
            let g = Group::new((0..n).collect(), 0);

            for me in 0..n {
                let sched = TransferSchedule::build(me, &g, &old, &g, &new, &acc, 1);

                // Oracle: the unpruned loops of the original implementation.
                let my_old = old.rows_of(me);
                let my_new = new.rows_of(me);
                let mut move_sends = Vec::new();
                let mut move_recvs = Vec::new();
                let mut ghost_sends = Vec::new();
                for other in 0..n {
                    if other == me {
                        continue;
                    }
                    let snd = my_old.intersect(&new.rows_of(other));
                    if !snd.is_empty() {
                        move_sends.push((other, snd));
                    }
                    let rcv = my_new.intersect(&old.rows_of(other));
                    if !rcv.is_empty() {
                        move_recvs.push((other, rcv));
                    }
                    let from_me = ghost_needs(&new, other, 0, &acc, nrows).intersect(&my_new);
                    if !from_me.is_empty() {
                        ghost_sends.push((other, from_me));
                    }
                }
                let need = ghost_needs(&new, me, 0, &acc, nrows);
                let mut ghost_recvs = Vec::new();
                for other in 0..n {
                    if other == me {
                        continue;
                    }
                    let from_src = need.intersect(&new.rows_of(other));
                    if !from_src.is_empty() {
                        ghost_recvs.push((other, from_src));
                    }
                }
                assert_eq!(sched.move_sends, move_sends, "sends of {me}");
                assert_eq!(sched.move_recvs, move_recvs, "recvs of {me}");
                assert_eq!(sched.ghost_sends, vec![ghost_sends], "ghost sends of {me}");
                assert_eq!(sched.ghost_recvs, vec![ghost_recvs], "ghost recvs of {me}");
                assert_eq!(sched.keep, vec![my_new.union(&need)], "keep of {me}");
            }
        });
    }

    /// The acceptance-criterion test: schedule construction must not
    /// evaluate `ghost_needs` for pairs whose row sets cannot intersect.
    /// With a halo-1 stencil over blocks, only a node's two neighbors
    /// (plus its own need) intersect it — far from the n² sweep.
    #[test]
    fn schedule_build_skips_nonintersecting_pairs() {
        let n = 16;
        let d = Distribution::block_even(160, n);
        let acc = [read_halo(0)];
        let g = Group::new((0..n).collect(), 0);
        let rec = obs::Recorder::new();
        let _guard = rec.install(0);
        let evals = obs::counter_handle(GHOST_NEEDS_EVALS).unwrap();
        let before = evals.get();
        let _ = TransferSchedule::build(7, &g, &d, &g, &d, &acc, 1);
        // Rank 7's rows intersect only the envelopes of ranks 6 and 8,
        // plus one evaluation for its own needs: exactly 3, not 16.
        assert_eq!(
            evals.get() - before,
            3,
            "ghost_needs evaluations during build"
        );
    }

    /// Full end-to-end redistribution over the thread transport: values
    /// must land on the right nodes and ghosts must be fresh.
    #[test]
    fn redistribute_dense_same_group() {
        let nrows = 12;
        let out = run_threads(3, move |t| {
            let me = t.rank();
            let g = Group::world(me, 3);
            let old = Distribution::block_from_counts(&[4, 4, 4]);
            let new = Distribution::block_from_counts(&[2, 6, 4]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 2);
            let mine = old.rows_of(me);
            let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
            m.fill_rows(&mine.union(&ghosts), |i, j| (i * 10 + j) as f64);

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            let oc = execute(t, me, &g, &old, &g, &new, &acc, &mut arrays);
            assert!(oc.seconds >= 0.0);

            // Every owned + ghost row must be present with correct values.
            let mine_new = new.rows_of(me);
            let ghosts_new = ghost_needs(&new, me, 0, &acc, nrows);
            for i in mine_new.union(&ghosts_new).iter() {
                assert_eq!(m.row(i), &[(i * 10) as f64, (i * 10 + 1) as f64], "row {i}");
            }
            // Stale rows must be gone.
            assert_eq!(m.present_rows(), mine_new.union(&ghosts_new));
            m.present_rows().len()
        });
        assert!(out.iter().sum::<usize>() >= 12);
    }

    #[test]
    fn redistribute_with_node_leaving() {
        // 3 nodes → node 2 dropped; its rows must land on the survivors.
        let nrows = 9;
        let out = run_threads(3, move |t| {
            let me = t.rank();
            let old_g = Group::world(me, 3);
            let new_g = Group::new(vec![0, 1], me);
            let old = Distribution::block_from_counts(&[3, 3, 3]);
            let new = Distribution::block_from_counts(&[5, 4]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            let mine = old.rows_of(me);
            let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
            m.fill_rows(&mine.union(&ghosts), |i, _| i as f64);

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            execute(t, me, &old_g, &old, &new_g, &new, &acc, &mut arrays);

            if me == 2 {
                assert!(
                    m.present_rows().is_empty(),
                    "dropped node must hold nothing"
                );
                0
            } else {
                let mine_new = new.rows_of(me);
                for i in mine_new.iter() {
                    assert_eq!(m.row(i)[0], i as f64);
                }
                mine_new.len()
            }
        });
        assert_eq!(out[0] + out[1], 9);
    }

    #[test]
    fn redistribute_with_node_joining() {
        // 2 active nodes; node 2 rejoins.
        let nrows = 8;
        run_threads(3, move |t| {
            let me = t.rank();
            let old_g = Group::new(vec![0, 1], me);
            let new_g = Group::world(me, 3);
            let old = Distribution::block_from_counts(&[4, 4]);
            let new = Distribution::block_from_counts(&[3, 3, 2]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            if me != 2 {
                let mine = old.rows_of(me);
                let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
                m.fill_rows(&mine.union(&ghosts), |i, _| (100 + i) as f64);
            }

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            execute(t, me, &old_g, &old, &new_g, &new, &acc, &mut arrays);

            let mine_new = new.rows_of(me);
            for i in mine_new.iter() {
                assert_eq!(m.row(i)[0], (100 + i) as f64, "rank {me} row {i}");
            }
        });
    }

    #[test]
    fn redistribute_sparse_and_dense_together() {
        let nrows = 10;
        run_threads(2, move |t| {
            let me = t.rank();
            let g = Group::world(me, 2);
            let old = Distribution::block_from_counts(&[5, 5]);
            let new = Distribution::block_from_counts(&[2, 8]);
            let acc = [read_halo(0)]; // halo on the dense array only

            let mut d = DenseMatrix::<f64>::new(nrows, 3);
            let mut s = SparseMatrix::<f64>::new(nrows, 100);
            let mine = old.rows_of(me);
            let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
            d.fill_rows(&mine.union(&ghosts), |i, j| (i + j) as f64);
            for i in mine.iter() {
                s.set(i, (i * 7 % 100) as u32, i as f64);
                if i % 2 == 0 {
                    s.set(i, 99, -1.0);
                }
            }

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut d, &mut s];
            execute(t, me, &g, &old, &g, &new, &acc, &mut arrays);

            for i in new.rows_of(me).iter() {
                assert_eq!(d.row(i)[0], i as f64);
                assert_eq!(s.row(i).get((i * 7 % 100) as u32), Some(&(i as f64)));
                assert_eq!(s.row(i).get(99).is_some(), i % 2 == 0);
            }
        });
    }

    #[test]
    fn identity_redistribution_moves_nothing() {
        run_threads(2, |t| {
            let me = t.rank();
            let g = Group::world(me, 2);
            let d = Distribution::block_from_counts(&[4, 4]);
            let mut m = DenseMatrix::<f64>::new(8, 1);
            m.fill_rows(&d.rows_of(me), |i, _| i as f64);
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            let oc = execute(t, me, &g, &d, &g, &d, &[], &mut arrays);
            assert_eq!(oc.rows_moved, 0);
            assert_eq!(oc.bytes_sent, 0);
        });
    }

    /// Acceptance-criterion test: caching must span consecutive `execute`
    /// calls with an unchanged distribution — the second call performs the
    /// same exchange without rebuilding the schedule (no new
    /// `ghost_needs` evaluations, no new schedule builds).
    #[test]
    fn cached_execution_spans_repeated_calls() {
        let nrows = 12;
        let evals = run_threads(2, move |t| {
            let me = t.rank();
            let rec = obs::Recorder::new();
            let _guard = rec.install(me);
            let g = Group::world(me, 2);
            let d = Distribution::block_from_counts(&[6, 6]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            let mine = d.rows_of(me);
            let ghosts = ghost_needs(&d, me, 0, &acc, nrows);
            m.fill_rows(&mine.union(&ghosts), |i, _| i as f64);

            let mut cache = ScheduleCache::new();
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            let needs_ctr = obs::counter_handle(GHOST_NEEDS_EVALS).unwrap();
            let builds_ctr = obs::counter_handle(SCHEDULE_BUILDS).unwrap();
            let snapshot = || (needs_ctr.get(), builds_ctr.get());
            let baseline = snapshot();
            let first = execute_cached(t, me, &mut cache, &g, &d, &g, &d, &acc, &mut arrays);
            let after_first = snapshot();
            let second = execute_cached(t, me, &mut cache, &g, &d, &g, &d, &acc, &mut arrays);
            let after_second = snapshot();

            // Both calls exchanged the same ghosts...
            assert_eq!(first.bytes_sent, second.bytes_sent);
            assert!(first.bytes_sent > 0, "halo exchange must send bytes");
            // ...but only the first built a schedule / evaluated needs.
            assert!(after_first.0 > baseline.0);
            assert_eq!(after_first.1 - baseline.1, 1, "one schedule build");
            (
                after_second.0 - after_first.0,
                after_second.1 - after_first.1,
            )
        });
        for (needs_evals, builds) in evals {
            assert_eq!(needs_evals, 0, "second call must not re-evaluate needs");
            assert_eq!(builds, 0, "second call must hit the schedule cache");
        }
    }

    /// Recovery with the holder forwarding all of the dead node's rows to
    /// another survivor (no self-legs): values, ghosts, and storage must
    /// come out exactly as if the dead node had participated.
    #[test]
    fn recovery_proxies_dead_rows_through_holder() {
        let nrows = 9;
        let out = run_threads(3, move |t| {
            let me = t.rank();
            if me == 2 {
                return 0; // crashed: does not participate
            }
            let dead = 2;
            let holder = 0; // ring buddy of rel 2 in {0,1,2} is rel 0
            let old_g = Group::world(me, 3);
            let new_g = Group::new(vec![0, 1], me);
            let old = Distribution::block_from_counts(&[3, 3, 3]);
            let new = Distribution::block_from_counts(&[5, 4]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            // Post-rollback state: own snapshot rows, stale ghosts; the
            // holder additionally carries the dead node's mirror.
            m.fill_rows(&old.rows_of(me), |i, _| i as f64);
            let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
            m.fill_rows(&ghosts, |_, _| f64::NAN); // stale, must be refreshed
            if me == holder {
                m.fill_rows(&old.rows_of(dead), |i, _| i as f64);
            }

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            let oc = execute_recovery(
                t,
                me,
                &old_g,
                &old,
                &new_g,
                &new,
                &acc,
                &mut arrays,
                dead,
                holder,
            );
            assert!(oc.seconds >= 0.0);

            let mine_new = new.rows_of(me);
            let ghosts_new = ghost_needs(&new, me, 0, &acc, nrows);
            for i in mine_new.union(&ghosts_new).iter() {
                assert_eq!(m.row(i)[0], i as f64, "rank {me} row {i}");
            }
            // Mirror surplus and stale rows must be gone.
            assert_eq!(m.present_rows(), mine_new.union(&ghosts_new));
            mine_new.len()
        });
        assert_eq!(out[0] + out[1], 9);
    }

    /// Recovery where part of the dead node's rows land on the holder
    /// itself (self-legs): those rows must stay local — no transfer — and
    /// still end up correct.
    #[test]
    fn recovery_keeps_self_leg_rows_on_holder() {
        let nrows = 9;
        run_threads(3, move |t| {
            let me = t.rank();
            if me == 1 {
                return; // crashed
            }
            let dead = 1;
            let holder = 2; // ring buddy of rel 1 in {0,1,2} is rel 2
            let old_g = Group::world(me, 3);
            let new_g = Group::new(vec![0, 2], me);
            let old = Distribution::block_from_counts(&[3, 3, 3]);
            // New: rel 0 (world 0) rows 0..4, rel 1 (world 2) rows 4..9 —
            // dead's old rows 3..6 split: row 3 → world 0, rows 4,5 →
            // holder (self-legs).
            let new = Distribution::block_from_counts(&[4, 5]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            m.fill_rows(&old.rows_of(if me == 2 { 2 } else { 0 }), |i, _| {
                (10 * i) as f64
            });
            if me == holder {
                m.fill_rows(&old.rows_of(dead), |i, _| (10 * i) as f64);
            }

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            let oc = execute_recovery(
                t,
                me,
                &old_g,
                &old,
                &new_g,
                &new,
                &acc,
                &mut arrays,
                dead,
                holder,
            );

            let rel = if me == 2 { 1 } else { 0 };
            let mine_new = new.rows_of(rel);
            let ghosts_new = ghost_needs(&new, rel, 0, &acc, nrows);
            for i in mine_new.union(&ghosts_new).iter() {
                assert_eq!(m.row(i)[0], (10 * i) as f64, "rank {me} row {i}");
            }
            assert_eq!(m.present_rows(), mine_new.union(&ghosts_new));
            if me == holder {
                // Rows 4,5 arrived via the mirror, not the network: the
                // only ownership transfers the holder makes are its own
                // send of nothing plus the proxy send of row 3 and the
                // move of its received rows.
                assert!(oc.rows_moved < 3, "self-legs must not count as moves");
            }
        });
    }

    /// The holder's shared-FIFO channel: when a receiver takes both the
    /// holder's own rows and the dead node's proxied rows, processing the
    /// dead entry last must line up with the holder's own-then-proxy send
    /// order. Dead in the middle forces both legs onto the same receiver.
    #[test]
    fn recovery_orders_own_and_proxy_legs_on_shared_channel() {
        let nrows = 12;
        run_threads(3, move |t| {
            let me = t.rank();
            if me == 1 {
                return;
            }
            let dead = 1;
            let holder = 2;
            let old_g = Group::world(me, 3);
            let new_g = Group::new(vec![0, 2], me);
            let old = Distribution::block_from_counts(&[4, 4, 4]);
            // World 0 takes everything: it receives holder's own rows AND
            // dead's proxied rows from the same (holder, tag) channel.
            let new = Distribution::block_from_counts(&[12, 0]);

            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            let my_old_rel = if me == 2 { 2 } else { 0 };
            m.fill_rows(&old.rows_of(my_old_rel), |i, _| (i * i) as f64);
            if me == holder {
                m.fill_rows(&old.rows_of(dead), |i, _| (i * i) as f64);
            }

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            execute_recovery(
                t,
                me,
                &old_g,
                &old,
                &new_g,
                &new,
                &[],
                &mut arrays,
                dead,
                holder,
            );

            if me == 0 {
                for i in 0..nrows {
                    assert_eq!(m.row(i)[0], (i * i) as f64, "row {i}");
                }
            } else {
                assert!(m.present_rows().is_empty());
            }
        });
    }
}
