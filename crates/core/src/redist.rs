//! Effecting a redistribution (§4.4).
//!
//! Given the old and new distributions (each over its own active group),
//! every participant (1) determines ownership, (2) sends away rows it no
//! longer owns, (3) receives rows it now owns, (4) fetches the ghost rows
//! its DRSDs say it reads but does not own, and (5) drops storage that is
//! neither owned nor a needed ghost. Rows that stay put are untouched —
//! the projection allocation's pointer reuse.
//!
//! All participants compute the identical transfer schedule from shared
//! state, so messages need no headers: a `(src, dst, array)` triple fully
//! determines the row set.

use dynmpi_comm::{CommOps, Group, Transport};
use dynmpi_obs::{self as obs, Json};

use crate::array::RedistArray;
use crate::dist::Distribution;
use crate::drsd::{AccessMode, ArrayAccess};
use crate::rowset::RowSet;

/// Runtime-internal tag space (above the collective tags).
const TAG_MOVE: u64 = 1 << 33;
const TAG_GHOST: u64 = (1 << 33) + 0x10_0000;

/// Cost accounting for one redistribution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RedistOutcome {
    /// Wall time of the whole operation (including the closing barrier).
    pub seconds: f64,
    /// Rows whose ownership moved to or from this rank.
    pub rows_moved: usize,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
}

/// Computes the ghost rows every member of `group` needs for `array`,
/// given the distribution and the phase access list: the union of all
/// read sections evaluated over the member's owned ranges, minus what it
/// owns.
pub fn ghost_needs(
    dist: &Distribution,
    rel: usize,
    array: usize,
    accesses: &[ArrayAccess],
    nrows: usize,
) -> RowSet {
    let owned = dist.rows_of(rel);
    let mut need = RowSet::new();
    for acc in accesses {
        if acc.array != array || acc.mode == AccessMode::Write {
            continue;
        }
        for r in owned.ranges() {
            need = need.union(&acc.drsd.eval(r.start, r.end - 1, nrows));
        }
    }
    need.diff(&owned)
}

/// Executes a redistribution. Must be called collectively by every member
/// of `old_group` ∪ `new_group` (a rank leaving the computation
/// participates as a sender; a rank joining participates as a receiver).
///
/// `accesses` is the flattened access list across all phases, used for
/// ghost-row acquisition.
#[allow(clippy::too_many_arguments)]
pub fn execute<T: Transport>(
    t: &T,
    me: usize,
    old_group: &Group,
    old_dist: &Distribution,
    new_group: &Group,
    new_dist: &Distribution,
    accesses: &[ArrayAccess],
    arrays: &mut [&mut dyn RedistArray],
) -> RedistOutcome {
    let t0 = t.wtime();
    let traced = obs::enabled();
    if traced {
        obs::span_begin("redist", "redistribute", t.now_ns());
    }
    let nrows = old_dist.nrows();
    assert_eq!(nrows, new_dist.nrows(), "row-space mismatch");

    let my_old = old_group
        .rel_of(me)
        .map(|r| old_dist.rows_of(r))
        .unwrap_or_default();
    let my_new = new_group
        .rel_of(me)
        .map(|r| new_dist.rows_of(r))
        .unwrap_or_default();

    let mut rows_moved = 0usize;
    let mut bytes_sent = 0u64;

    // ---- Phase A: ownership moves -------------------------------------
    if traced {
        obs::span_begin("redist", "exchange", t.now_ns());
    }
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let tag = TAG_MOVE + ai as u64;
        // Sends: rows I had that someone else now owns.
        if traced {
            obs::span_begin("redist", "pack", t.now_ns());
        }
        for dst_rel in 0..new_group.size() {
            let dst = new_group.world_rank(dst_rel);
            if dst == me {
                continue;
            }
            let mv = my_old.intersect(&new_dist.rows_of(dst_rel));
            if mv.is_empty() {
                continue;
            }
            let payload = arr.pack_rows(&mv, true);
            rows_moved += mv.len();
            bytes_sent += payload.len() as u64;
            t.send_bytes(dst, tag, payload);
        }
        if traced {
            obs::span_end(t.now_ns());
            obs::span_begin("redist", "unpack", t.now_ns());
        }
        // Receives: rows I now own that someone else had.
        for src_rel in 0..old_group.size() {
            let src = old_group.world_rank(src_rel);
            if src == me {
                continue;
            }
            let mv = my_new.intersect(&old_dist.rows_of(src_rel));
            if mv.is_empty() {
                continue;
            }
            let payload = t.recv_bytes(src, tag);
            rows_moved += mv.len();
            arr.unpack_rows(&mv, &payload);
        }
        if traced {
            obs::span_end(t.now_ns());
        }
    }
    if traced {
        obs::span_end(t.now_ns());
        obs::span_begin("redist", "ghost_exchange", t.now_ns());
    }

    // ---- Phase B: ghost acquisition ------------------------------------
    // Sources are the *new* owners, who now hold every row.
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let tag = TAG_GHOST + ai as u64;
        // What each member needs (identical computation everywhere).
        for dst_rel in 0..new_group.size() {
            let dst = new_group.world_rank(dst_rel);
            if dst == me {
                continue;
            }
            let need = ghost_needs(new_dist, dst_rel, ai, accesses, nrows);
            let from_me = need.intersect(&my_new);
            if from_me.is_empty() {
                continue;
            }
            let payload = arr.pack_rows(&from_me, false);
            bytes_sent += payload.len() as u64;
            t.send_bytes(dst, tag, payload);
        }
        if let Some(my_rel) = new_group.rel_of(me) {
            let need = ghost_needs(new_dist, my_rel, ai, accesses, nrows);
            for src_rel in 0..new_group.size() {
                let src = new_group.world_rank(src_rel);
                if src == me {
                    continue;
                }
                let from_src = need.intersect(&new_dist.rows_of(src_rel));
                if from_src.is_empty() {
                    continue;
                }
                let payload = t.recv_bytes(src, tag);
                arr.unpack_rows(&from_src, &payload);
            }
        }
    }

    // ---- Phase C: release stale storage --------------------------------
    if traced {
        obs::span_end(t.now_ns());
        obs::span_begin("redist", "release", t.now_ns());
    }
    for (ai, arr) in arrays.iter_mut().enumerate() {
        let keep = if let Some(my_rel) = new_group.rel_of(me) {
            my_new.union(&ghost_needs(new_dist, my_rel, ai, accesses, nrows))
        } else {
            RowSet::new()
        };
        let stale = arr.present_rows().diff(&keep);
        arr.drop_rows(&stale);
    }
    if traced {
        obs::span_end(t.now_ns());
    }

    // Close with a barrier over everyone involved so the measured time
    // covers the full collective operation.
    let mut members: Vec<usize> = old_group
        .members()
        .iter()
        .chain(new_group.members())
        .copied()
        .collect();
    members.sort_unstable();
    members.dedup();
    let all = Group::new(members, me);
    t.barrier(&all);

    if traced {
        obs::count("redist.rows_moved", rows_moved as u64);
        obs::count("redist.bytes_sent", bytes_sent);
        obs::span_end_args(
            t.now_ns(),
            vec![
                ("rows_moved".to_string(), Json::UInt(rows_moved as u64)),
                ("bytes_sent".to_string(), Json::UInt(bytes_sent)),
            ],
        );
    }
    RedistOutcome {
        seconds: t.wtime() - t0,
        rows_moved,
        bytes_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::drsd::Drsd;
    use crate::sparse::SparseMatrix;
    use dynmpi_comm::run_threads;

    fn read_halo(array: usize) -> ArrayAccess {
        ArrayAccess {
            array,
            mode: AccessMode::Read,
            drsd: Drsd::with_halo(1),
        }
    }

    #[test]
    fn ghost_needs_halo() {
        let d = Distribution::block_from_counts(&[4, 4, 4]);
        let acc = [read_halo(0)];
        // Middle node needs one row on each side.
        assert_eq!(
            ghost_needs(&d, 1, 0, &acc, 12).iter().collect::<Vec<_>>(),
            vec![3, 8]
        );
        // Edge nodes clamp.
        assert_eq!(
            ghost_needs(&d, 0, 0, &acc, 12).iter().collect::<Vec<_>>(),
            vec![4]
        );
        assert_eq!(
            ghost_needs(&d, 2, 0, &acc, 12).iter().collect::<Vec<_>>(),
            vec![7]
        );
    }

    #[test]
    fn ghost_needs_ignores_writes_and_other_arrays() {
        let d = Distribution::block_from_counts(&[4, 4]);
        let acc = [
            ArrayAccess {
                array: 0,
                mode: AccessMode::Write,
                drsd: Drsd::with_halo(2),
            },
            read_halo(1),
        ];
        assert!(ghost_needs(&d, 0, 0, &acc, 8).is_empty());
        assert!(!ghost_needs(&d, 0, 1, &acc, 8).is_empty());
    }

    #[test]
    fn ghost_needs_empty_owner() {
        let d = Distribution::block_from_counts(&[8, 0]);
        let acc = [read_halo(0)];
        assert!(ghost_needs(&d, 1, 0, &acc, 8).is_empty());
    }

    /// Full end-to-end redistribution over the thread transport: values
    /// must land on the right nodes and ghosts must be fresh.
    #[test]
    fn redistribute_dense_same_group() {
        let nrows = 12;
        let out = run_threads(3, move |t| {
            let me = t.rank();
            let g = Group::world(me, 3);
            let old = Distribution::block_from_counts(&[4, 4, 4]);
            let new = Distribution::block_from_counts(&[2, 6, 4]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 2);
            let mine = old.rows_of(me);
            let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
            m.fill_rows(&mine.union(&ghosts), |i, j| (i * 10 + j) as f64);

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            let oc = execute(t, me, &g, &old, &g, &new, &acc, &mut arrays);
            assert!(oc.seconds >= 0.0);

            // Every owned + ghost row must be present with correct values.
            let mine_new = new.rows_of(me);
            let ghosts_new = ghost_needs(&new, me, 0, &acc, nrows);
            for i in mine_new.union(&ghosts_new).iter() {
                assert_eq!(m.row(i), &[(i * 10) as f64, (i * 10 + 1) as f64], "row {i}");
            }
            // Stale rows must be gone.
            assert_eq!(m.present_rows(), mine_new.union(&ghosts_new));
            m.present_rows().len()
        });
        assert!(out.iter().sum::<usize>() >= 12);
    }

    #[test]
    fn redistribute_with_node_leaving() {
        // 3 nodes → node 2 dropped; its rows must land on the survivors.
        let nrows = 9;
        let out = run_threads(3, move |t| {
            let me = t.rank();
            let old_g = Group::world(me, 3);
            let new_g = Group::new(vec![0, 1], me);
            let old = Distribution::block_from_counts(&[3, 3, 3]);
            let new = Distribution::block_from_counts(&[5, 4]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            let mine = old.rows_of(me);
            let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
            m.fill_rows(&mine.union(&ghosts), |i, _| i as f64);

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            execute(t, me, &old_g, &old, &new_g, &new, &acc, &mut arrays);

            if me == 2 {
                assert!(
                    m.present_rows().is_empty(),
                    "dropped node must hold nothing"
                );
                0
            } else {
                let mine_new = new.rows_of(me);
                for i in mine_new.iter() {
                    assert_eq!(m.row(i)[0], i as f64);
                }
                mine_new.len()
            }
        });
        assert_eq!(out[0] + out[1], 9);
    }

    #[test]
    fn redistribute_with_node_joining() {
        // 2 active nodes; node 2 rejoins.
        let nrows = 8;
        run_threads(3, move |t| {
            let me = t.rank();
            let old_g = Group::new(vec![0, 1], me);
            let new_g = Group::world(me, 3);
            let old = Distribution::block_from_counts(&[4, 4]);
            let new = Distribution::block_from_counts(&[3, 3, 2]);
            let acc = [read_halo(0)];

            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            if me != 2 {
                let mine = old.rows_of(me);
                let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
                m.fill_rows(&mine.union(&ghosts), |i, _| (100 + i) as f64);
            }

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            execute(t, me, &old_g, &old, &new_g, &new, &acc, &mut arrays);

            let mine_new = new.rows_of(me);
            for i in mine_new.iter() {
                assert_eq!(m.row(i)[0], (100 + i) as f64, "rank {me} row {i}");
            }
        });
    }

    #[test]
    fn redistribute_sparse_and_dense_together() {
        let nrows = 10;
        run_threads(2, move |t| {
            let me = t.rank();
            let g = Group::world(me, 2);
            let old = Distribution::block_from_counts(&[5, 5]);
            let new = Distribution::block_from_counts(&[2, 8]);
            let acc = [read_halo(0)]; // halo on the dense array only

            let mut d = DenseMatrix::<f64>::new(nrows, 3);
            let mut s = SparseMatrix::<f64>::new(nrows, 100);
            let mine = old.rows_of(me);
            let ghosts = ghost_needs(&old, me, 0, &acc, nrows);
            d.fill_rows(&mine.union(&ghosts), |i, j| (i + j) as f64);
            for i in mine.iter() {
                s.set(i, (i * 7 % 100) as u32, i as f64);
                if i % 2 == 0 {
                    s.set(i, 99, -1.0);
                }
            }

            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut d, &mut s];
            execute(t, me, &g, &old, &g, &new, &acc, &mut arrays);

            for i in new.rows_of(me).iter() {
                assert_eq!(d.row(i)[0], i as f64);
                assert_eq!(s.row(i).get((i * 7 % 100) as u32), Some(&(i as f64)));
                assert_eq!(s.row(i).get(99).is_some(), i % 2 == 0);
            }
        });
    }

    #[test]
    fn identity_redistribution_moves_nothing() {
        run_threads(2, |t| {
            let me = t.rank();
            let g = Group::world(me, 2);
            let d = Distribution::block_from_counts(&[4, 4]);
            let mut m = DenseMatrix::<f64>::new(8, 1);
            m.fill_rows(&d.rows_of(me), |i, _| i as f64);
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            let oc = execute(t, me, &g, &d, &g, &d, &[], &mut arrays);
            assert_eq!(oc.rows_moved, 0);
            assert_eq!(oc.bytes_sent, 0);
        });
    }
}
