//! Grace-period iteration timing (§4.2).
//!
//! When a load change is detected, the application keeps running for a
//! *grace period* while the runtime measures the true, **unloaded**
//! execution time of each iteration (row). Two mechanisms exist:
//!
//! * **`/proc`** CPU accounting counts only the application's own CPU
//!   time — inherently unloaded — but readings have 10 ms granularity, so
//!   it is usable only when iterations take at least a tick.
//! * **`gethrtime`** wallclock is exact but includes time stolen by
//!   competing processes mid-iteration; taking the **minimum** across the
//!   grace period's cycles discards those spikes.
//!
//! The mode is chosen per the paper: wallclock when iterations run under
//! the `/proc` tick, `/proc` otherwise.

/// Which clock the timer settled on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingMode {
    /// `/proc` CPU-time deltas, averaged across cycles.
    Proc,
    /// `gethrtime` wallclock deltas, minimum across cycles.
    WallclockMin,
}

/// Per-row unloaded-time estimator fed by raw clock samples.
#[derive(Clone, Debug)]
pub struct RowTimer {
    /// Global index of the first timed row.
    lo: usize,
    /// `/proc` read granularity in seconds (0 ⇒ exact, always usable).
    proc_tick: f64,
    /// Per-row minimum whole-cycle wallclock seen so far.
    wall_min: Vec<f64>,
    /// Per-row accumulated `/proc` time across cycles.
    proc_sum: Vec<f64>,
    /// Scratch accumulators for the cycle in progress (a row may be
    /// visited by several phases within one cycle).
    cycle_wall: Vec<f64>,
    cycle_proc: Vec<f64>,
    cycles: u32,
    /// Chosen after the first full cycle.
    mode: Option<TimingMode>,
}

impl RowTimer {
    /// A timer for rows `lo..lo+count`.
    pub fn new(lo: usize, count: usize, proc_tick: f64) -> Self {
        RowTimer {
            lo,
            proc_tick,
            wall_min: vec![f64::INFINITY; count],
            proc_sum: vec![0.0; count],
            cycle_wall: vec![0.0; count],
            cycle_proc: vec![0.0; count],
            cycles: 0,
            mode: None,
        }
    }

    /// First timed row.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Number of timed rows.
    pub fn count(&self) -> usize {
        self.wall_min.len()
    }

    /// Records one row's deltas. Multiple records for the same row within
    /// a cycle (one per phase) accumulate.
    pub fn record(&mut self, row: usize, wall_delta: f64, proc_delta: f64) {
        let k = row - self.lo;
        self.cycle_wall[k] += wall_delta.max(0.0);
        self.cycle_proc[k] += proc_delta.max(0.0);
    }

    /// Marks the end of one grace-period cycle: folds the cycle's
    /// accumulators and picks the timing mode after the first cycle.
    pub fn end_cycle(&mut self) {
        for k in 0..self.wall_min.len() {
            if self.cycle_wall[k] < self.wall_min[k] {
                self.wall_min[k] = self.cycle_wall[k];
            }
            self.proc_sum[k] += self.cycle_proc[k];
            self.cycle_wall[k] = 0.0;
            self.cycle_proc[k] = 0.0;
        }
        self.cycles += 1;
        if self.mode.is_none() {
            let n = self.wall_min.len().max(1);
            let mean_wall: f64 =
                self.wall_min.iter().filter(|w| w.is_finite()).sum::<f64>() / n as f64;
            // §4.2: /proc granularity is too coarse for iterations under
            // the tick; fall back to min-of-wallclock.
            self.mode = Some(if self.proc_tick > 0.0 && mean_wall < self.proc_tick {
                TimingMode::WallclockMin
            } else {
                TimingMode::Proc
            });
        }
    }

    /// The chosen mode (after at least one cycle).
    pub fn mode(&self) -> Option<TimingMode> {
        self.mode
    }

    /// Cycles recorded.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Per-row unloaded-time estimates (seconds), for rows
    /// `lo..lo+count`.
    pub fn weights(&self) -> Vec<f64> {
        match self
            .mode
            .expect("weights requested before any cycle completed")
        {
            TimingMode::WallclockMin => self
                .wall_min
                .iter()
                .map(|&w| if w.is_finite() { w } else { 0.0 })
                .collect(),
            TimingMode::Proc => {
                let c = f64::from(self.cycles.max(1));
                self.proc_sum.iter().map(|&s| s / c).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wallclock_min_filters_spikes() {
        let mut t = RowTimer::new(10, 3, 0.010);
        // Cycle 1: row 11 got a 20 ms context-switch spike.
        t.record(10, 0.002, 0.0);
        t.record(11, 0.022, 0.0);
        t.record(12, 0.002, 0.0);
        t.end_cycle();
        // Cycle 2: clean.
        t.record(10, 0.002, 0.0);
        t.record(11, 0.002, 0.0);
        t.record(12, 0.003, 0.0);
        t.end_cycle();
        assert_eq!(t.mode(), Some(TimingMode::WallclockMin));
        let w = t.weights();
        assert!((w[0] - 0.002).abs() < 1e-12);
        assert!(
            (w[1] - 0.002).abs() < 1e-12,
            "spike must be filtered: {w:?}"
        );
        assert!((w[2] - 0.002).abs() < 1e-12);
    }

    #[test]
    fn proc_mode_for_long_rows() {
        let mut t = RowTimer::new(0, 2, 0.010);
        // 50 ms rows → /proc is usable.
        t.record(0, 0.050, 0.050);
        t.record(1, 0.055, 0.050);
        t.end_cycle();
        t.record(0, 0.090, 0.040); // loaded wallclock, clean proc
        t.record(1, 0.052, 0.050);
        t.end_cycle();
        assert_eq!(t.mode(), Some(TimingMode::Proc));
        let w = t.weights();
        assert!((w[0] - 0.045).abs() < 1e-12); // proc average
        assert!((w[1] - 0.050).abs() < 1e-12);
    }

    #[test]
    fn single_cycle_is_usable_but_noisy() {
        // GP = 1 (the Figure 7 ablation): a context-switch spike on a
        // short row survives into the weights.
        let mut t = RowTimer::new(0, 2, 0.010);
        t.record(0, 0.002, 0.0);
        t.record(1, 0.012, 0.0); // true cost 2 ms + 10 ms competitor slice
        t.end_cycle();
        let w = t.weights();
        assert_eq!(t.mode(), Some(TimingMode::WallclockMin));
        assert!((w[1] - 0.012).abs() < 1e-12, "spike not filtered with GP=1");
    }

    #[test]
    fn exact_proc_tick_prefers_proc() {
        let mut t = RowTimer::new(0, 1, 0.0);
        t.record(0, 0.001, 0.0009);
        t.end_cycle();
        assert_eq!(t.mode(), Some(TimingMode::Proc));
    }

    #[test]
    #[should_panic(expected = "before any cycle")]
    fn weights_before_cycle_panics() {
        let t = RowTimer::new(0, 1, 0.01);
        let _ = t.weights();
    }

    #[test]
    fn unrecorded_rows_default_to_zero_weight() {
        let mut t = RowTimer::new(0, 2, 0.010);
        t.record(0, 0.001, 0.0);
        t.end_cycle();
        let w = t.weights();
        assert_eq!(w[1], 0.0);
    }
}
