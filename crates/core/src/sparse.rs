//! Sparse matrices in vector-of-lists format (§4.1.2).
//!
//! Each stored row is a singly linked list of `(column id, value)` pairs —
//! the format Dyn-MPI mandates so it can redistribute data *and* metadata
//! uniformly with dense matrices. On a send, a row is packed into a flat
//! vector; on receipt it is unpacked back into a list (§4.4). The cost of
//! this uniformity (list traversal vs. vector scan) is quantified by the
//! `sparse_layout` bench.

use std::any::Any;

use dynmpi_comm::{from_bytes, to_bytes, Pod};

use crate::array::{AllocStats, RedistArray};
use crate::rowset::RowSet;

struct Node<P> {
    col: u32,
    val: P,
    next: Option<Box<Node<P>>>,
}

/// One sparse row: a list of `(col, value)` pairs sorted by column.
pub struct SparseRow<P> {
    head: Option<Box<Node<P>>>,
    nnz: usize,
}

impl<P: Pod> SparseRow<P> {
    /// An empty row.
    pub fn new() -> Self {
        SparseRow { head: None, nnz: 0 }
    }

    /// Number of stored elements.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Inserts or overwrites the element at `col`.
    pub fn set(&mut self, col: u32, val: P) {
        let mut cur = &mut self.head;
        loop {
            // Immutable peek decides; the cursor then either advances (by
            // move, so no borrow outlives the step) or rewrites the slot.
            match cur.as_deref() {
                Some(n) if n.col < col => {}
                Some(n) if n.col == col => break,
                _ => {
                    let next = cur.take();
                    *cur = Some(Box::new(Node { col, val, next }));
                    self.nnz += 1;
                    return;
                }
            }
            let slot = cur;
            cur = &mut slot.as_mut().expect("peeked Some").next;
        }
        cur.as_mut().expect("peeked Some").val = val;
    }

    /// Value at `col`, if stored.
    pub fn get(&self, col: u32) -> Option<&P> {
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            if node.col == col {
                return Some(&node.val);
            }
            if node.col > col {
                return None;
            }
            cur = node.next.as_deref();
        }
        None
    }

    /// Removes the element at `col`; returns whether it existed.
    pub fn remove(&mut self, col: u32) -> bool {
        let mut cur = &mut self.head;
        loop {
            // Immutable peek first, so no pattern borrow is held when the
            // slot is rewritten.
            match cur.as_deref() {
                None => return false,
                Some(n) if n.col > col => return false,
                Some(n) if n.col == col => break,
                Some(_) => {}
            }
            let slot = cur;
            cur = &mut slot.as_mut().expect("peeked Some").next;
        }
        let node = cur.take().expect("peeked Some");
        *cur = node.next;
        self.nnz -= 1;
        true
    }

    /// Iterates `(col, &value)` in column order.
    pub fn iter(&self) -> SparseRowIter<'_, P> {
        SparseRowIter {
            cur: self.head.as_deref(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(u32, &mut P)) {
        let mut cur = self.head.as_deref_mut();
        while let Some(node) = cur {
            f(node.col, &mut node.val);
            cur = node.next.as_deref_mut();
        }
    }

    /// Flattens into `(cols, vals)` vectors — the packed wire form.
    pub fn to_vectors(&self) -> (Vec<u32>, Vec<P>) {
        let mut cols = Vec::with_capacity(self.nnz);
        let mut vals = Vec::with_capacity(self.nnz);
        for (c, v) in self.iter() {
            cols.push(c);
            vals.push(*v);
        }
        (cols, vals)
    }

    /// Rebuilds a row from packed vectors (columns must be sorted and
    /// unique — the format `to_vectors` emits).
    pub fn from_vectors(cols: &[u32], vals: &[P]) -> Self {
        assert_eq!(cols.len(), vals.len(), "cols/vals length mismatch");
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "columns must be sorted unique"
        );
        // Build back-to-front so each push is O(1).
        let mut head = None;
        for (&c, &v) in cols.iter().zip(vals).rev() {
            head = Some(Box::new(Node {
                col: c,
                val: v,
                next: head,
            }));
        }
        SparseRow {
            head,
            nnz: cols.len(),
        }
    }
}

impl<P: Pod> Default for SparseRow<P> {
    fn default() -> Self {
        SparseRow::new()
    }
}

// An explicit iterative Drop: the default recursive drop of a long list
// can overflow the stack.
impl<P> Drop for SparseRow<P> {
    fn drop(&mut self) {
        let mut cur = self.head.take();
        while let Some(mut node) = cur {
            cur = node.next.take();
        }
    }
}

/// Iterator over one row's `(col, &value)` pairs.
pub struct SparseRowIter<'a, P> {
    cur: Option<&'a Node<P>>,
}

impl<'a, P> Iterator for SparseRowIter<'a, P> {
    type Item = (u32, &'a P);
    fn next(&mut self) -> Option<Self::Item> {
        let node = self.cur?;
        self.cur = node.next.as_deref();
        Some((node.col, &node.val))
    }
}

/// A sparse matrix: a vector of optional rows, mirroring the dense
/// projection layout with lists for extended rows.
pub struct SparseMatrix<P: Pod> {
    nrows: usize,
    ncols: usize,
    rows: Vec<Option<SparseRow<P>>>,
    stats: AllocStats,
}

impl<P: Pod> SparseMatrix<P> {
    /// An `nrows × ncols` matrix with no rows stored.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        SparseMatrix {
            nrows,
            ncols,
            rows: (0..nrows).map(|_| None).collect(),
            stats: AllocStats::default(),
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Is row `i` stored locally?
    pub fn has_row(&self, i: usize) -> bool {
        self.rows[i].is_some()
    }

    /// Read access to a stored row.
    pub fn row(&self, i: usize) -> &SparseRow<P> {
        self.rows[i]
            .as_ref()
            .unwrap_or_else(|| panic!("sparse row {i} is not stored on this node"))
    }

    /// Mutable access, allocating an empty row if absent.
    pub fn row_mut(&mut self, i: usize) -> &mut SparseRow<P> {
        if self.rows[i].is_none() {
            self.rows[i] = Some(SparseRow::new());
            self.stats.allocations += 1;
        }
        self.rows[i].as_mut().unwrap()
    }

    /// Sets element `(i, col)`.
    pub fn set(&mut self, i: usize, col: u32, val: P) {
        assert!(
            (col as usize) < self.ncols,
            "column {col} out of {}",
            self.ncols
        );
        self.row_mut(i).set(col, val);
    }

    /// Stored elements in row-major `(row, col, &value)` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32, &P)> + '_ {
        self.rows.iter().enumerate().flat_map(|(i, r)| {
            r.iter()
                .flat_map(move |row| row.iter().map(move |(c, v)| (i, c, v)))
        })
    }

    /// Total stored elements across present rows.
    pub fn nnz(&self) -> usize {
        self.rows
            .iter()
            .filter_map(|r| r.as_ref().map(|x| x.nnz()))
            .sum()
    }
}

// Wire format per row: [nnz: u64][cols: u32 × nnz][vals: P × nnz],
// concatenated in row-set order.
impl<P: Pod> RedistArray for SparseMatrix<P> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn alloc_rows(&mut self, rows: &RowSet) {
        for i in rows.iter() {
            let _ = self.row_mut(i);
        }
    }

    fn pack_rows(&mut self, rows: &RowSet, take: bool) -> Vec<u8> {
        let mut out = Vec::new();
        for i in rows.iter() {
            let row = self.rows[i]
                .as_ref()
                .unwrap_or_else(|| panic!("packing absent sparse row {i}"));
            let (cols, vals) = row.to_vectors();
            self.stats.bytes_copied += (cols.len() * 4 + std::mem::size_of_val(&vals[..])) as u64;
            out.extend_from_slice(&(cols.len() as u64).to_le_bytes());
            out.extend_from_slice(&to_bytes(&cols));
            out.extend_from_slice(&to_bytes(&vals));
            if take {
                self.rows[i] = None;
            }
        }
        out
    }

    fn unpack_rows(&mut self, rows: &RowSet, bytes: &[u8]) {
        let esz = std::mem::size_of::<P>();
        let mut off = 0usize;
        for i in rows.iter() {
            assert!(
                off + 8 <= bytes.len(),
                "truncated sparse payload at row {i}"
            );
            let nnz = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
            off += 8;
            let cols_len = nnz * 4;
            let vals_len = nnz * esz;
            assert!(
                off + cols_len + vals_len <= bytes.len(),
                "truncated sparse payload"
            );
            let cols: Vec<u32> = from_bytes(&bytes[off..off + cols_len]);
            off += cols_len;
            let vals: Vec<P> = from_bytes(&bytes[off..off + vals_len]);
            off += vals_len;
            self.stats.allocations += 1;
            self.stats.bytes_allocated += (cols_len + vals_len) as u64;
            self.rows[i] = Some(SparseRow::from_vectors(&cols, &vals));
        }
        assert_eq!(off, bytes.len(), "sparse payload has trailing bytes");
    }

    fn drop_rows(&mut self, rows: &RowSet) {
        for i in rows.iter() {
            self.rows[i] = None;
        }
    }

    fn present_rows(&self) -> RowSet {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i))
            .collect()
    }

    fn row_bytes_estimate(&self) -> usize {
        let present: usize = self
            .rows
            .iter()
            .filter_map(|r| r.as_ref().map(|x| x.nnz()))
            .sum();
        let nrows = self.present_rows().len().max(1);
        8 + (present / nrows) * (4 + std::mem::size_of::<P>())
    }

    fn alloc_stats(&self) -> AllocStats {
        self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_set_get_sorted() {
        let mut r = SparseRow::<f64>::new();
        r.set(5, 5.0);
        r.set(1, 1.0);
        r.set(3, 3.0);
        assert_eq!(r.nnz(), 3);
        assert_eq!(r.get(3), Some(&3.0));
        assert_eq!(r.get(2), None);
        let cols: Vec<u32> = r.iter().map(|(c, _)| c).collect();
        assert_eq!(cols, vec![1, 3, 5]);
    }

    #[test]
    fn set_overwrites() {
        let mut r = SparseRow::<f64>::new();
        r.set(2, 1.0);
        r.set(2, 9.0);
        assert_eq!(r.nnz(), 1);
        assert_eq!(r.get(2), Some(&9.0));
    }

    #[test]
    fn remove_elements() {
        let mut r = SparseRow::<f64>::new();
        for c in [1u32, 2, 3] {
            r.set(c, f64::from(c));
        }
        assert!(r.remove(2));
        assert!(!r.remove(2));
        assert_eq!(r.nnz(), 2);
        assert_eq!(r.iter().map(|(c, _)| c).collect::<Vec<_>>(), vec![1, 3]);
        assert!(r.remove(1));
        assert!(r.remove(3));
        assert_eq!(r.nnz(), 0);
        assert!(r.iter().next().is_none());
    }

    #[test]
    fn for_each_mut_updates() {
        let mut r = SparseRow::<f64>::new();
        r.set(0, 1.0);
        r.set(7, 2.0);
        r.for_each_mut(|_, v| *v *= 10.0);
        assert_eq!(r.get(7), Some(&20.0));
    }

    #[test]
    fn vector_round_trip() {
        let mut r = SparseRow::<f64>::new();
        for c in [4u32, 0, 9] {
            r.set(c, f64::from(c) * 1.5);
        }
        let (cols, vals) = r.to_vectors();
        let r2 = SparseRow::from_vectors(&cols, &vals);
        assert_eq!(r2.nnz(), 3);
        for (c, v) in r2.iter() {
            assert_eq!(*v, f64::from(c) * 1.5);
        }
    }

    #[test]
    fn long_row_drop_does_not_overflow() {
        let mut r = SparseRow::<f64>::new();
        // Build in descending order so each set is O(1) at the head.
        for c in (0..200_000u32).rev() {
            r.set(c, 0.0);
        }
        assert_eq!(r.nnz(), 200_000);
        drop(r); // must not blow the stack
    }

    #[test]
    fn matrix_pack_unpack_round_trip() {
        let mut a = SparseMatrix::<f64>::new(6, 100);
        a.set(1, 3, 1.3);
        a.set(1, 50, 1.5);
        a.set(2, 0, 2.0);
        a.row_mut(4); // present but empty row
        let rows = RowSet::from_ranges([1..3, 4..5]);
        let bytes = a.pack_rows(&rows, false);

        let mut b = SparseMatrix::<f64>::new(6, 100);
        b.unpack_rows(&rows, &bytes);
        assert_eq!(b.row(1).get(3), Some(&1.3));
        assert_eq!(b.row(1).get(50), Some(&1.5));
        assert_eq!(b.row(2).get(0), Some(&2.0));
        assert_eq!(b.row(4).nnz(), 0);
        assert_eq!(b.nnz(), 3);
    }

    #[test]
    fn pack_take_removes_rows() {
        let mut a = SparseMatrix::<f64>::new(3, 10);
        a.set(0, 1, 1.0);
        let _ = a.pack_rows(&RowSet::from_range(0..1), true);
        assert!(!a.has_row(0));
    }

    #[test]
    fn matrix_iter_row_major() {
        let mut a = SparseMatrix::<i64>::new(3, 10);
        a.set(2, 1, 21);
        a.set(0, 5, 5);
        a.set(0, 2, 2);
        let got: Vec<(usize, u32, i64)> = a.iter().map(|(i, c, v)| (i, c, *v)).collect();
        assert_eq!(got, vec![(0, 2, 2), (0, 5, 5), (2, 1, 21)]);
    }

    #[test]
    fn unpack_corrupt_payload_panics() {
        let mut a = SparseMatrix::<f64>::new(2, 4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.unpack_rows(&RowSet::from_range(0..1), &[1, 2, 3]);
        }));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn column_bound_checked() {
        let mut a = SparseMatrix::<f64>::new(2, 4);
        a.set(0, 4, 1.0);
    }
}
