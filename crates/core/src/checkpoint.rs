//! In-memory buddy checkpoints for crash recovery.
//!
//! Every active node keeps (1) a snapshot of its *own* rows and (2) a
//! mirror of its ring predecessor's rows — its **buddy**. The buddy of
//! relative rank `r` in an `n`-member group is `(r + 1) % n`: each node
//! sends its snapshot one step *forward* around the ring, so every
//! member's data survives the loss of that member (single simultaneous
//! failure; see DESIGN.md §14 for the invariant and its limits).
//!
//! Refreshes are collective and piggyback on the points where the row
//! distribution is already settled: setup, every redistribution, and an
//! optional cycle interval ([`crate::DynMpiConfig::checkpoint_interval_cycles`]).
//! The invariant after every refresh: **snapshot row sets equal the
//! current distribution's row sets**, so a recovery can rebuild exactly
//! the pre-crash ownership from checkpoints alone.
//!
//! On a confirmed death, every survivor rolls its own rows back from its
//! snapshot ([`BuddyCheckpoint::restore_own`]); the dead node's buddy
//! holder materializes the mirrored rows locally
//! ([`BuddyCheckpoint::materialize_mirror`]) and then stands in for the
//! dead node in the recovery redistribution
//! ([`crate::redist::execute_recovery`]).

use dynmpi_comm::{Group, Transport};
use dynmpi_obs as obs;

use crate::array::RedistArray;
use crate::dist::Distribution;
use crate::rowset::RowSet;

/// Checkpoint traffic tag space (above the move/ghost/runtime tags).
/// Refresh payload tags are salted with the refresh epoch so a payload
/// from a refresh that some rank skipped on a timeout can never be
/// mistaken for the next refresh's payload (it stays unconsumed).
const TAG_CKPT: u64 = (1 << 33) + 0x50_0000;

/// Recovery metadata: the holder's broadcast of which checkpoint
/// generation the recovery rolls back to.
pub(crate) const TAG_CKPT_META: u64 = (1 << 33) + 0x58_0000;

/// Per-array refresh payload tag for a given refresh epoch.
fn ckpt_tag(epoch: u64, array_index: usize) -> u64 {
    TAG_CKPT + ((epoch & 0x3FF) << 4) + array_index as u64
}

/// Counter: checkpoint refreshes executed (collective rounds).
pub const CKPT_REFRESHES: &str = "ckpt.refreshes";

/// Counter: payload bytes this rank sent into buddy mirrors.
pub const CKPT_BYTES_SENT: &str = "ckpt.bytes_sent";

/// Counter: refreshes whose mirror receive timed out (the predecessor
/// died mid-refresh); the previous mirror is kept.
pub const CKPT_REFRESH_TIMEOUTS: &str = "ckpt.refresh_timeouts";

/// One node's snapshot: per-array `(rows, packed payload)`.
type Snapshot = Vec<(RowSet, Vec<u8>)>;

/// One completed refresh of this rank's own rows, together with the
/// membership and distribution it was taken under (a recovery that rolls
/// back to this generation must redistribute *from* exactly this state).
struct Generation {
    epoch: u64,
    app_cycle: u64,
    members: Vec<usize>,
    counts: Vec<usize>,
    own: Snapshot,
}

/// The mirror of the ring predecessor, stamped with the generation it
/// completed in. A refresh whose mirror receive times out keeps the
/// previous mirror *and its older stamp* — that stamp is what tells the
/// recovery which generation is actually restorable.
struct Mirror {
    of: usize,
    app_cycle: u64,
    snap: Snapshot,
}

/// The buddy-checkpoint state one rank carries.
///
/// Two generations of the own-row snapshot are kept: a node can die
/// *between* sending its refresh payload and the detector confirming it
/// (in-flight control samples mask the death for a few cycles), leaving
/// the buddy's mirror one refresh behind everyone's latest snapshot. The
/// previous generation lets every survivor roll back to the generation
/// the mirror actually holds. A mirror stale by **two** refreshes is
/// unrecoverable (documented in DESIGN.md §14) — the detector's sustain
/// window is far shorter than two refresh intervals in any sane
/// configuration.
#[derive(Default)]
pub struct BuddyCheckpoint {
    cur: Option<Generation>,
    prev: Option<Generation>,
    mirror: Option<Mirror>,
}

impl BuddyCheckpoint {
    pub fn new() -> Self {
        BuddyCheckpoint::default()
    }

    /// Refresh generation of the current snapshot (0 = none taken).
    pub fn epoch(&self) -> u64 {
        self.cur.as_ref().map(|g| g.epoch).unwrap_or(0)
    }

    /// Application cycle the latest snapshot rolls back to.
    pub fn app_cycle(&self) -> u64 {
        self.cur.as_ref().map(|g| g.app_cycle).unwrap_or(0)
    }

    /// World rank whose mirror this rank holds, if any.
    pub fn holds_mirror_of(&self) -> Option<usize> {
        self.mirror.as_ref().map(|m| m.of)
    }

    /// Application cycle the held mirror's data corresponds to — older
    /// than [`Self::app_cycle`] when the last refresh's mirror receive
    /// timed out.
    pub fn mirror_app_cycle(&self) -> Option<u64> {
        self.mirror.as_ref().map(|m| m.app_cycle)
    }

    /// Rows in the held mirror (0 without one).
    pub fn mirror_rows(&self) -> usize {
        self.mirror
            .as_ref()
            .map(|m| m.snap.iter().map(|(rows, _)| rows.len()).sum())
            .unwrap_or(0)
    }

    /// Collectively refreshes the checkpoint over `group` (every member
    /// must call this at the same point): snapshots my `dist` rows for
    /// every array, sends them to my ring successor, and receives my ring
    /// predecessor's snapshot as the mirror I hold. A single-member group
    /// keeps only the local snapshot (no buddy exists to mirror on).
    ///
    /// `app_cycle` stamps the application progress the snapshot encodes —
    /// recovery resumes from that cycle.
    ///
    /// `recv_timeout` (seconds) guards the mirror receive so a
    /// predecessor that died mid-refresh cannot hang the collective: on
    /// a timeout the previous mirror is kept (its row sets may be stale
    /// if a redistribution happened since — the narrow window DESIGN.md
    /// §14 documents). `None` = plain blocking receive.
    #[allow(clippy::too_many_arguments)]
    pub fn refresh<T: Transport>(
        &mut self,
        t: &T,
        me: usize,
        group: &Group,
        dist: &Distribution,
        arrays: &mut [&mut dyn RedistArray],
        app_cycle: u64,
        recv_timeout: Option<f64>,
    ) {
        let rel = group
            .rel_of(me)
            .expect("checkpoint refresh by a non-member");
        let n = group.size();
        let traced = obs::enabled();
        if traced {
            obs::span_begin("ckpt", "refresh", t.now_ns());
        }
        obs::count(CKPT_REFRESHES, 1);

        let epoch = self.epoch() + 1;
        let my_rows = dist.rows_of(rel);
        let own: Snapshot = arrays
            .iter_mut()
            .map(|arr| (my_rows.clone(), arr.pack_rows(&my_rows, false)))
            .collect();
        self.prev = self.cur.take();
        self.cur = Some(Generation {
            epoch,
            app_cycle,
            members: group.members().to_vec(),
            counts: dist.counts(),
            own,
        });

        if n > 1 {
            let succ = group.world_rank((rel + 1) % n);
            let pred_rel = (rel + n - 1) % n;
            let pred = group.world_rank(pred_rel);
            let pred_rows = dist.rows_of(pred_rel);
            let mut bytes = 0u64;
            // Rows are derivable from shared state (`dist`), so payloads
            // need no headers — the same discipline as redistribution.
            let own = &self.cur.as_ref().expect("just set").own;
            for (ai, (_, payload)) in own.iter().enumerate() {
                bytes += payload.len() as u64;
                t.send_bytes(succ, ckpt_tag(epoch, ai), payload.clone());
            }
            let mut mirror: Snapshot = Vec::with_capacity(arrays.len());
            let mut complete = true;
            for ai in 0..arrays.len() {
                let payload = match recv_timeout {
                    Some(secs) => match t.recv_bytes_timeout(pred, ckpt_tag(epoch, ai), secs) {
                        Ok(p) => p,
                        Err(_) => {
                            complete = false;
                            break;
                        }
                    },
                    None => t.recv_bytes(pred, ckpt_tag(epoch, ai)),
                };
                mirror.push((pred_rows.clone(), payload));
            }
            if complete {
                self.mirror = Some(Mirror {
                    of: pred,
                    app_cycle,
                    snap: mirror,
                });
            } else {
                // Keep the previous mirror with its older stamp: the
                // stamp tells a later recovery which generation the
                // mirrored data belongs to.
                obs::count(CKPT_REFRESH_TIMEOUTS, 1);
            }
            obs::count(CKPT_BYTES_SENT, bytes);
        } else {
            self.mirror = None;
        }
        if traced {
            obs::span_end(t.now_ns());
        }
    }

    /// Rolls this rank's own rows back to the snapshot of the generation
    /// stamped `app_cycle` (the holder's mirror stamp, broadcast during
    /// recovery): every array's snapshot rows are (re)allocated and
    /// overwritten with the checkpointed payload. Ghost rows are left
    /// stale — the recovery redistribution refreshes every ghost
    /// afterwards. Returns the generation's membership and distribution,
    /// which the recovery must redistribute *from*.
    ///
    /// Panics when neither kept generation matches: the peer died across
    /// two refresh windows, which the fault model does not cover.
    pub fn restore_generation(
        &self,
        app_cycle: u64,
        arrays: &mut [&mut dyn RedistArray],
    ) -> (Vec<usize>, Distribution) {
        let gen = [self.cur.as_ref(), self.prev.as_ref()]
            .into_iter()
            .flatten()
            .find(|g| g.app_cycle == app_cycle)
            .unwrap_or_else(|| {
                panic!(
                    "checkpoint: no generation at cycle {app_cycle} — the peer died across \
                     two refresh windows (unrecoverable under the single-failure model)"
                )
            });
        assert_eq!(
            gen.own.len(),
            arrays.len(),
            "checkpoint covers a different array count"
        );
        for (arr, (rows, payload)) in arrays.iter_mut().zip(&gen.own) {
            arr.alloc_rows(rows);
            arr.unpack_rows(rows, payload);
        }
        (
            gen.members.clone(),
            Distribution::block_from_counts(&gen.counts),
        )
    }

    /// Materializes the held mirror into this rank's arrays (the buddy
    /// holder's half of recovery: it now physically holds the dead node's
    /// rows and can stand in for it). Returns the number of restored rows
    /// per array summed. Panics if no mirror is held.
    pub fn materialize_mirror(&self, arrays: &mut [&mut dyn RedistArray]) -> usize {
        let snap = &self
            .mirror
            .as_ref()
            .expect("materialize_mirror without a held mirror")
            .snap;
        assert_eq!(
            snap.len(),
            arrays.len(),
            "mirror covers a different array count"
        );
        let mut restored = 0;
        for (arr, (rows, payload)) in arrays.iter_mut().zip(snap) {
            arr.alloc_rows(rows);
            arr.unpack_rows(rows, payload);
            restored += rows.len();
        }
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use dynmpi_comm::run_threads;

    #[test]
    fn ring_mirrors_predecessor_and_restores() {
        let nrows = 9;
        let out = run_threads(3, move |t| {
            let me = t.rank();
            let g = Group::world(me, 3);
            let d = Distribution::block_from_counts(&[3, 3, 3]);
            let mut m = DenseMatrix::<f64>::new(nrows, 1);
            m.fill_rows(&d.rows_of(me), |i, _| (10 * i) as f64);

            let mut ckpt = BuddyCheckpoint::new();
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                ckpt.refresh(t, me, &g, &d, &mut arrays, 4, None);
            }
            assert_eq!(ckpt.epoch(), 1);
            assert_eq!(ckpt.app_cycle(), 4);
            // Ring: I hold my predecessor's mirror.
            let pred = (me + 2) % 3;
            assert_eq!(ckpt.holds_mirror_of(), Some(pred));
            assert_eq!(ckpt.mirror_rows(), 3);

            // Corrupt my rows, then roll back from the snapshot.
            m.fill_rows(&d.rows_of(me), |_, _| -1.0);
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                let (members, gd) = ckpt.restore_generation(4, &mut arrays);
                assert_eq!(members, vec![0, 1, 2]);
                assert_eq!(gd.counts(), vec![3, 3, 3]);
            }
            for i in d.rows_of(me).iter() {
                assert_eq!(m.row(i)[0], (10 * i) as f64);
            }

            // Materialize the predecessor's rows as its stand-in.
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                assert_eq!(ckpt.materialize_mirror(&mut arrays), 3);
            }
            let pred_rows = d.rows_of(pred);
            for i in pred_rows.iter() {
                assert_eq!(m.row(i)[0], (10 * i) as f64, "mirrored row {i}");
            }
            m.present_rows().len()
        });
        // Everyone ended with own + predecessor rows present.
        assert_eq!(out, vec![6, 6, 6]);
    }

    #[test]
    fn single_member_group_keeps_local_snapshot_only() {
        run_threads(1, |t| {
            let g = Group::world(0, 1);
            let d = Distribution::block_even(4, 1);
            let mut m = DenseMatrix::<f64>::new(4, 1);
            m.fill_rows(&d.rows_of(0), |i, _| i as f64);
            let mut ckpt = BuddyCheckpoint::new();
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                ckpt.refresh(t, 0, &g, &d, &mut arrays, 1, None);
            }
            assert_eq!(ckpt.holds_mirror_of(), None);
            m.fill_rows(&d.rows_of(0), |_, _| 9.0);
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                ckpt.restore_generation(1, &mut arrays);
            }
            assert_eq!(m.row(2)[0], 2.0);
        });
    }

    /// The masked-death window: a second refresh runs while one member is
    /// already dead. Its buddy keeps the older mirror (with the older
    /// stamp), and the *previous* own-row generation restores data
    /// consistent with that stamp on every survivor.
    #[test]
    fn timed_out_refresh_keeps_previous_generation_consistent() {
        let out = run_threads(3, move |t| {
            let me = t.rank();
            let g = Group::world(me, 3);
            let d = Distribution::block_from_counts(&[2, 2, 2]);
            let mut m = DenseMatrix::<f64>::new(6, 1);
            m.fill_rows(&d.rows_of(me), |i, _| i as f64);
            let mut ckpt = BuddyCheckpoint::new();
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                ckpt.refresh(t, me, &g, &d, &mut arrays, 3, None);
            }
            // Rank 1 "dies": it skips the second refresh entirely. Rank 2
            // (its buddy) times out on the mirror receive — emulated with
            // a zero-second timeout it is guaranteed to hit because rank 1
            // never sends an epoch-2 payload (the epoch-salted tag makes
            // the old payload unmatchable).
            m.fill_rows(&d.rows_of(me), |i, _| 100.0 + i as f64);
            if me != 1 {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                let timeout = if me == 2 { Some(0.05) } else { None };
                ckpt.refresh(t, me, &g, &d, &mut arrays, 7, timeout);
                assert_eq!(ckpt.app_cycle(), 7);
            }
            if me == 2 {
                // Mirror kept from the first refresh, stamp intact.
                assert_eq!(ckpt.holds_mirror_of(), Some(1));
                assert_eq!(ckpt.mirror_app_cycle(), Some(3));
                // Rolling back to the stamp restores generation-1 data.
                m.fill_rows(&d.rows_of(me), |_, _| -1.0);
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                let (members, gd) = ckpt.restore_generation(3, &mut arrays);
                assert_eq!(members, vec![0, 1, 2]);
                assert_eq!(gd.counts(), vec![2, 2, 2]);
                for i in d.rows_of(2).iter() {
                    assert_eq!(m.row(i)[0], i as f64);
                }
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                assert_eq!(ckpt.materialize_mirror(&mut arrays), 2);
                for i in d.rows_of(1).iter() {
                    assert_eq!(m.row(i)[0], i as f64, "mirrored row {i}");
                }
            }
            ckpt.epoch()
        });
        assert_eq!(out, vec![2, 1, 2]);
    }
}
