//! Runtime event log.
//!
//! Every adaptation decision the runtime takes is recorded so harnesses
//! (and the figure generators) can reconstruct the timeline: when load was
//! detected, how long redistribution took, which nodes were dropped and
//! why.

use dynmpi_obs::Json;

use crate::timing::TimingMode;

/// Seconds → exact nanoseconds for trace attributes. Decision quantities
/// are all small non-negative cycle times, far below u64 range.
fn secs_to_ns(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e9).round() as u64
}

/// Dimensionless ratio (margin, fraction) → exact parts-per-million.
fn to_ppm(ratio: f64) -> u64 {
    (ratio.max(0.0) * 1e6).round() as u64
}

/// One adaptation event, stamped with the phase cycle it occurred in.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeEvent {
    /// The per-cycle load vector diverged from the last stable one; the
    /// grace period begins.
    LoadChangeDetected { cycle: u64, loads: Vec<u32> },
    /// Grace-period measurement finished with the given timing mode.
    GraceComplete { cycle: u64, mode: TimingMode },
    /// A redistribution was executed.
    Redistributed {
        cycle: u64,
        seconds: f64,
        rows_moved: usize,
        counts: Vec<usize>,
    },
    /// The balancer's new assignment moved too few rows to be worth it.
    RedistributionSkipped { cycle: u64, moved_fraction: f64 },
    /// The node-removal decision was evaluated after the
    /// post-redistribution grace period.
    DropEvaluated {
        cycle: u64,
        predicted_unloaded: f64,
        measured_max: f64,
        /// `drop_margin` the rule was evaluated with.
        margin: f64,
        /// Loaded members (world ranks) that a drop would remove.
        loaded: Vec<usize>,
        dropped: bool,
    },
    /// Loaded nodes were physically removed.
    NodesDropped { cycle: u64, nodes: Vec<usize> },
    /// A previously removed node was re-admitted (extension feature).
    NodeRejoined { cycle: u64, node: usize },
    /// A brand-new node (beyond the seed world) came online and entered
    /// the arrival grace period (malleability extension).
    NodeArrived { cycle: u64, node: usize },
    /// The expansion decision was evaluated for an arriving node: admit
    /// only if the predicted cycle time with the newcomer beats the
    /// measured one by the margin and amortizes the redistribution cost.
    ExpandEvaluated {
        cycle: u64,
        node: usize,
        predicted_with: f64,
        measured_max: f64,
        redist_cost: f64,
        /// `expand_margin` the rule was evaluated with.
        margin: f64,
        /// Cycles the redistribution cost must amortize over.
        horizon_cycles: u32,
        admitted: bool,
    },
    /// An arriving node was admitted into the computation and will
    /// receive rows in the accompanying redistribution.
    NodeAdmitted {
        cycle: u64,
        node: usize,
        /// Rows the newcomer receives in the admission redistribution.
        rows: usize,
    },
    /// The failure detector saw a silent control cycle from a node whose
    /// monitor also reads dead — the Suspect half of Suspect→Confirmed.
    NodeSuspected {
        cycle: u64,
        node: usize,
        silent_cycles: u32,
    },
    /// The detector's sustain rule fired: the node is Confirmed dead on
    /// every survivor (identically — the decision replays from broadcast
    /// control data). Recovery follows.
    NodeConfirmedDead {
        cycle: u64,
        node: usize,
        /// Consecutive silent control cycles that tripped the sustain rule.
        silent_cycles: u32,
    },
    /// Crash recovery completed: survivors rolled back to the checkpoint
    /// cycle, the dead node's rows were restored from its buddy, and the
    /// group was rebalanced.
    NodeRecovered {
        cycle: u64,
        node: usize,
        rollback_to: u64,
        restored_rows: usize,
        /// World rank of the buddy that held the dead node's checkpoint.
        holder: usize,
    },
}

impl RuntimeEvent {
    /// The phase cycle the event happened in.
    pub fn cycle(&self) -> u64 {
        match self {
            RuntimeEvent::LoadChangeDetected { cycle, .. }
            | RuntimeEvent::GraceComplete { cycle, .. }
            | RuntimeEvent::Redistributed { cycle, .. }
            | RuntimeEvent::RedistributionSkipped { cycle, .. }
            | RuntimeEvent::DropEvaluated { cycle, .. }
            | RuntimeEvent::NodesDropped { cycle, .. }
            | RuntimeEvent::NodeRejoined { cycle, .. }
            | RuntimeEvent::NodeArrived { cycle, .. }
            | RuntimeEvent::ExpandEvaluated { cycle, .. }
            | RuntimeEvent::NodeAdmitted { cycle, .. }
            | RuntimeEvent::NodeSuspected { cycle, .. }
            | RuntimeEvent::NodeConfirmedDead { cycle, .. }
            | RuntimeEvent::NodeRecovered { cycle, .. } => *cycle,
        }
    }

    /// Trace-instant attributes for this event: the cycle plus the
    /// decision-specific quantities analyzers need (redistribution cost
    /// and volume, drop predictions, load vectors). Keys are stable —
    /// they are part of the exported trace schema (DESIGN.md §10).
    ///
    /// Decision events additionally carry their time-valued inputs as
    /// exact-u64 nanoseconds (`*_ns`) and their margins as exact-u64
    /// parts-per-million (`*_ppm`), so downstream sinks (the explain
    /// engine, DESIGN.md §15) can reproduce the decision byte-identically
    /// without re-parsing floats.
    pub fn trace_args(&self) -> Vec<(String, Json)> {
        let mut args = vec![("cycle".to_string(), Json::UInt(self.cycle()))];
        let mut push = |k: &str, v: Json| args.push((k.to_string(), v));
        match self {
            RuntimeEvent::LoadChangeDetected { loads, .. } => {
                push(
                    "loads",
                    Json::Arr(loads.iter().map(|&l| Json::UInt(l as u64)).collect()),
                );
            }
            RuntimeEvent::GraceComplete { mode, .. } => {
                push("mode", Json::str(format!("{mode:?}")));
            }
            RuntimeEvent::Redistributed {
                seconds,
                rows_moved,
                counts,
                ..
            } => {
                push("seconds", Json::Num(*seconds));
                push("seconds_ns", Json::UInt(secs_to_ns(*seconds)));
                push("rows_moved", Json::UInt(*rows_moved as u64));
                push(
                    "counts",
                    Json::Arr(counts.iter().map(|&c| Json::UInt(c as u64)).collect()),
                );
            }
            RuntimeEvent::RedistributionSkipped { moved_fraction, .. } => {
                push("moved_fraction", Json::Num(*moved_fraction));
                push("moved_fraction_ppm", Json::UInt(to_ppm(*moved_fraction)));
            }
            RuntimeEvent::DropEvaluated {
                predicted_unloaded,
                measured_max,
                margin,
                loaded,
                dropped,
                ..
            } => {
                push("predicted_unloaded", Json::Num(*predicted_unloaded));
                push(
                    "predicted_unloaded_ns",
                    Json::UInt(secs_to_ns(*predicted_unloaded)),
                );
                push("measured_max", Json::Num(*measured_max));
                push("measured_max_ns", Json::UInt(secs_to_ns(*measured_max)));
                push("margin_ppm", Json::UInt(to_ppm(*margin)));
                push(
                    "loaded",
                    Json::Arr(loaded.iter().map(|&n| Json::UInt(n as u64)).collect()),
                );
                push("dropped", Json::Bool(*dropped));
            }
            RuntimeEvent::NodesDropped { nodes, .. } => {
                push(
                    "nodes",
                    Json::Arr(nodes.iter().map(|&n| Json::UInt(n as u64)).collect()),
                );
            }
            RuntimeEvent::NodeRejoined { node, .. } | RuntimeEvent::NodeArrived { node, .. } => {
                push("node", Json::UInt(*node as u64));
            }
            RuntimeEvent::ExpandEvaluated {
                node,
                predicted_with,
                measured_max,
                redist_cost,
                margin,
                horizon_cycles,
                admitted,
                ..
            } => {
                push("node", Json::UInt(*node as u64));
                push("predicted_with", Json::Num(*predicted_with));
                push("predicted_with_ns", Json::UInt(secs_to_ns(*predicted_with)));
                push("measured_max", Json::Num(*measured_max));
                push("measured_max_ns", Json::UInt(secs_to_ns(*measured_max)));
                push("redist_cost", Json::Num(*redist_cost));
                push("redist_cost_ns", Json::UInt(secs_to_ns(*redist_cost)));
                push("margin_ppm", Json::UInt(to_ppm(*margin)));
                push("horizon_cycles", Json::UInt(u64::from(*horizon_cycles)));
                push("admitted", Json::Bool(*admitted));
            }
            RuntimeEvent::NodeAdmitted { node, rows, .. } => {
                push("node", Json::UInt(*node as u64));
                push("rows", Json::UInt(*rows as u64));
            }
            RuntimeEvent::NodeConfirmedDead {
                node,
                silent_cycles,
                ..
            } => {
                push("node", Json::UInt(*node as u64));
                push("silent_cycles", Json::UInt(u64::from(*silent_cycles)));
            }
            RuntimeEvent::NodeSuspected {
                node,
                silent_cycles,
                ..
            } => {
                push("node", Json::UInt(*node as u64));
                push("silent_cycles", Json::UInt(u64::from(*silent_cycles)));
            }
            RuntimeEvent::NodeRecovered {
                node,
                rollback_to,
                restored_rows,
                holder,
                ..
            } => {
                push("node", Json::UInt(*node as u64));
                push("rollback_to", Json::UInt(*rollback_to));
                push("restored_rows", Json::UInt(*restored_rows as u64));
                push("holder", Json::UInt(*holder as u64));
            }
        }
        args
    }

    /// Short tag for summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            RuntimeEvent::LoadChangeDetected { .. } => "load-change",
            RuntimeEvent::GraceComplete { .. } => "grace-complete",
            RuntimeEvent::Redistributed { .. } => "redistributed",
            RuntimeEvent::RedistributionSkipped { .. } => "redist-skipped",
            RuntimeEvent::DropEvaluated { .. } => "drop-evaluated",
            RuntimeEvent::NodesDropped { .. } => "nodes-dropped",
            RuntimeEvent::NodeRejoined { .. } => "node-rejoined",
            RuntimeEvent::NodeArrived { .. } => "node-arrived",
            RuntimeEvent::ExpandEvaluated { .. } => "expand-evaluated",
            RuntimeEvent::NodeAdmitted { .. } => "node-admitted",
            RuntimeEvent::NodeSuspected { .. } => "node-suspected",
            RuntimeEvent::NodeConfirmedDead { .. } => "node-confirmed-dead",
            RuntimeEvent::NodeRecovered { .. } => "node-recovered",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_and_kind_accessors() {
        let e = RuntimeEvent::Redistributed {
            cycle: 12,
            seconds: 0.5,
            rows_moved: 100,
            counts: vec![50, 50],
        };
        assert_eq!(e.cycle(), 12);
        assert_eq!(e.kind(), "redistributed");
        let d = RuntimeEvent::DropEvaluated {
            cycle: 30,
            predicted_unloaded: 1.0,
            measured_max: 2.0,
            margin: 1.0,
            loaded: vec![1],
            dropped: true,
        };
        assert_eq!(d.cycle(), 30);
        assert_eq!(d.kind(), "drop-evaluated");
    }

    #[test]
    fn trace_args_carry_decision_payload() {
        let e = RuntimeEvent::Redistributed {
            cycle: 12,
            seconds: 0.5,
            rows_moved: 100,
            counts: vec![50, 50],
        };
        let args = e.trace_args();
        assert_eq!(args[0], ("cycle".to_string(), Json::UInt(12)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "seconds" && v.as_f64() == Some(0.5)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "seconds_ns" && *v == Json::UInt(500_000_000)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "rows_moved" && v.as_u64() == Some(100)));
        let d = RuntimeEvent::DropEvaluated {
            cycle: 30,
            predicted_unloaded: 1.0,
            measured_max: 2.0,
            margin: 1.05,
            loaded: vec![1, 3],
            dropped: true,
        };
        let args = d.trace_args();
        assert!(args
            .iter()
            .any(|(k, v)| k == "dropped" && *v == Json::Bool(true)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "predicted_unloaded_ns" && *v == Json::UInt(1_000_000_000)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "measured_max_ns" && *v == Json::UInt(2_000_000_000)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "margin_ppm" && *v == Json::UInt(1_050_000)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "loaded" && *v == Json::Arr(vec![Json::UInt(1), Json::UInt(3)])));
    }

    #[test]
    fn arrival_events_carry_decision_payload() {
        let a = RuntimeEvent::NodeArrived { cycle: 7, node: 4 };
        assert_eq!(a.kind(), "node-arrived");
        assert_eq!(a.cycle(), 7);
        assert!(a
            .trace_args()
            .iter()
            .any(|(k, v)| k == "node" && v.as_u64() == Some(4)));
        let e = RuntimeEvent::ExpandEvaluated {
            cycle: 12,
            node: 4,
            predicted_with: 0.8,
            measured_max: 1.0,
            redist_cost: 0.1,
            margin: 1.0,
            horizon_cycles: 50,
            admitted: true,
        };
        assert_eq!(e.kind(), "expand-evaluated");
        let args = e.trace_args();
        assert!(args
            .iter()
            .any(|(k, v)| k == "predicted_with" && v.as_f64() == Some(0.8)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "predicted_with_ns" && *v == Json::UInt(800_000_000)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "redist_cost" && v.as_f64() == Some(0.1)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "redist_cost_ns" && *v == Json::UInt(100_000_000)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "horizon_cycles" && v.as_u64() == Some(50)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "admitted" && *v == Json::Bool(true)));
        let n = RuntimeEvent::NodeAdmitted {
            cycle: 12,
            node: 4,
            rows: 120,
        };
        assert_eq!(n.kind(), "node-admitted");
        assert_eq!(n.cycle(), 12);
        assert!(n
            .trace_args()
            .iter()
            .any(|(k, v)| k == "rows" && v.as_u64() == Some(120)));
    }

    #[test]
    fn failure_events_carry_decision_payload() {
        let s = RuntimeEvent::NodeSuspected {
            cycle: 9,
            node: 2,
            silent_cycles: 2,
        };
        assert_eq!(s.kind(), "node-suspected");
        assert_eq!(s.cycle(), 9);
        assert!(s
            .trace_args()
            .iter()
            .any(|(k, v)| k == "silent_cycles" && v.as_u64() == Some(2)));
        let c = RuntimeEvent::NodeConfirmedDead {
            cycle: 11,
            node: 2,
            silent_cycles: 3,
        };
        assert_eq!(c.kind(), "node-confirmed-dead");
        let args = c.trace_args();
        assert!(args
            .iter()
            .any(|(k, v)| k == "node" && v.as_u64() == Some(2)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "silent_cycles" && v.as_u64() == Some(3)));
        let r = RuntimeEvent::NodeRecovered {
            cycle: 11,
            node: 2,
            rollback_to: 8,
            restored_rows: 40,
            holder: 3,
        };
        assert_eq!(r.kind(), "node-recovered");
        let args = r.trace_args();
        assert!(args
            .iter()
            .any(|(k, v)| k == "rollback_to" && v.as_u64() == Some(8)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "restored_rows" && v.as_u64() == Some(40)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "holder" && v.as_u64() == Some(3)));
    }
}
