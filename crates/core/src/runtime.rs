//! The Dyn-MPI runtime (§4).
//!
//! One [`DynMpi`] instance lives on each rank. The application registers
//! its redistributable arrays, phases, and DRSD accesses, then brackets
//! every phase cycle with [`DynMpi::begin_cycle`] / [`DynMpi::end_cycle`].
//! `end_cycle` is where everything happens:
//!
//! 1. every active rank's cycle time is gathered; the root reads the
//!    `dmpi_ps` monitors and broadcasts a consistent load vector;
//! 2. the replicated state machine advances:
//!    `Stable → Grace(5) → [redistribute] → PostRedist(10) → {Stable | drop}`;
//! 3. removed ranks receive a per-cycle status message from the active
//!    root (the *send-out-only* global communication of §4.4) so they stay
//!    current on membership and can rejoin.
//!
//! All decisions are pure functions of broadcast data, so every rank
//! reaches the identical conclusion without further coordination.

use dynmpi_comm::{from_bytes, to_bytes, CommOps, Group, HostMeters};
use dynmpi_obs::{self as obs, Json};

use crate::array::{ArrayMeta, RedistArray};
use crate::balance::{
    predict_cycle_time, relative_power, successive_balance_with_floor, CommModel, NodeLoad,
};
use crate::checkpoint::{BuddyCheckpoint, TAG_CKPT_META};
use crate::config::{BalancerKind, DropPolicy, DynMpiConfig};
use crate::dist::Distribution;
use crate::drsd::{AccessMode, ArrayAccess, Drsd};
use crate::events::RuntimeEvent;
use crate::redist::{self, RedistOutcome, ScheduleCache, TransferSchedule};
use crate::rowset::RowSet;
use crate::timing::RowTimer;

use std::cell::RefCell;
use std::rc::Rc;

/// Status messages from the active root to removed ranks.
const TAG_STATUS: u64 = (1 << 33) + 0x20_0000;
/// Pipelined control plane: per-cycle samples up to the root and state
/// blobs back down, tagged per epoch (membership generation).
const TAG_CTRL_UP: u64 = 1 << 34;
const TAG_CTRL_DOWN: u64 = (1 << 34) + 1;
/// Control pipeline depth: decisions at cycle `k` use data from cycle
/// `k − CTRL_LAG`, so no rank ever blocks on another's in-flight control
/// message — monitoring stays off the critical path (the paper's
/// daemon-based design point).
const CTRL_LAG: u64 = 2;
/// Send-out leg of removed-aware global reductions.
const TAG_GLOBAL: u64 = (1 << 33) + 0x30_0000;
/// Per-cycle ghost-row exchange (one tag per array).
const TAG_GEX: u64 = (1 << 33) + 0x40_0000;
/// Control-gather sentinels (failure detection only): the peer's sample
/// never arrived within the timeout. `CTRL_SILENT` = its `dmpi_ps`
/// monitor also reads dead (a crash suspect); `CTRL_STALLED` = the
/// monitor still answers (overload — no suspicion, and the detector
/// streak resets so a merely slow node is never confirmed). Negative so
/// they can never collide with a real cycle time.
const CTRL_SILENT: f64 = -1.0;
const CTRL_STALLED: f64 = -2.0;

/// Identifier of a registered array (registration order).
pub type ArrayId = usize;
/// Identifier of a registered phase (registration order).
pub type PhaseId = usize;

/// Communication pattern of a phase, used to estimate the number of
/// blocking receives per cycle for the §4.3 penalty model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CommPattern {
    /// No communication.
    None,
    /// Ghost-row exchange with both neighbors: 2 blocking receives.
    NearestNeighbor,
    /// One-direction ring shift: 1 blocking receive.
    RingShift,
    /// A tree collective: ~log₂(n) blocking receives.
    Global,
    /// Explicit receive count.
    Custom(f64),
}

impl CommPattern {
    fn blocking_recvs(self, n_active: usize) -> f64 {
        match self {
            CommPattern::None => 0.0,
            CommPattern::NearestNeighbor => 2.0,
            CommPattern::RingShift => 1.0,
            CommPattern::Global => (n_active.max(2) as f64).log2().ceil(),
            CommPattern::Custom(r) => r,
        }
    }
}

/// A registered phase: a slice of the iteration space plus its
/// communication pattern (§2.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseSpec {
    /// First global iteration (row), inclusive.
    pub lo: usize,
    /// Last global iteration, exclusive.
    pub hi: usize,
    pub pattern: CommPattern,
}

/// What `end_cycle` did this cycle.
#[derive(Clone, Debug, Default)]
pub struct CycleReport {
    pub cycle: u64,
    pub seconds: f64,
    pub redistributed: bool,
    pub dropped: Vec<usize>,
    pub rejoined: Option<usize>,
    /// A brand-new node (beyond the seed world) admitted this cycle.
    pub admitted: Option<usize>,
    /// A node confirmed dead and recovered around this cycle. The caller
    /// must also check [`DynMpi::take_rollback`] and rewind its loop.
    pub recovered: Option<usize>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Stable,
    Grace {
        left: u32,
    },
    PostRedist {
        left: u32,
    },
    /// Re-measurement window for an arriving node (malleability): rows
    /// are timed and cycle times accumulated before the expansion
    /// decision for `node`.
    ArrivalGrace {
        node: usize,
        left: u32,
    },
}

/// The per-rank Dyn-MPI runtime.
pub struct DynMpi<'a, T: HostMeters> {
    t: &'a T,
    cfg: DynMpiConfig,
    nrows: usize,
    wsize: usize,
    wrank: usize,
    /// Ranks `0..seed` start in the computation; ranks `seed..wsize` are
    /// reserved for scripted arrivals and enter only through the
    /// expansion decision (= `wsize` when the whole world is seeded).
    seed: usize,

    active: Group,
    dist: Distribution,
    is_removed: bool,
    /// Removed rank's view of the active membership and distribution.
    known_members: Vec<usize>,
    known_counts: Vec<usize>,

    arrays: Vec<ArrayMeta>,
    phases: Vec<PhaseSpec>,
    accesses: Vec<ArrayAccess>,
    setup_done: bool,

    mode: Mode,
    cycle: u64,
    last_loads: Vec<u32>,
    rebalance_requested: bool,
    timer: Option<RowTimer>,
    row_weights: Option<Vec<f64>>,
    cycle_wall_start: f64,
    /// Per-active-member cycle-time accumulator for the post-redist
    /// window (indexed like `active.members()`).
    post_accum: Vec<f64>,
    post_count: u32,
    /// Consecutive load-free cycles per world node (rejoin tracking).
    clear_streak: Vec<u32>,

    local_cycle_times: Vec<f64>,
    events: Vec<RuntimeEvent>,
    redist_seconds_total: f64,
    redist_count: u32,

    /// Control-plane epoch: bumped at every membership transition so
    /// stale pipeline messages are never consumed.
    ctrl_epoch: u64,
    /// Samples sent since the epoch started.
    ctrl_sent: u64,
    /// Root only: this rank's own queued samples (peers' queue in their
    /// mailboxes).
    self_samples: std::collections::VecDeque<f64>,
    /// Blobs to ignore at the start of a PostRedist window (they carry
    /// pre-redistribution cycle times because of the pipeline lag).
    post_skip: u32,

    /// Buddy checkpoints (fail-stop path; empty unless
    /// `cfg.failure_detection`).
    ckpt: BuddyCheckpoint,
    /// Confirmed-dead world nodes — never readmitted.
    dead: Vec<bool>,
    /// Consecutive silent control cycles per world node (the replicated
    /// detector streaks; advanced identically on every active rank from
    /// the broadcast blob).
    silent_streak: Vec<u32>,
    /// Application steps completed on this rank (= phase cycles, minus
    /// replayed steps after a rollback). Stamped into checkpoints.
    app_progress: u64,
    /// Pending rollback for the application after a recovery.
    rollback_to: Option<u64>,
    /// Cycles since the last checkpoint refresh (interval refreshes).
    cycles_since_ckpt: u32,
    /// This rank concluded it is isolated (control receives silent for
    /// the full confirmation window) and withdrew permanently.
    evicted: bool,

    /// Transfer-schedule cache: steady-state cycles (ghost exchange,
    /// repeated redistributions over an unchanged distribution) reuse the
    /// schedule instead of re-deriving it. `RefCell` because the
    /// per-cycle ghost exchange runs behind `&self`.
    sched_cache: RefCell<ScheduleCache>,
}

impl<'a, T: HostMeters> DynMpi<'a, T> {
    /// Initializes the runtime on one rank. `nrows` is the shared extent
    /// of the distributed dimension. The initial distribution is an even
    /// block over all ranks.
    pub fn init(t: &'a T, nrows: usize, cfg: DynMpiConfig) -> Self {
        cfg.validate();
        let wsize = t.size();
        let wrank = t.rank();
        assert!(nrows >= wsize, "fewer rows ({nrows}) than ranks ({wsize})");
        let seed = cfg.seed_world.unwrap_or(wsize);
        assert!(
            (1..=wsize).contains(&seed),
            "seed world {seed} out of range 1..={wsize}"
        );
        DynMpi {
            t,
            cfg,
            nrows,
            wsize,
            wrank,
            seed,
            active: Group::new((0..seed).collect(), wrank),
            dist: Distribution::block_even(nrows, seed),
            is_removed: wrank >= seed,
            known_members: (0..seed).collect(),
            known_counts: Distribution::block_even(nrows, seed).counts(),
            arrays: Vec::new(),
            phases: Vec::new(),
            accesses: Vec::new(),
            setup_done: false,
            mode: Mode::Stable,
            cycle: 0,
            last_loads: vec![0; wsize],
            rebalance_requested: false,
            timer: None,
            row_weights: None,
            cycle_wall_start: 0.0,
            post_accum: vec![0.0; wsize],
            post_count: 0,
            clear_streak: vec![0; wsize],
            local_cycle_times: Vec::new(),
            events: Vec::new(),
            redist_seconds_total: 0.0,
            redist_count: 0,
            ctrl_epoch: 0,
            ctrl_sent: 0,
            self_samples: std::collections::VecDeque::new(),
            post_skip: 0,
            ckpt: BuddyCheckpoint::new(),
            dead: vec![false; wsize],
            silent_streak: vec![0; wsize],
            app_progress: 0,
            rollback_to: None,
            cycles_since_ckpt: 0,
            evicted: false,
            sched_cache: RefCell::new(ScheduleCache::new()),
        }
    }

    // ---------------- registration (§2.2 API) --------------------------

    /// `DMPI_register_dense_array`.
    pub fn register_dense(&mut self, name: &str, nrows: usize) -> ArrayId {
        self.register(ArrayMeta::dense(name, nrows))
    }

    /// `DMPI_register_sparse_array`.
    pub fn register_sparse(&mut self, name: &str, nrows: usize) -> ArrayId {
        self.register(ArrayMeta::sparse(name, nrows))
    }

    fn register(&mut self, meta: ArrayMeta) -> ArrayId {
        assert!(!self.setup_done, "register arrays before setup");
        assert_eq!(
            meta.nrows, self.nrows,
            "array {} extent must match the distributed space",
            meta.name
        );
        assert!(
            self.arrays.iter().all(|m| m.name != meta.name),
            "array {} registered twice",
            meta.name
        );
        self.arrays.push(meta);
        self.arrays.len() - 1
    }

    /// `DMPI_init_phase`: registers a phase over global iterations
    /// `lo..hi` with the given communication pattern.
    pub fn init_phase(&mut self, lo: usize, hi: usize, pattern: CommPattern) -> PhaseId {
        assert!(!self.setup_done, "register phases before setup");
        assert!(
            lo < hi && hi <= self.nrows,
            "phase range {lo}..{hi} invalid"
        );
        self.phases.push(PhaseSpec { lo, hi, pattern });
        self.phases.len() - 1
    }

    /// `DMPI_add_array_access`: attaches a DRSD to a phase.
    pub fn add_access(&mut self, _phase: PhaseId, array: ArrayId, mode: AccessMode, drsd: Drsd) {
        assert!(!self.setup_done, "register accesses before setup");
        assert!(array < self.arrays.len(), "unknown array id {array}");
        self.accesses.push(ArrayAccess { array, mode, drsd });
        // Schedules embed the access list; anything cached is now stale.
        self.sched_cache.borrow_mut().invalidate();
    }

    /// Finalizes registration and allocates each array's owned and ghost
    /// rows on this rank. Call once, passing the arrays in registration
    /// order; then fill them via [`Self::local_rows`].
    pub fn setup(&mut self, arrays: &mut [&mut dyn RedistArray]) {
        assert!(!self.setup_done, "setup called twice");
        self.validate_arrays(arrays);
        for (ai, arr) in arrays.iter_mut().enumerate() {
            let rows = self.local_rows(ai);
            arr.alloc_rows(&rows);
        }
        self.setup_done = true;
    }

    fn validate_arrays(&self, arrays: &[&mut dyn RedistArray]) {
        assert_eq!(
            arrays.len(),
            self.arrays.len(),
            "pass every registered array, in registration order"
        );
        for (meta, arr) in self.arrays.iter().zip(arrays) {
            assert_eq!(
                arr.nrows(),
                meta.nrows,
                "array {} extent mismatch",
                meta.name
            );
        }
    }

    // ---------------- queries ------------------------------------------

    /// `DMPI_participating`: is this rank part of the computation?
    pub fn participating(&self) -> bool {
        !self.is_removed
    }

    /// `DMPI_get_rel_rank`: this rank's relative rank among active nodes.
    pub fn rel_rank(&self) -> Option<usize> {
        if self.is_removed {
            None
        } else {
            self.active.rel()
        }
    }

    /// `DMPI_get_num_active`.
    pub fn num_active(&self) -> usize {
        if self.is_removed {
            self.known_members.len()
        } else {
            self.active.size()
        }
    }

    /// World rank of a relative rank (for neighbor messaging).
    pub fn world_rank_of(&self, rel: usize) -> usize {
        self.active.world_rank(rel)
    }

    /// This rank's world rank.
    pub fn world_rank(&self) -> usize {
        self.wrank
    }

    /// `DMPI_get_start_iter` / `DMPI_get_end_iter`: this rank's
    /// contiguous iteration range within `phase`, inclusive; `None` when
    /// it owns nothing there (or is removed).
    pub fn my_range(&self, phase: PhaseId) -> Option<(usize, usize)> {
        let rows = self.my_rows(phase);
        Some((rows.first()?, rows.last()?))
    }

    /// The exact rows of `phase` this rank owns (supports cyclic
    /// distributions too).
    pub fn my_rows(&self, phase: PhaseId) -> RowSet {
        let spec = self.phases[phase];
        if self.is_removed {
            return RowSet::new();
        }
        let Some(rel) = self.active.rel() else {
            return RowSet::new();
        };
        self.dist
            .rows_of(rel)
            .intersect(&RowSet::from_range(spec.lo..spec.hi))
    }

    /// Rows of `array` present on this rank: owned plus DRSD ghosts. Use
    /// after `setup` (or a redistribution) to know what to initialize.
    pub fn local_rows(&self, array: ArrayId) -> RowSet {
        if self.is_removed || self.active.rel().is_none() {
            return RowSet::new();
        }
        self.steady_schedule().keep[array].clone()
    }

    /// The identity transfer schedule for the current membership and
    /// distribution. Ghost legs double as the per-cycle boundary-exchange
    /// plan; `keep` sets are owned ∪ ghost rows. Cached until the group,
    /// the distribution, or the access list changes.
    fn steady_schedule(&self) -> Rc<TransferSchedule> {
        self.sched_cache.borrow_mut().schedule(
            self.wrank,
            &self.active,
            &self.dist,
            &self.active,
            &self.dist,
            &self.accesses,
            self.arrays.len(),
        )
    }

    /// The current distribution over active nodes.
    pub fn distribution(&self) -> &Distribution {
        &self.dist
    }

    /// The active group, for application-level collectives over active
    /// ranks (e.g. CG's allgather of `p`). Guard uses with
    /// [`Self::participating`].
    pub fn group(&self) -> &dynmpi_comm::Group {
        &self.active
    }

    /// Active members (world ranks).
    pub fn active_members(&self) -> &[usize] {
        if self.is_removed {
            &self.known_members
        } else {
            self.active.members()
        }
    }

    /// The adaptation event log.
    pub fn events(&self) -> &[RuntimeEvent] {
        &self.events
    }

    /// Per-cycle wall times observed by this rank.
    pub fn local_cycle_times(&self) -> &[f64] {
        &self.local_cycle_times
    }

    /// The latest measured global per-row weights, if a grace period has
    /// completed.
    pub fn row_weights(&self) -> Option<&[f64]> {
        self.row_weights.as_deref()
    }

    /// Total wall seconds spent inside redistribution operations.
    pub fn redistribution_seconds(&self) -> f64 {
        self.redist_seconds_total
    }

    /// Requests a rebalance at the next `end_cycle` even without a load
    /// change (the REDISTRIBUTE-annotation analogue; must be called by
    /// every active rank in the same cycle).
    pub fn request_rebalance(&mut self) {
        self.rebalance_requested = true;
    }

    // ---------------- per-cycle hooks -----------------------------------

    /// Marks the start of a phase cycle.
    pub fn begin_cycle(&mut self) {
        self.cycle_wall_start = self.t.wtime();
        if obs::enabled() {
            // Paired with the `end_cycle` span's `cycle` attribute (the
            // counter increments inside `end_cycle_inner`, so the cycle
            // now starting is `self.cycle + 1`): together they bound each
            // adaptation cycle's wall time per rank for the profiler.
            obs::instant(
                "runtime",
                "begin_cycle",
                self.t.now_ns(),
                vec![("cycle".to_string(), Json::UInt(self.cycle + 1))],
            );
        }
    }

    /// Performs this rank's compute for `phase`, charging `work(row)`
    /// CPU units per owned row. Outside the grace period the whole range
    /// is charged in one piece; during it each row is timed individually
    /// (§4.2).
    pub fn charge_rows(&mut self, phase: PhaseId, work: impl Fn(usize) -> f64) {
        let rows = self.my_rows(phase);
        let grace = matches!(self.mode, Mode::Grace { .. } | Mode::ArrivalGrace { .. })
            && self.timer.is_some();
        let traced = obs::enabled();
        let cpu0 = if traced { self.t.proc_cpu_ns() } else { 0 };
        if traced {
            // Per-row grace measurement is a distinct span: it is the
            // instrumented (and slightly slower) variant of the same work.
            let name = if grace {
                "grace_measure"
            } else {
                "charge_rows"
            };
            obs::span_begin("runtime", name, self.t.now_ns());
        }
        let mut total = 0.0f64;
        if let (true, Some(timer)) = (grace, self.timer.as_mut()) {
            for i in rows.iter() {
                let w0 = self.t.wtime();
                let p0 = self.t.proc_cpu_seconds();
                let w = work(i);
                total += w;
                self.t.compute(w);
                timer.record(i, self.t.wtime() - w0, self.t.proc_cpu_seconds() - p0);
            }
        } else {
            total = rows.iter().map(&work).sum();
            self.t.compute(total);
        }
        if traced {
            // `cpu_ns` is the exact (un-quantized) CPU consumed by the
            // span and `work_uflop` the charged work in integer
            // micro-flops — both mode-invariant integers the health
            // monitor splits exactly across its windows.
            obs::span_end_args(
                self.t.now_ns(),
                vec![
                    ("rows".to_string(), Json::UInt(rows.len() as u64)),
                    (
                        "cpu_ns".to_string(),
                        Json::UInt(self.t.proc_cpu_ns().saturating_sub(cpu0)),
                    ),
                    (
                        "work_uflop".to_string(),
                        Json::UInt((total * 1e6).round() as u64),
                    ),
                ],
            );
        }
    }

    /// Ends a phase cycle: monitoring, grace bookkeeping, redistribution,
    /// node removal, and removed-rank status handling. Pass every
    /// registered array, in registration order.
    pub fn end_cycle(&mut self, arrays: &mut [&mut dyn RedistArray]) -> CycleReport {
        if !obs::enabled() {
            return self.end_cycle_inner(arrays);
        }
        obs::span_begin("runtime", "end_cycle", self.t.now_ns());
        let report = self.end_cycle_inner(arrays);
        obs::span_end_args(
            self.t.now_ns(),
            vec![("cycle".to_string(), Json::UInt(report.cycle))],
        );
        report
    }

    /// Records an adaptation event: appended to the queryable log and, when
    /// tracing is active, mirrored as an instant trace event.
    fn note(&mut self, ev: RuntimeEvent) {
        if obs::enabled() {
            obs::instant("runtime", ev.kind(), self.t.now_ns(), ev.trace_args());
        }
        self.events.push(ev);
    }

    fn end_cycle_inner(&mut self, arrays: &mut [&mut dyn RedistArray]) -> CycleReport {
        assert!(self.setup_done, "call setup before cycling");
        self.validate_arrays(arrays);
        let cycle_time = self.t.wtime() - self.cycle_wall_start;
        self.local_cycle_times.push(cycle_time);
        self.t.phase_cycle_completed();
        self.cycle += 1;
        self.app_progress += 1;
        let mut report = CycleReport {
            cycle: self.cycle,
            seconds: cycle_time,
            ..Default::default()
        };

        if self.evicted {
            // A self-evicted rank has no one to talk to: every cycle is a
            // silent no-op until the application finishes its loop.
            return report;
        }
        if self.is_removed {
            self.removed_end_cycle(arrays, &mut report);
            if !self.is_removed && self.cfg.failure_detection {
                // Just readmitted: join the actives' checkpoint refresh
                // (they run theirs after the same transition).
                self.refresh_ckpt(arrays);
            }
            return report;
        }
        if !self.cfg.adapt {
            return report;
        }
        if self.cfg.failure_detection && self.ckpt.epoch() == 0 {
            // First cycle: the arrays now hold the application's
            // initialized data (setup-time contents are unfilled), so
            // this is the earliest sound baseline checkpoint. A crash
            // before this refresh completes is unrecoverable (DESIGN.md
            // §14).
            self.refresh_ckpt(arrays);
        }

        // 1. Pipelined control plane. Every cycle each active rank posts
        //    its cycle time to the root; the root assembles per-cycle
        //    state blobs (times + monitor loads) and posts them back.
        //    Both directions run CTRL_LAG cycles deep, so every receive
        //    finds its message already delivered: no rank stalls on a
        //    loaded node's in-flight control traffic.
        let rel = self.active.rel_unchecked();
        let root = self.active.world_rank(0);
        let up = TAG_CTRL_UP + 4 * self.ctrl_epoch;
        let down = TAG_CTRL_DOWN + 4 * self.ctrl_epoch;
        if rel == 0 {
            self.self_samples.push_back(cycle_time);
        } else {
            self.t.send_bytes(root, up, to_bytes(&[cycle_time]));
        }
        self.ctrl_sent += 1;
        if self.ctrl_sent <= CTRL_LAG {
            // Pipeline warm-up: no blob yet, but removed ranks still
            // expect their per-cycle status.
            if rel == 0 {
                let removed = self.removed_nodes();
                self.send_statuses(&removed, &vec![0; self.wsize]);
            }
            return report;
        }
        let blob: Vec<f64> = if rel == 0 {
            let mut b = Vec::with_capacity(self.active.size() + self.wsize);
            for r in 0..self.active.size() {
                if r == 0 {
                    b.push(self.self_samples.pop_front().expect("own sample queued"));
                } else if self.cfg.failure_detection {
                    // Timeout-guarded gather: a missing sample becomes a
                    // sentinel the replicated detector classifies from
                    // the monitor reading (dead vs. merely overloaded).
                    let peer = self.active.world_rank(r);
                    let sample =
                        match self
                            .t
                            .recv_bytes_timeout(peer, up, self.cfg.peer_timeout_seconds)
                        {
                            Ok(bytes) => {
                                let v: Vec<f64> = from_bytes(&bytes);
                                v[0]
                            }
                            Err(_) if self.t.dmpi_ps(peer) == 0 => CTRL_SILENT,
                            Err(_) => CTRL_STALLED,
                        };
                    b.push(sample);
                } else {
                    let bytes = self.t.recv_bytes(self.active.world_rank(r), up);
                    let v: Vec<f64> = from_bytes(&bytes);
                    b.push(v[0]);
                }
            }
            for node in 0..self.wsize {
                b.push(f64::from(self.t.dmpi_ps(node).saturating_sub(1)));
            }
            // Arrival extension: online flags for the non-seed ranks.
            // Absent entirely when the world is fully seeded, so classic
            // runs keep a byte-identical control plane.
            for node in self.seed..self.wsize {
                b.push(if self.t.node_online(node) { 1.0 } else { 0.0 });
            }
            // Fail-stop path: raw monitor liveness per world node. The
            // load entries above subtract the application's own process,
            // so a dead monitor (raw 0) is indistinguishable from an
            // unloaded node there; these flags disambiguate. Gated on
            // `failure_detection` so classic control blobs stay
            // byte-identical.
            if self.cfg.failure_detection {
                for node in 0..self.wsize {
                    b.push(if self.t.dmpi_ps(node) >= 1 { 1.0 } else { 0.0 });
                }
            }
            let bytes = to_bytes(&b);
            for r in 1..self.active.size() {
                self.t
                    .send_bytes(self.active.world_rank(r), down, bytes.clone());
            }
            b
        } else if self.cfg.failure_detection {
            // The state blob is the replicated machine's input: a rank
            // must never advance without it. A timeout alone is NOT
            // evidence of being cut off — the root's gather legitimately
            // drifts one peer-timeout per silent cycle while a death is
            // being confirmed, so a fixed retry budget would falsely
            // evict a healthy survivor (and deadlock the others'
            // recovery). Like the ghost exchange, the wait re-arms until
            // the same evidence the detector uses says *this rank* is cut
            // off: the root's monitor reading dead (partitioned reader,
            // or the root itself died — the latter is out of scope,
            // DESIGN.md §14). Then it withdraws rather than blocking
            // forever — the survivors are confirming it dead through the
            // same silence.
            let got = loop {
                match self
                    .t
                    .recv_bytes_timeout(root, down, self.cfg.peer_timeout_seconds)
                {
                    Ok(b) => break Some(b),
                    Err(_) if self.t.dmpi_ps(root) == 0 => break None,
                    Err(_) => continue,
                }
            };
            match got {
                Some(b) => from_bytes(&b),
                None => {
                    self.self_evict();
                    return report;
                }
            }
        } else {
            from_bytes(&self.t.recv_bytes(root, down))
        };
        let na = self.active.size();
        let times: Vec<f64> = blob[..na].to_vec();
        let loads: Vec<u32> = blob[na..na + self.wsize]
            .iter()
            .map(|&x| x as u32)
            .collect();
        let online_end = na + self.wsize + (self.wsize - self.seed);
        let online: Vec<bool> = blob[na + self.wsize..online_end]
            .iter()
            .map(|&x| x == 1.0)
            .collect();
        let alive: Vec<bool> = if self.cfg.failure_detection {
            blob[online_end..].iter().map(|&x| x == 1.0).collect()
        } else {
            vec![true; self.wsize]
        };
        debug_assert_eq!(online.len(), self.wsize - self.seed);
        debug_assert_eq!(alive.len(), self.wsize);

        // Track load-free streaks of removed nodes (for rejoin).
        for (n, &load) in loads.iter().enumerate() {
            if load == 0 {
                self.clear_streak[n] = self.clear_streak[n].saturating_add(1);
            } else {
                self.clear_streak[n] = 0;
            }
        }

        // 2. Replicated failure detector: every active rank advances the
        //    same Suspect→Confirmed streak machine from the broadcast
        //    sentinels, so all survivors confirm a death on the same
        //    cycle without further coordination.
        let mut confirmed = None;
        if self.cfg.failure_detection {
            for (r, &tm) in times.iter().enumerate() {
                let m = self.active.world_rank(r);
                if tm == CTRL_SILENT {
                    let streak = self.silent_streak[m] + 1;
                    self.silent_streak[m] = streak;
                    self.note(RuntimeEvent::NodeSuspected {
                        cycle: self.cycle,
                        node: m,
                        silent_cycles: streak,
                    });
                    if streak >= self.cfg.failure_confirm_cycles && confirmed.is_none() {
                        confirmed = Some(m);
                    }
                } else {
                    // A real sample or a stall sentinel (monitor alive):
                    // the sustain rule restarts, so pure overload never
                    // escalates to Confirmed.
                    self.silent_streak[m] = 0;
                }
            }
        }
        if let Some(d) = confirmed {
            self.note(RuntimeEvent::NodeConfirmedDead {
                cycle: self.cycle,
                node: d,
                silent_cycles: self.silent_streak[d],
            });
            self.recover_from_death(d, &loads, arrays, &mut report);
            return report;
        }

        // 3. Replicated state machine.
        let pre_removed = self.removed_nodes();
        self.step(&times, &loads, &online, &alive, arrays, &mut report);

        // 4. Status send-out to ranks that were already removed at cycle
        //    start. Drop, rejoin, and admission transitions send their
        //    own statuses inside step() (the pre-transition root owes
        //    them), so the generic send is suppressed on those cycles.
        let transition =
            !report.dropped.is_empty() || report.rejoined.is_some() || report.admitted.is_some();
        if !transition && !self.is_removed && self.active.rel() == Some(0) {
            self.send_statuses(&pre_removed, &loads);
        }

        // 5. Fail-stop path: keep buddy checkpoints tracking the
        //    distribution — refresh after every transition (the snapshot
        //    row sets must equal the new distribution's) and on the
        //    configured interval when stable and unsuspicious.
        if self.cfg.failure_detection && !self.is_removed {
            self.cycles_since_ckpt = self.cycles_since_ckpt.saturating_add(1);
            let interval = self.cfg.checkpoint_interval_cycles;
            let due = interval > 0
                && self.cycles_since_ckpt >= interval
                && matches!(self.mode, Mode::Stable)
                && !self
                    .active
                    .members()
                    .iter()
                    .any(|&m| self.silent_streak[m] > 0);
            if transition || report.redistributed || due {
                self.refresh_ckpt(arrays);
            }
        }
        report
    }

    /// Nodes currently outside the active group.
    fn removed_nodes(&self) -> Vec<usize> {
        (0..self.wsize)
            .filter(|n| !self.active.contains(*n))
            .collect()
    }

    // ---------------- the state machine ---------------------------------

    fn step(
        &mut self,
        times: &[f64],
        loads: &[u32],
        online: &[bool],
        alive: &[bool],
        arrays: &mut [&mut dyn RedistArray],
        report: &mut CycleReport,
    ) {
        // Freeze the adaptation machine while any control sample is a
        // sentinel or any suspect streak is open: every transition runs a
        // collective that would hang on a dead member, and sentinel
        // "times" must never enter the measurement accumulators. The
        // condition is a pure function of broadcast data, so all ranks
        // freeze and thaw together.
        if self.cfg.failure_detection
            && (times.iter().any(|&x| x < 0.0)
                || self
                    .active
                    .members()
                    .iter()
                    .any(|&m| self.silent_streak[m] > 0))
        {
            return;
        }
        match self.mode {
            Mode::Stable => {
                let exhausted = self
                    .cfg
                    .max_redistributions
                    .is_some_and(|k| self.redist_count >= k);
                let changed = !exhausted
                    && self
                        .active
                        .members()
                        .iter()
                        .any(|&m| loads[m] != self.last_loads[m]);
                if changed || self.rebalance_requested {
                    self.rebalance_requested = false;
                    assert!(
                        matches!(self.dist, Distribution::Block { .. }),
                        "adaptive rebalancing requires a block distribution"
                    );
                    self.note(RuntimeEvent::LoadChangeDetected {
                        cycle: self.cycle,
                        loads: loads.to_vec(),
                    });
                    // Time my currently owned rows through the grace
                    // period.
                    let rel = self.active.rel_unchecked();
                    let mine = self.dist.rows_of(rel);
                    let (lo, count) = (mine.first().unwrap_or(0), mine.len());
                    self.timer = Some(RowTimer::new(lo, count, self.t.proc_tick_seconds()));
                    self.mode = Mode::Grace {
                        left: self.cfg.grace_period,
                    };
                } else {
                    if self.cfg.allow_rejoin {
                        self.maybe_rejoin(loads, alive, arrays, report);
                    }
                    if report.rejoined.is_none() && self.seed < self.wsize {
                        self.maybe_begin_arrival(online, alive);
                    }
                }
            }
            Mode::Grace { left } => {
                if let Some(t) = self.timer.as_mut() {
                    t.end_cycle();
                }
                if left > 1 {
                    self.mode = Mode::Grace { left: left - 1 };
                } else {
                    let traced = obs::enabled();
                    if traced {
                        obs::span_begin("runtime", "finish_grace", self.t.now_ns());
                    }
                    self.finish_grace(loads, arrays, report);
                    if traced {
                        obs::span_end(self.t.now_ns());
                    }
                }
            }
            Mode::PostRedist { left } => {
                if self.post_skip > 0 {
                    // The pipeline lag means the first blobs of the
                    // window still carry pre-redistribution cycles.
                    self.post_skip -= 1;
                    return;
                }
                for (i, &t) in times.iter().enumerate() {
                    self.post_accum[i] += t;
                }
                self.post_count += 1;
                if left > 1 {
                    self.mode = Mode::PostRedist { left: left - 1 };
                } else {
                    let traced = obs::enabled();
                    if traced {
                        obs::span_begin("runtime", "drop_eval", self.t.now_ns());
                    }
                    self.finish_post_redist(loads, arrays, report);
                    if traced {
                        obs::span_end(self.t.now_ns());
                    }
                    self.post_accum.iter_mut().for_each(|x| *x = 0.0);
                    self.post_count = 0;
                }
            }
            Mode::ArrivalGrace { node, left } => {
                if let Some(t) = self.timer.as_mut() {
                    t.end_cycle();
                }
                if !online[node - self.seed] || !alive[node] {
                    // The newcomer vanished mid-window: abandon the
                    // evaluation (a fresh window starts if it returns).
                    self.timer = None;
                    self.post_accum.iter_mut().for_each(|x| *x = 0.0);
                    self.post_count = 0;
                    self.mode = Mode::Stable;
                    return;
                }
                for (i, &t) in times.iter().enumerate() {
                    self.post_accum[i] += t;
                }
                self.post_count += 1;
                if left > 1 {
                    self.mode = Mode::ArrivalGrace {
                        node,
                        left: left - 1,
                    };
                } else {
                    let traced = obs::enabled();
                    if traced {
                        obs::span_begin("runtime", "arrival_eval", self.t.now_ns());
                    }
                    self.finish_arrival_eval(node, loads, arrays, report);
                    if traced {
                        obs::span_end(self.t.now_ns());
                    }
                    self.post_accum.iter_mut().for_each(|x| *x = 0.0);
                    self.post_count = 0;
                }
            }
        }
    }

    /// End of the grace period: build global row weights, balance,
    /// redistribute if worthwhile.
    fn finish_grace(
        &mut self,
        loads: &[u32],
        arrays: &mut [&mut dyn RedistArray],
        report: &mut CycleReport,
    ) {
        let timer = self.timer.take().expect("grace without timer");
        let mode = timer.mode().expect("grace period saw no cycles");
        self.note(RuntimeEvent::GraceComplete {
            cycle: self.cycle,
            mode,
        });

        // Assemble the global per-row weight vector: every active rank
        // contributes its contiguous block, in relative-rank (= row)
        // order.
        let pieces = self.t.allgatherv(&self.active, &timer.weights());
        let mut weights: Vec<f64> = Vec::with_capacity(self.nrows);
        for p in &pieces {
            weights.extend_from_slice(p);
        }
        assert_eq!(weights.len(), self.nrows, "weight gather incomplete");
        self.row_weights = Some(weights);

        let traced = obs::enabled();
        if traced {
            obs::span_begin("runtime", "balance", self.t.now_ns());
        }
        let new_dist = self.balance(loads);
        let moved = self.moved_fraction(&new_dist);
        if traced {
            // The prediction the audit report checks against reality: the
            // balancer's own model of post-balance imbalance.
            obs::span_end_args(
                self.t.now_ns(),
                vec![
                    ("cycle".to_string(), Json::UInt(self.cycle)),
                    ("moved_fraction".to_string(), Json::Num(moved)),
                    (
                        "predicted_imbalance".to_string(),
                        Json::Num(self.predicted_imbalance(&new_dist, loads)),
                    ),
                ],
            );
        }
        if moved > self.cfg.rebalance_threshold {
            let oc = self.redistribute_in_place(&new_dist, arrays);
            self.note(RuntimeEvent::Redistributed {
                cycle: self.cycle,
                seconds: oc.seconds,
                rows_moved: oc.rows_moved,
                counts: new_dist.counts(),
            });
            report.redistributed = true;
            self.post_skip = CTRL_LAG as u32 + 1;
            self.mode = Mode::PostRedist {
                left: self.cfg.post_redist_period,
            };
        } else {
            self.note(RuntimeEvent::RedistributionSkipped {
                cycle: self.cycle,
                moved_fraction: moved,
            });
            self.mode = Mode::Stable;
        }
        self.last_loads = loads.to_vec();
    }

    /// End of the post-redistribution window: the node-removal decision
    /// (§4.4).
    fn finish_post_redist(
        &mut self,
        loads: &[u32],
        arrays: &mut [&mut dyn RedistArray],
        report: &mut CycleReport,
    ) {
        self.mode = Mode::Stable;
        let n = self.active.size();
        let avg: Vec<f64> = self.post_accum[..n]
            .iter()
            .map(|&s| s / f64::from(self.post_count.max(1)))
            .collect();
        let measured_max = avg.iter().cloned().fold(0.0, f64::max);

        let loaded: Vec<usize> = self
            .active
            .members()
            .iter()
            .copied()
            .filter(|&m| loads[m] > 0)
            .collect();
        let unloaded: Vec<usize> = self
            .active
            .members()
            .iter()
            .copied()
            .filter(|&m| loads[m] == 0)
            .collect();
        if loaded.is_empty() || unloaded.is_empty() {
            return;
        }

        // Predicted cycle time of the unloaded-only configuration:
        // balanced compute plus the measured communication baseline.
        let weights = self.row_weights.as_deref().unwrap_or(&[]);
        let total_work: f64 = weights.iter().sum();
        let comm_baseline = self.comm_baseline(&avg, loads, weights);
        let pred = predict_cycle_time(
            total_work,
            &unloaded
                .iter()
                .map(|&m| NodeLoad::unloaded(self.cfg.speed_of(m)))
                .collect::<Vec<_>>(),
            &self.comm_model(),
            comm_baseline,
        );
        let drop = match self.cfg.drop_policy {
            DropPolicy::Never | DropPolicy::Logical => false,
            DropPolicy::Always => true,
            DropPolicy::Auto => pred * self.cfg.drop_margin < measured_max,
        };
        self.note(RuntimeEvent::DropEvaluated {
            cycle: self.cycle,
            predicted_unloaded: pred,
            measured_max,
            margin: self.cfg.drop_margin,
            loaded: loaded.clone(),
            dropped: drop,
        });
        if !drop {
            return;
        }

        // Physically remove the loaded nodes (§4.4): new group, new
        // distribution, full redistribution, relative ranks reassigned by
        // construction of the new group.
        let pre_removed = self.removed_nodes();
        let was_root = self.active.rel() == Some(0);
        let old_group = self.active.clone();
        let old_dist = self.dist.clone();
        let new_group = Group::new(unloaded.clone(), self.wrank);
        let node_loads: Vec<NodeLoad> = unloaded
            .iter()
            .map(|&m| NodeLoad::unloaded(self.cfg.speed_of(m)))
            .collect();
        let w = self.effective_weights();
        let new_dist = match self.cfg.balancer {
            BalancerKind::RelativePower => relative_power(&w, &node_loads, 0),
            BalancerKind::SuccessiveBalancing => successive_balance_with_floor(
                &w,
                &node_loads,
                &self.comm_model_for(new_group.size()),
                0,
                self.cfg.balance_floor,
            ),
        };
        let oc = redist::execute_cached(
            self.t,
            self.wrank,
            self.sched_cache.get_mut(),
            &old_group,
            &old_dist,
            &new_group,
            &new_dist,
            &self.accesses,
            arrays,
        );
        self.redist_seconds_total += oc.seconds;
        self.note(RuntimeEvent::NodesDropped {
            cycle: self.cycle,
            nodes: loaded.clone(),
        });
        report.dropped = loaded;
        self.known_members = unloaded.clone();
        self.known_counts = new_dist.counts();
        self.dist = new_dist;
        self.is_removed = !new_group.contains(self.wrank);
        self.active = new_group;
        self.last_loads = loads.to_vec();
        self.post_accum = vec![0.0; self.wsize];
        self.clear_streak = vec![0; self.wsize];
        self.reset_ctrl_pipeline();

        // The pre-drop root owes this cycle's statuses even if it just
        // removed itself.
        if was_root {
            self.send_statuses(&pre_removed, loads);
        }
    }

    /// Rejoin check (extension): a removed node with a clear load streak
    /// is re-admitted.
    fn maybe_rejoin(
        &mut self,
        loads: &[u32],
        alive: &[bool],
        arrays: &mut [&mut dyn RedistArray],
        report: &mut CycleReport,
    ) {
        // Only seed-world ranks rejoin through the clear-streak path;
        // non-seed ranks (pending or previously admitted arrivals) go
        // through the expansion decision instead. A dead node's monitor
        // reads unloaded, so its clear streak builds — the liveness
        // flags (and the permanent `dead` bits) keep it out.
        let candidate = self.removed_nodes().into_iter().find(|&n| {
            n < self.seed
                && alive[n]
                && !self.dead[n]
                && self.clear_streak[n] >= self.cfg.rejoin_after_cycles
        });
        let Some(node) = candidate else { return };

        let pre_removed = self.removed_nodes();
        let was_root = self.active.rel() == Some(0);
        let mut members: Vec<usize> = self.active.members().to_vec();
        members.push(node);
        members.sort_unstable();
        let old_group = self.active.clone();
        let old_dist = self.dist.clone();
        let new_group = Group::new(members.clone(), self.wrank);
        let node_loads: Vec<NodeLoad> = members
            .iter()
            .map(|&m| self.node_load(m, loads[m]))
            .collect();
        let w = self.effective_weights();
        let new_dist = match self.cfg.balancer {
            BalancerKind::RelativePower => relative_power(&w, &node_loads, 0),
            BalancerKind::SuccessiveBalancing => successive_balance_with_floor(
                &w,
                &node_loads,
                &self.comm_model_for(new_group.size()),
                0,
                self.cfg.balance_floor,
            ),
        };

        // Reset only the readmitted node's streak — the other removed
        // nodes keep theirs, so several nodes clearing together rejoin on
        // consecutive eligible cycles instead of each restarting a full
        // streak. Done before the statuses go out: the tail ships the
        // post-reset streak vector, keeping the rejoiner's replica exact.
        self.clear_streak[node] = 0;

        // Statuses first: the rejoining rank must learn its membership
        // before the transfers reach it (the root sends them this cycle).
        self.known_members = members;
        self.known_counts = new_dist.counts();
        if was_root {
            self.send_statuses(&pre_removed, loads);
        }
        let oc = redist::execute_cached(
            self.t,
            self.wrank,
            self.sched_cache.get_mut(),
            &old_group,
            &old_dist,
            &new_group,
            &new_dist,
            &self.accesses,
            arrays,
        );
        self.redist_seconds_total += oc.seconds;
        self.note(RuntimeEvent::NodeRejoined {
            cycle: self.cycle,
            node,
        });
        report.rejoined = Some(node);
        self.dist = new_dist;
        self.active = new_group;
        self.last_loads = loads.to_vec();
        self.reset_ctrl_pipeline();
    }

    /// Arrival check (malleability): when a non-seed rank's node is
    /// online and not in the computation, open an arrival grace window
    /// to re-measure row weights and cycle times before the expansion
    /// decision. Gated to every `arrival_retry_cycles`-th cycle — a
    /// deterministic retry schedule, identical on every rank, so a
    /// rejected newcomer is reconsidered without per-node state.
    fn maybe_begin_arrival(&mut self, online: &[bool], alive: &[bool]) {
        if !self
            .cycle
            .is_multiple_of(u64::from(self.cfg.arrival_retry_cycles))
        {
            return;
        }
        let candidate = (self.seed..self.wsize).find(|&n| {
            online[n - self.seed] && alive[n] && !self.dead[n] && !self.active.contains(n)
        });
        let Some(node) = candidate else { return };
        self.note(RuntimeEvent::NodeArrived {
            cycle: self.cycle,
            node,
        });
        // Time my currently owned rows through the window, exactly like
        // an ordinary grace period.
        let rel = self.active.rel_unchecked();
        let mine = self.dist.rows_of(rel);
        let (lo, count) = (mine.first().unwrap_or(0), mine.len());
        self.timer = Some(RowTimer::new(lo, count, self.t.proc_tick_seconds()));
        self.post_accum.iter_mut().for_each(|x| *x = 0.0);
        self.post_count = 0;
        self.mode = Mode::ArrivalGrace {
            node,
            left: self.cfg.grace_period,
        };
    }

    /// End of an arrival grace window: the expansion decision, symmetric
    /// to the §4.4 removal rule. Admit the newcomer only when the
    /// predicted cycle time with it beats the measured one by the margin
    /// AND the per-cycle saving amortizes the redistribution cost over
    /// the configured horizon.
    fn finish_arrival_eval(
        &mut self,
        node: usize,
        loads: &[u32],
        arrays: &mut [&mut dyn RedistArray],
        report: &mut CycleReport,
    ) {
        self.mode = Mode::Stable;
        let timer = self.timer.take().expect("arrival grace without timer");
        let mode = timer.mode().expect("arrival grace saw no cycles");
        self.note(RuntimeEvent::GraceComplete {
            cycle: self.cycle,
            mode,
        });

        // Fresh global row weights, exactly as in `finish_grace`.
        let pieces = self.t.allgatherv(&self.active, &timer.weights());
        let mut weights: Vec<f64> = Vec::with_capacity(self.nrows);
        for p in &pieces {
            weights.extend_from_slice(p);
        }
        assert_eq!(weights.len(), self.nrows, "weight gather incomplete");
        self.row_weights = Some(weights);

        let n = self.active.size();
        let avg: Vec<f64> = self.post_accum[..n]
            .iter()
            .map(|&s| s / f64::from(self.post_count.max(1)))
            .collect();
        let measured_max = avg.iter().cloned().fold(0.0, f64::max);

        let mut members: Vec<usize> = self.active.members().to_vec();
        members.push(node);
        members.sort_unstable();
        let node_loads: Vec<NodeLoad> = members
            .iter()
            .map(|&m| self.node_load(m, loads[m]))
            .collect();
        let w = self.effective_weights();
        let total_work: f64 = w.iter().sum();
        let comm_baseline = self.comm_baseline(&avg, loads, &w);
        let pred_with = predict_cycle_time(
            total_work,
            &node_loads,
            &self.comm_model_for(members.len()),
            comm_baseline,
        );
        let new_dist = match self.cfg.balancer {
            BalancerKind::RelativePower => relative_power(&w, &node_loads, 0),
            BalancerKind::SuccessiveBalancing => successive_balance_with_floor(
                &w,
                &node_loads,
                &self.comm_model_for(members.len()),
                0,
                self.cfg.balance_floor,
            ),
        };
        let new_rel = members
            .iter()
            .position(|&m| m == node)
            .expect("candidate in members");
        let new_rows = new_dist.rows_of(new_rel).len();
        let cost = new_rows as f64 * self.cfg.redist_seconds_per_row;
        let benefit = measured_max - pred_with;
        let admitted = pred_with * self.cfg.expand_margin < measured_max
            && (cost <= 0.0 || benefit * f64::from(self.cfg.expand_horizon_cycles) >= cost);
        self.note(RuntimeEvent::ExpandEvaluated {
            cycle: self.cycle,
            node,
            predicted_with: pred_with,
            measured_max,
            redist_cost: cost,
            margin: self.cfg.expand_margin,
            horizon_cycles: self.cfg.expand_horizon_cycles,
            admitted,
        });
        if !admitted {
            // A rejected evaluation leaves `last_loads` alone so a
            // pending load change is still detected next cycle.
            return;
        }

        // Expansion: symmetric to the rejoin path. Statuses first (the
        // newcomer must learn its membership before the transfers reach
        // it), then the same redistribution on every rank with the
        // newcomer as a pure receiver.
        let pre_removed = self.removed_nodes();
        let was_root = self.active.rel() == Some(0);
        let old_group = self.active.clone();
        let old_dist = self.dist.clone();
        let new_group = Group::new(members.clone(), self.wrank);
        self.clear_streak[node] = 0;
        self.known_members = members;
        self.known_counts = new_dist.counts();
        if was_root {
            self.send_statuses(&pre_removed, loads);
        }
        let oc = redist::execute_cached(
            self.t,
            self.wrank,
            self.sched_cache.get_mut(),
            &old_group,
            &old_dist,
            &new_group,
            &new_dist,
            &self.accesses,
            arrays,
        );
        self.redist_seconds_total += oc.seconds;
        self.note(RuntimeEvent::NodeAdmitted {
            cycle: self.cycle,
            node,
            rows: new_rows,
        });
        report.admitted = Some(node);
        self.dist = new_dist;
        self.active = new_group;
        self.last_loads = loads.to_vec();
        self.reset_ctrl_pipeline();
    }

    // ---------------- crash recovery (fail-stop path) --------------------

    /// Refreshes the buddy checkpoint over the current active group,
    /// stamping the application progress the snapshot encodes.
    fn refresh_ckpt(&mut self, arrays: &mut [&mut dyn RedistArray]) {
        self.ckpt.refresh(
            self.t,
            self.wrank,
            &self.active,
            &self.dist,
            arrays,
            self.app_progress,
            Some(self.cfg.peer_timeout_seconds),
        );
        self.cycles_since_ckpt = 0;
    }

    /// A confirmed death: every survivor rolls its own rows back to the
    /// checkpoint, the dead node's ring buddy materializes its mirror
    /// and stands in for it in the recovery redistribution, the group
    /// shrinks, and the application is told to rewind its loop to the
    /// checkpointed step ([`Self::take_rollback`]). All decisions here
    /// are pure functions of broadcast data, so every survivor executes
    /// the identical recovery.
    fn recover_from_death(
        &mut self,
        dead_node: usize,
        loads: &[u32],
        arrays: &mut [&mut dyn RedistArray],
        report: &mut CycleReport,
    ) {
        let traced = obs::enabled();
        if traced {
            obs::span_begin("runtime", "crash_recovery", self.t.now_ns());
        }
        let pre_removed = self.removed_nodes();
        let was_root = self.active.rel() == Some(0);
        let old_group = self.active.clone();
        let dead_rel = old_group
            .rel_of(dead_node)
            .expect("confirmed node must be active");
        // The ring buddy: the dead node's successor holds its mirror.
        let holder = old_group.world_rank((dead_rel + 1) % old_group.size());
        let survivors: Vec<usize> = old_group
            .members()
            .iter()
            .copied()
            .filter(|&m| m != dead_node)
            .collect();

        // Which generation is restorable is the holder's mirror stamp:
        // a refresh that ran after the (still-masked) death kept the
        // holder's mirror one generation behind everyone's latest own
        // snapshot. Only the holder knows, so it broadcasts the stamp and
        // every survivor rolls back to that generation.
        let rb = if self.wrank == holder {
            assert_eq!(
                self.ckpt.holds_mirror_of(),
                Some(dead_node),
                "holder's mirror is not of the dead node (unrecoverable)"
            );
            let rb = self
                .ckpt
                .mirror_app_cycle()
                .expect("holder without a mirror");
            for &s in &survivors {
                if s != holder {
                    self.t
                        .send_bytes(s, TAG_CKPT_META, rb.to_le_bytes().to_vec());
                }
            }
            rb
        } else {
            let bytes = self.t.recv_bytes(holder, TAG_CKPT_META);
            u64::from_le_bytes(bytes.try_into().expect("an app-cycle stamp"))
        };

        // Roll back to that generation: my own rows from my snapshot, the
        // dead node's rows from its buddy's mirror. The generation's
        // membership and distribution are what the recovery
        // redistribution moves *from*.
        let (gen_members, old_dist) = self.ckpt.restore_generation(rb, arrays);
        assert_eq!(
            gen_members,
            old_group.members(),
            "membership changed across the stale-mirror window (unrecoverable)"
        );
        if self.wrank == holder {
            self.ckpt.materialize_mirror(arrays);
        }
        // Identical on every survivor (the holder's actual count equals
        // this by the refresh invariant).
        let restored_rows = old_dist.rows_of(dead_rel).len() * arrays.len();
        let new_group = Group::new(survivors.clone(), self.wrank);
        let node_loads: Vec<NodeLoad> = survivors
            .iter()
            .map(|&m| self.node_load(m, loads[m]))
            .collect();
        let w = self.effective_weights();
        let new_dist = match self.cfg.balancer {
            BalancerKind::RelativePower => relative_power(&w, &node_loads, 0),
            BalancerKind::SuccessiveBalancing => successive_balance_with_floor(
                &w,
                &node_loads,
                &self.comm_model_for(new_group.size()),
                0,
                self.cfg.balance_floor,
            ),
        };
        let oc = redist::execute_recovery(
            self.t,
            self.wrank,
            &old_group,
            &old_dist,
            &new_group,
            &new_dist,
            &self.accesses,
            arrays,
            dead_node,
            holder,
        );
        self.redist_seconds_total += oc.seconds;
        self.sched_cache.get_mut().invalidate();

        self.dead[dead_node] = true;
        self.silent_streak[dead_node] = 0;
        self.known_members = survivors;
        self.known_counts = new_dist.counts();
        self.dist = new_dist;
        self.is_removed = !new_group.contains(self.wrank);
        self.active = new_group;
        self.last_loads = loads.to_vec();
        self.post_accum = vec![0.0; self.wsize];
        self.post_count = 0;
        self.clear_streak = vec![0; self.wsize];
        self.timer = None;
        self.mode = Mode::Stable;
        self.reset_ctrl_pipeline();

        // Rewind the application: progress returns to the restored
        // generation's step; the survivors replay the lost steps from
        // restored data.
        self.app_progress = rb;
        self.rollback_to = Some(rb);
        self.note(RuntimeEvent::NodeRecovered {
            cycle: self.cycle,
            node: dead_node,
            rollback_to: self.app_progress,
            restored_rows,
            holder,
        });
        report.recovered = Some(dead_node);

        // Fresh checkpoints over the surviving group — the old mirrors
        // reference the pre-crash membership and distribution.
        self.refresh_ckpt(arrays);
        if was_root {
            self.send_statuses(&pre_removed, loads);
        }
        if traced {
            obs::span_end_args(
                self.t.now_ns(),
                vec![
                    ("cycle".to_string(), Json::UInt(self.cycle)),
                    ("dead".to_string(), Json::UInt(dead_node as u64)),
                    ("holder".to_string(), Json::UInt(holder as u64)),
                    ("rollback_to".to_string(), Json::UInt(self.app_progress)),
                ],
            );
        }
    }

    /// Permanent withdrawal of an isolated rank: its control receives
    /// went silent for the full confirmation window, so from its
    /// perspective the rest of the computation is gone (it is
    /// partitioned, or the root died — out of scope). It stops
    /// participating rather than blocking forever; the survivors confirm
    /// it dead through the same silence and recover without it.
    fn self_evict(&mut self) {
        if obs::enabled() {
            obs::instant(
                "runtime",
                "self-evict",
                self.t.now_ns(),
                vec![("cycle".to_string(), Json::UInt(self.cycle))],
            );
        }
        self.evicted = true;
        self.is_removed = true;
    }

    /// After a crash recovery the application must rewind its outer loop:
    /// returns the step index to resume from (= completed steps at the
    /// checkpoint), once per recovery. The canonical loop:
    ///
    /// ```text
    /// let mut step = 0;
    /// while step < steps {
    ///     rt.begin_cycle(); /* compute step `step` */ rt.end_cycle(..);
    ///     step = match rt.take_rollback() { Some(back) => back as usize,
    ///                                       None => step + 1 };
    /// }
    /// ```
    pub fn take_rollback(&mut self) -> Option<u64> {
        self.rollback_to.take()
    }

    /// The pending rollback step, without consuming it.
    pub fn rolled_back_to(&self) -> Option<u64> {
        self.rollback_to
    }

    /// Did this rank withdraw after concluding it was isolated?
    pub fn is_evicted(&self) -> bool {
        self.evicted
    }

    /// World nodes confirmed dead by the failure detector.
    pub fn dead_nodes(&self) -> Vec<usize> {
        (0..self.wsize).filter(|&n| self.dead[n]).collect()
    }

    /// Refresh generation of the buddy checkpoint (0 = none taken).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.ckpt.epoch()
    }

    // ---------------- helpers -------------------------------------------

    /// Load descriptor for world rank `m`: monitor reading plus the
    /// configured per-node relative speed (heterogeneous clusters).
    fn node_load(&self, m: usize, ncp: u32) -> NodeLoad {
        NodeLoad {
            ncp,
            speed: self.cfg.speed_of(m),
        }
    }

    fn effective_weights(&self) -> Vec<f64> {
        match &self.row_weights {
            Some(w) if w.iter().sum::<f64>() > 0.0 => w.clone(),
            _ => vec![1.0; self.nrows],
        }
    }

    fn comm_model(&self) -> CommModel {
        self.comm_model_for(self.active.size())
    }

    fn comm_model_for(&self, n_active: usize) -> CommModel {
        let recvs: f64 = self
            .phases
            .iter()
            .map(|p| p.pattern.blocking_recvs(n_active))
            .sum();
        CommModel {
            blocking_recvs_per_cycle: recvs,
            quantum: self.cfg.quantum_seconds,
            wait_factor: self.cfg.wait_factor,
        }
    }

    fn balance(&self, loads: &[u32]) -> Distribution {
        let node_loads: Vec<NodeLoad> = self
            .active
            .members()
            .iter()
            .map(|&m| self.node_load(m, loads[m]))
            .collect();
        let w = self.effective_weights();
        let min_rows = if self.cfg.drop_policy == DropPolicy::Logical {
            self.cfg.min_rows_logical
        } else {
            0
        };
        match self.cfg.balancer {
            BalancerKind::RelativePower => relative_power(&w, &node_loads, min_rows),
            BalancerKind::SuccessiveBalancing => successive_balance_with_floor(
                &w,
                &node_loads,
                &self.comm_model(),
                min_rows,
                self.cfg.balance_floor,
            ),
        }
    }

    /// Predicted max/mean cycle-time imbalance of a candidate distribution
    /// under the balancer's own model: each active node's time is its
    /// assigned effective weight scaled by `ncp + 1` (the same
    /// [`NodeLoad`] availability the balancer optimized, at unit speed).
    fn predicted_imbalance(&self, dist: &Distribution, loads: &[u32]) -> f64 {
        let weights = self.effective_weights();
        let per: Vec<f64> = self
            .active
            .members()
            .iter()
            .enumerate()
            .map(|(rel, &m)| {
                let mine: f64 = dist.rows_of(rel).iter().map(|r| weights[r]).sum();
                mine * f64::from(loads[m] + 1) / self.cfg.speed_of(m)
            })
            .collect();
        let max = per.iter().cloned().fold(0.0, f64::max);
        let mean = per.iter().sum::<f64>() / per.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Fraction of rows that change owner between the current and a
    /// candidate distribution.
    fn moved_fraction(&self, new: &Distribution) -> f64 {
        let moved: usize = self
            .dist
            .transfers_to(new)
            .iter()
            .filter(|(s, d, _)| s != d)
            .map(|(_, _, rs)| rs.len())
            .sum();
        moved as f64 / self.nrows as f64
    }

    /// Communication baseline: the least "cycle minus modeled compute"
    /// across active nodes (the node waiting least on stragglers).
    fn comm_baseline(&self, avg_times: &[f64], loads: &[u32], weights: &[f64]) -> f64 {
        let mut best = f64::INFINITY;
        for (rel, &m) in self.active.members().iter().enumerate() {
            let mine: f64 = self.dist.rows_of(rel).iter().map(|r| weights[r]).sum();
            let compute = mine * f64::from(loads[m] + 1) / self.cfg.speed_of(m);
            let extra = avg_times[rel] - compute;
            if extra < best {
                best = extra;
            }
        }
        best.max(0.0)
    }

    fn redistribute_in_place(
        &mut self,
        new_dist: &Distribution,
        arrays: &mut [&mut dyn RedistArray],
    ) -> RedistOutcome {
        let oc = redist::execute_cached(
            self.t,
            self.wrank,
            self.sched_cache.get_mut(),
            &self.active,
            &self.dist,
            &self.active,
            new_dist,
            &self.accesses,
            arrays,
        );
        self.redist_seconds_total += oc.seconds;
        self.redist_count += 1;
        self.dist = new_dist.clone();
        self.known_counts = new_dist.counts();
        oc
    }

    /// Starts a fresh control-pipeline epoch after a membership change:
    /// old in-flight samples and blobs carry a stale tag and are never
    /// consumed.
    fn reset_ctrl_pipeline(&mut self) {
        self.ctrl_epoch += 1;
        self.ctrl_sent = 0;
        self.self_samples.clear();
    }

    // ---------------- removed-rank path ----------------------------------

    /// Encodes the post-cycle status: membership and distribution counts,
    /// plus (for a rank that is rejoining) the load vector and row
    /// weights it needs to resynchronize its replicated state.
    fn status_payload(&self, for_member: bool, loads: &[u32]) -> Vec<u8> {
        let mut v: Vec<u64> = Vec::with_capacity(3 + self.known_members.len() * 2);
        v.push(self.cycle);
        v.push(self.known_members.len() as u64);
        v.extend(self.known_members.iter().map(|&m| m as u64));
        v.extend(self.known_counts.iter().map(|&c| c as u64));
        v.push(self.ctrl_epoch);
        let mut bytes = to_bytes(&v);
        if for_member {
            // Tail order: loads[wsize] ++ clear_streak[wsize] ++
            // weights[nrows]. Shipping the streaks keeps the joiner's
            // rejoin bookkeeping replicated — without them, a readmitted
            // rank would disagree with the actives about which other
            // removed node rejoins next.
            let mut tail: Vec<f64> = loads.iter().map(|&l| f64::from(l)).collect();
            tail.extend(self.clear_streak.iter().map(|&s| f64::from(s)));
            tail.extend(self.effective_weights());
            bytes.extend_from_slice(&to_bytes(&tail));
        }
        bytes
    }

    fn send_statuses(&self, removed: &[usize], loads: &[u32]) {
        for &n in removed {
            let for_member = self.known_members.contains(&n);
            self.t
                .send_bytes(n, TAG_STATUS, self.status_payload(for_member, loads));
        }
    }

    fn removed_end_cycle(&mut self, arrays: &mut [&mut dyn RedistArray], report: &mut CycleReport) {
        let root = self.known_members[0];
        let bytes = if self.cfg.failure_detection {
            // Same self-eviction rule as the active blob receive: retry
            // on a bare timeout (the root legitimately drifts while
            // confirming a death), withdraw for good only on death
            // evidence — the root's monitor unreadable from here.
            let got = loop {
                match self
                    .t
                    .recv_bytes_timeout(root, TAG_STATUS, self.cfg.peer_timeout_seconds)
                {
                    Ok(b) => break Some(b),
                    Err(_) if self.t.dmpi_ps(root) == 0 => break None,
                    Err(_) => continue,
                }
            };
            match got {
                Some(b) => b,
                None => {
                    self.self_evict();
                    return;
                }
            }
        } else {
            self.t.recv_bytes(root, TAG_STATUS)
        };
        let header_len = {
            let nm = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
            8 * (3 + 2 * nm)
        };
        let v: Vec<u64> = from_bytes(&bytes[..header_len]);
        let nm = v[1] as usize;
        let members: Vec<usize> = v[2..2 + nm].iter().map(|&m| m as usize).collect();
        let counts: Vec<usize> = v[2 + nm..2 + 2 * nm].iter().map(|&c| c as usize).collect();
        // Track the control epoch so a rejoin resumes with aligned tags
        // (the rejoin branch bumps it once, like the actives do).
        self.ctrl_epoch = v[2 + 2 * nm];

        if members.contains(&self.wrank) {
            // Resynchronize the replicated decision state from the tail
            // the root appended for us: the load vector and row weights
            // the actives balanced against.
            let tail: Vec<f64> = from_bytes(&bytes[header_len..]);
            assert_eq!(
                tail.len(),
                2 * self.wsize + self.nrows,
                "malformed rejoin status"
            );
            self.last_loads = tail[..self.wsize].iter().map(|&x| x as u32).collect();
            self.clear_streak = tail[self.wsize..2 * self.wsize]
                .iter()
                .map(|&x| x as u32)
                .collect();
            self.row_weights = Some(tail[2 * self.wsize..].to_vec());
            self.mode = Mode::Stable;

            // Rejoin: participate in the redistribution the actives are
            // running right now, as a receiver.
            let old_group = Group::new(self.known_members.clone(), self.wrank);
            let old_dist = Distribution::block_from_counts(&self.known_counts);
            let new_group = Group::new(members.clone(), self.wrank);
            let new_dist = Distribution::block_from_counts(&counts);
            let oc = redist::execute_cached(
                self.t,
                self.wrank,
                self.sched_cache.get_mut(),
                &old_group,
                &old_dist,
                &new_group,
                &new_dist,
                &self.accesses,
                arrays,
            );
            self.redist_seconds_total += oc.seconds;
            self.is_removed = false;
            self.active = new_group;
            self.dist = new_dist;
            self.reset_ctrl_pipeline();
            if self.wrank >= self.seed {
                let rel = self.active.rel().expect("joiner is in the new group");
                self.note(RuntimeEvent::NodeAdmitted {
                    cycle: self.cycle,
                    node: self.wrank,
                    rows: self.dist.rows_of(rel).len(),
                });
                report.admitted = Some(self.wrank);
            } else {
                self.note(RuntimeEvent::NodeRejoined {
                    cycle: self.cycle,
                    node: self.wrank,
                });
                report.rejoined = Some(self.wrank);
            }
        }
        self.known_members = members;
        self.known_counts = counts;
    }

    /// Refreshes the DRSD ghost rows of `array` from their current
    /// owners — the per-cycle boundary exchange of a stencil code,
    /// expressed through the registered access descriptors so it stays
    /// correct across redistributions, empty blocks, and node removal.
    /// Must be called by every active rank in the same cycle; removed
    /// ranks no-op.
    pub fn ghost_exchange(&self, array: ArrayId, arr: &mut dyn RedistArray) {
        if self.is_removed {
            return;
        }
        assert!(
            self.active.rel().is_some(),
            "ghost_exchange on a non-member rank"
        );
        let sched = self.steady_schedule();
        let tag = TAG_GEX + array as u64;
        for (dst, from_me) in &sched.ghost_sends[array] {
            let payload = arr.pack_rows(from_me, false);
            self.t.send_bytes(*dst, tag, payload);
        }
        for (src, from_src) in &sched.ghost_recvs[array] {
            if self.cfg.failure_detection {
                // A dead neighbor must not hang the exchange — but a
                // merely *slow* neighbor must not corrupt it either: its
                // payload is coming, and abandoning it would leave this
                // and (because the message stays queued) every later
                // exchange one cycle stale. So a timeout alone only
                // re-arms the wait; the exchange gives the ghost rows up
                // as stale *only* on the same evidence the detector
                // treats as death — the peer's monitor reading dead. The
                // detector then confirms within cycles and recovery rolls
                // everything back past the stale reads.
                let payload = loop {
                    match self
                        .t
                        .recv_bytes_timeout(*src, tag, self.cfg.peer_timeout_seconds)
                    {
                        Ok(p) => break Some(p),
                        Err(_) if self.t.dmpi_ps(*src) == 0 => break None,
                        Err(_) => continue,
                    }
                };
                match payload {
                    Some(p) => arr.unpack_rows(from_src, &p),
                    None => {
                        if obs::enabled() {
                            obs::instant(
                                "runtime",
                                "ghost-timeout",
                                self.t.now_ns(),
                                vec![("src".to_string(), Json::UInt(*src as u64))],
                            );
                        }
                    }
                }
            } else {
                let payload = self.t.recv_bytes(*src, tag);
                arr.unpack_rows(from_src, &payload);
            }
        }
    }

    // ---------------- removed-aware global operations (§4.4) -------------

    /// A global sum-allreduce in which removed ranks participate only in
    /// the *send-out*: actives reduce among themselves, then the active
    /// root forwards the result to every removed rank. All world ranks
    /// must call this the same number of times.
    pub fn allreduce_sum(&self, data: &[f64]) -> Vec<f64> {
        if self.evicted {
            // An isolated rank has no group to reduce over; its results
            // are no longer part of the surviving computation.
            return vec![0.0; data.len()];
        }
        if self.is_removed {
            let root = self.known_members[0];
            return from_bytes(&self.t.recv_bytes(root, TAG_GLOBAL));
        }
        let r = self.t.allreduce_sum_f64(&self.active, data);
        if self.active.rel() == Some(0) {
            for n in self.removed_nodes() {
                self.t.send_bytes(n, TAG_GLOBAL, to_bytes(&r));
            }
        }
        r
    }

    /// Max-allreduce with the same removed-aware semantics.
    pub fn allreduce_max(&self, data: &[f64]) -> Vec<f64> {
        if self.evicted {
            return vec![0.0; data.len()];
        }
        if self.is_removed {
            let root = self.known_members[0];
            return from_bytes(&self.t.recv_bytes(root, TAG_GLOBAL));
        }
        let r = self.t.allreduce_max_f64(&self.active, data);
        if self.active.rel() == Some(0) {
            for n in self.removed_nodes() {
                self.t.send_bytes(n, TAG_GLOBAL, to_bytes(&r));
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::drsd::Drsd;
    use dynmpi_comm::{run_threads, ThreadTransport, Transport};
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;

    /// Thread transport with test-controlled `dmpi_ps` readings, so the
    /// adaptation paths can be exercised without the simulator.
    struct FakeLoad<'x> {
        inner: &'x ThreadTransport,
        loads: Arc<Vec<AtomicU32>>,
    }

    impl Transport for FakeLoad<'_> {
        fn rank(&self) -> usize {
            self.inner.rank()
        }
        fn size(&self) -> usize {
            self.inner.size()
        }
        fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) {
            self.inner.send_bytes(dst, tag, payload);
        }
        fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8> {
            self.inner.recv_bytes(src, tag)
        }
        fn recv_bytes_any(&self, tag: u64) -> (usize, Vec<u8>) {
            self.inner.recv_bytes_any(tag)
        }
        fn wtime(&self) -> f64 {
            self.inner.wtime()
        }
    }

    impl HostMeters for FakeLoad<'_> {
        fn dmpi_ps(&self, r: usize) -> u32 {
            self.loads[r].load(Ordering::Relaxed) + 1
        }
        fn proc_cpu_seconds(&self) -> f64 {
            self.inner.wtime()
        }
        fn proc_tick_seconds(&self) -> f64 {
            0.0
        }
    }

    /// Like [`FakeLoad`] but with test-controlled node-online flags, for
    /// the arrival (malleability) paths.
    struct FakeArrival<'x> {
        inner: &'x ThreadTransport,
        loads: Arc<Vec<AtomicU32>>,
        online: Arc<Vec<AtomicBool>>,
    }

    impl Transport for FakeArrival<'_> {
        fn rank(&self) -> usize {
            self.inner.rank()
        }
        fn size(&self) -> usize {
            self.inner.size()
        }
        fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) {
            self.inner.send_bytes(dst, tag, payload);
        }
        fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8> {
            self.inner.recv_bytes(src, tag)
        }
        fn recv_bytes_any(&self, tag: u64) -> (usize, Vec<u8>) {
            self.inner.recv_bytes_any(tag)
        }
        fn wtime(&self) -> f64 {
            self.inner.wtime()
        }
    }

    impl HostMeters for FakeArrival<'_> {
        fn dmpi_ps(&self, r: usize) -> u32 {
            self.loads[r].load(Ordering::Relaxed) + 1
        }
        fn node_online(&self, r: usize) -> bool {
            self.online[r].load(Ordering::Relaxed)
        }
        fn proc_cpu_seconds(&self) -> f64 {
            self.inner.wtime()
        }
        fn proc_tick_seconds(&self) -> f64 {
            0.0
        }
    }

    fn fill_pattern(i: usize, j: usize) -> f64 {
        (i * 1000 + j) as f64
    }

    /// Drives `cycles` phase cycles of a trivial halo app and returns the
    /// runtime for inspection.
    fn drive<'x, T: HostMeters>(
        t: &'x T,
        nrows: usize,
        cfg: DynMpiConfig,
        cycles: usize,
        mut on_cycle: impl FnMut(u64, &mut DynMpi<'x, T>),
    ) -> (DynMpi<'x, T>, DenseMatrix<f64>) {
        let mut rt = DynMpi::init(t, nrows, cfg);
        let a = rt.register_dense("A", nrows);
        let ph = rt.init_phase(0, nrows, CommPattern::NearestNeighbor);
        rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::with_halo(1));
        let mut m = DenseMatrix::<f64>::new(nrows, 4);
        {
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            rt.setup(&mut arrays);
        }
        m.fill_rows(&rt.local_rows(a), fill_pattern);
        for c in 0..cycles {
            rt.begin_cycle();
            rt.charge_rows(ph, |_| 10.0);
            on_cycle(c as u64, &mut rt);
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            rt.end_cycle(&mut arrays);
        }
        (rt, m)
    }

    fn check_owned(rt: &DynMpi<'_, impl HostMeters>, m: &DenseMatrix<f64>, a: ArrayId) {
        for i in rt.local_rows(a).iter() {
            for j in 0..4 {
                assert_eq!(m.row(i)[j], fill_pattern(i, j), "row {i} col {j}");
            }
        }
    }

    #[test]
    fn stable_run_never_redistributes() {
        let outs = run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad { inner: tt, loads };
            let (rt, m) = drive(&t, 30, DynMpiConfig::default(), 8, |_, _| {});
            check_owned(&rt, &m, 0);
            (rt.events().len(), rt.local_cycle_times().len())
        });
        for (ev, ct) in outs {
            assert_eq!(ev, 0);
            assert_eq!(ct, 8);
        }
    }

    #[test]
    fn load_change_triggers_grace_and_redistribution() {
        let outs = run_threads(4, |tt| {
            let loads = Arc::new((0..4).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let cfg = DynMpiConfig {
                drop_policy: DropPolicy::Never,
                ..Default::default()
            };
            let (rt, m) = drive(&t, 64, cfg, 20, |c, _| {
                if c == 2 {
                    loads[1].store(1, Ordering::Relaxed);
                }
            });
            check_owned(&rt, &m, 0);
            let kinds: Vec<&str> = rt.events().iter().map(|e| e.kind()).collect();
            (kinds.join(","), rt.distribution().counts())
        });
        for (kinds, counts) in &outs {
            assert!(
                kinds.starts_with("load-change,grace-complete,redistributed"),
                "{kinds}"
            );
            // The loaded node (rank 1) must end up with fewer rows.
            assert!(counts[1] < counts[0], "counts: {counts:?}");
            assert_eq!(counts.iter().sum::<usize>(), 64);
        }
        // All ranks agree on the distribution.
        assert!(outs.windows(2).all(|w| w[0].1 == w[1].1));
    }

    #[test]
    fn forced_drop_removes_loaded_node_and_preserves_data() {
        let outs = run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let cfg = DynMpiConfig {
                drop_policy: DropPolicy::Always,
                grace_period: 2,
                post_redist_period: 2,
                ..Default::default()
            };
            let (rt, m) = drive(&t, 30, cfg, 16, |c, _| {
                if c == 1 {
                    loads[2].store(2, Ordering::Relaxed);
                }
            });
            if rt.participating() {
                check_owned(&rt, &m, 0);
            }
            (
                rt.participating(),
                rt.num_active(),
                rt.my_rows(0).len(),
                rt.active_members().to_vec(),
            )
        });
        assert!(outs[0].0 && outs[1].0 && !outs[2].0, "{outs:?}");
        for (_, na, _, members) in &outs {
            assert_eq!(*na, 2);
            assert_eq!(members, &vec![0, 1]);
        }
        assert_eq!(outs[0].2 + outs[1].2, 30, "survivors own everything");
        assert_eq!(outs[2].2, 0);
    }

    #[test]
    fn logical_drop_keeps_node_with_min_share() {
        let outs = run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let cfg = DynMpiConfig {
                drop_policy: DropPolicy::Logical,
                min_rows_logical: 2,
                grace_period: 2,
                post_redist_period: 2,
                // A huge penalty model zeroes the loaded node's natural share.
                wait_factor: 50.0,
                ..Default::default()
            };
            let (rt, _m) = drive(&t, 30, cfg, 14, |c, _| {
                if c == 1 {
                    loads[0].store(3, Ordering::Relaxed);
                }
            });
            (rt.participating(), rt.distribution().counts())
        });
        for (p, counts) in &outs {
            assert!(*p, "logical drop keeps everyone participating");
            assert_eq!(
                counts[0], 2,
                "loaded node keeps the floor share: {counts:?}"
            );
        }
    }

    #[test]
    fn auto_drop_respects_prediction() {
        // Tiny work + heavy load ⇒ prediction favors dropping.
        let outs = run_threads(2, |tt| {
            let loads = Arc::new((0..2).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let cfg = DynMpiConfig {
                drop_policy: DropPolicy::Auto,
                grace_period: 2,
                post_redist_period: 3,
                ..Default::default()
            };
            let (rt, _m) = drive(&t, 20, cfg, 16, |c, _| {
                if c == 1 {
                    loads[1].store(3, Ordering::Relaxed);
                }
            });
            let evaluated = rt
                .events()
                .iter()
                .any(|e| matches!(e, RuntimeEvent::DropEvaluated { .. }));
            (evaluated, rt.num_active())
        });
        for (evaluated, _) in &outs {
            assert!(*evaluated, "drop decision must be evaluated");
        }
        // Both ranks agree on the outcome, whatever the measured times said.
        assert_eq!(outs[0].1, outs[1].1);
    }

    #[test]
    fn rejoin_extension_readmits_cleared_node() {
        let outs = run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let cfg = DynMpiConfig {
                drop_policy: DropPolicy::Always,
                allow_rejoin: true,
                rejoin_after_cycles: 2,
                grace_period: 2,
                post_redist_period: 2,
                ..Default::default()
            };
            let (rt, m) = drive(&t, 30, cfg, 30, |c, _| {
                if c == 1 {
                    loads[1].store(2, Ordering::Relaxed);
                }
                if c == 12 {
                    loads[1].store(0, Ordering::Relaxed);
                }
            });
            if rt.participating() {
                check_owned(&rt, &m, 0);
            }
            (rt.participating(), rt.num_active(), rt.my_rows(0).len())
        });
        for (p, na, _) in &outs {
            assert!(*p, "node must have rejoined: {outs:?}");
            assert_eq!(*na, 3);
        }
        let total: usize = outs.iter().map(|o| o.2).sum();
        assert_eq!(total, 30);
    }

    /// Regression: two nodes clear their load simultaneously. The first
    /// rejoin used to reset *every* removed node's clear streak, so the
    /// second node silently restarted its full `rejoin_after_cycles`
    /// wait — multi-node rejoin starvation. With the fix, only the
    /// readmitted node's streak is reset and the second node rejoins on
    /// the next eligible cycle (one pipeline warm-up later).
    #[test]
    fn multi_node_rejoin_not_starved() {
        let outs = run_threads(4, |tt| {
            let loads = Arc::new((0..4).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let cfg = DynMpiConfig {
                drop_policy: DropPolicy::Always,
                allow_rejoin: true,
                rejoin_after_cycles: 4,
                grace_period: 2,
                post_redist_period: 2,
                ..Default::default()
            };
            let (rt, m) = drive(&t, 40, cfg, 40, |c, _| {
                if c == 1 {
                    loads[2].store(2, Ordering::Relaxed);
                    loads[3].store(2, Ordering::Relaxed);
                }
                if c == 14 {
                    loads[2].store(0, Ordering::Relaxed);
                    loads[3].store(0, Ordering::Relaxed);
                }
            });
            if rt.participating() {
                check_owned(&rt, &m, 0);
            }
            let rejoin_cycles: Vec<u64> = rt
                .events()
                .iter()
                .filter_map(|e| match e {
                    RuntimeEvent::NodeRejoined { cycle, .. } => Some(*cycle),
                    _ => None,
                })
                .collect();
            (rt.num_active(), rt.my_rows(0).len(), rejoin_cycles)
        });
        for (na, _, _) in &outs {
            assert_eq!(*na, 4, "both nodes must be back: {outs:?}");
        }
        assert_eq!(outs.iter().map(|o| o.1).sum::<usize>(), 40);
        // Rank 0 was never removed, so its log has both rejoins. The
        // second must follow the first within the control-pipeline
        // warm-up (CTRL_LAG cycles frozen + 1 eligible cycle), NOT a
        // full rejoin_after_cycles streak later.
        let cycles = &outs[0].2;
        assert_eq!(cycles.len(), 2, "two distinct rejoins: {cycles:?}");
        let gap = cycles[1] - cycles[0];
        assert!(
            gap <= CTRL_LAG + 1,
            "second rejoin starved: gap {gap} cycles ({cycles:?})"
        );
    }

    /// A rejoin into a heterogeneous cluster balances by configured node
    /// speed: the fast readmitted node ends up with more rows than an
    /// equal-load slow node.
    #[test]
    fn mixed_speed_rejoin_balances_by_speed() {
        let outs = run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let cfg = DynMpiConfig {
                drop_policy: DropPolicy::Always,
                allow_rejoin: true,
                rejoin_after_cycles: 2,
                grace_period: 2,
                post_redist_period: 2,
                node_speeds: vec![1.0, 1.0, 2.0],
                ..Default::default()
            };
            let (rt, m) = drive(&t, 60, cfg, 30, |c, _| {
                if c == 1 {
                    loads[2].store(2, Ordering::Relaxed);
                }
                if c == 12 {
                    loads[2].store(0, Ordering::Relaxed);
                }
            });
            if rt.participating() {
                check_owned(&rt, &m, 0);
            }
            (rt.num_active(), rt.distribution().counts())
        });
        for (na, counts) in &outs {
            assert_eq!(*na, 3, "fast node must have rejoined: {outs:?}");
            assert!(
                counts[2] > counts[0],
                "double-speed node gets the larger share: {counts:?}"
            );
            assert_eq!(counts.iter().sum::<usize>(), 60);
        }
    }

    /// Malleability: a brand-new node beyond the seed world comes online,
    /// is measured through an arrival grace window, passes the expansion
    /// decision, and receives rows.
    #[test]
    fn arrival_admitted_when_beneficial() {
        let outs = run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let online = Arc::new((0..3).map(|r| AtomicBool::new(r < 2)).collect::<Vec<_>>());
            let t = FakeArrival {
                inner: tt,
                loads,
                online: Arc::clone(&online),
            };
            let cfg = DynMpiConfig {
                seed_world: Some(2),
                grace_period: 2,
                arrival_retry_cycles: 1,
                expand_margin: 1e-6, // any measurable cycle time admits
                ..Default::default()
            };
            let (rt, m) = drive(&t, 30, cfg, 20, |c, _| {
                if c == 3 {
                    online[2].store(true, Ordering::Relaxed);
                }
            });
            check_owned(&rt, &m, 0);
            let kinds: Vec<&str> = rt.events().iter().map(|e| e.kind()).collect();
            (
                rt.num_active(),
                rt.my_rows(0).len(),
                rt.participating(),
                kinds.join(","),
            )
        });
        for (na, _, p, _) in &outs {
            assert_eq!(*na, 3, "newcomer must be admitted: {outs:?}");
            assert!(*p, "all three ranks participate after admission");
        }
        assert_eq!(outs.iter().map(|o| o.1).sum::<usize>(), 30);
        assert!(outs[2].1 > 0, "the admitted node received rows: {outs:?}");
        // The seed ranks log the whole decision sequence; the newcomer
        // only learns of its own admission.
        for (r, out) in outs.iter().enumerate().take(2) {
            let kinds = &out.3;
            for k in ["node-arrived", "expand-evaluated", "node-admitted"] {
                assert!(kinds.contains(k), "rank {r} missing {k}: {kinds}");
            }
        }
        assert!(outs[2].3.contains("node-admitted"), "{outs:?}");
    }

    /// The expansion decision is a real gate: with an impossible margin
    /// the arrival is evaluated (on the deterministic retry schedule) but
    /// never admitted, and the seed world keeps all rows.
    #[test]
    fn arrival_rejected_by_margin() {
        let outs = run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let online = Arc::new((0..3).map(|r| AtomicBool::new(r < 2)).collect::<Vec<_>>());
            let t = FakeArrival {
                inner: tt,
                loads,
                online: Arc::clone(&online),
            };
            let cfg = DynMpiConfig {
                seed_world: Some(2),
                grace_period: 2,
                arrival_retry_cycles: 4,
                expand_margin: 1e9, // nothing is a 10⁹× speedup
                ..Default::default()
            };
            let (rt, m) = drive(&t, 30, cfg, 20, |c, _| {
                if c == 3 {
                    online[2].store(true, Ordering::Relaxed);
                }
            });
            if rt.participating() {
                check_owned(&rt, &m, 0);
            }
            let evals: Vec<bool> = rt
                .events()
                .iter()
                .filter_map(|e| match e {
                    RuntimeEvent::ExpandEvaluated { admitted, .. } => Some(*admitted),
                    _ => None,
                })
                .collect();
            (rt.num_active(), rt.my_rows(0).len(), evals)
        });
        for (na, _, _) in &outs {
            assert_eq!(*na, 2, "newcomer must stay out: {outs:?}");
        }
        assert_eq!(outs[0].1 + outs[1].1, 30, "seed ranks keep all rows");
        assert_eq!(outs[2].1, 0);
        assert!(!outs[0].2.is_empty(), "decision must have been evaluated");
        assert!(
            outs[0].2.iter().all(|&a| !a),
            "no evaluation may admit: {outs:?}"
        );
    }

    #[test]
    fn removed_rank_allreduce_gets_result() {
        let outs = run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let cfg = DynMpiConfig {
                drop_policy: DropPolicy::Always,
                grace_period: 1,
                post_redist_period: 1,
                ..Default::default()
            };
            let mut rt = DynMpi::init(&t, 12, cfg);
            let a = rt.register_dense("A", 12);
            let ph = rt.init_phase(0, 12, CommPattern::Global);
            rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::iter_space());
            let mut m = DenseMatrix::<f64>::new(12, 1);
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                rt.setup(&mut arrays);
            }
            m.fill_rows(&rt.local_rows(a), |i, _| i as f64);
            let mut sums = vec![];
            for c in 0..10 {
                if c == 1 {
                    loads[2].store(1, Ordering::Relaxed);
                }
                rt.begin_cycle();
                // Per-cycle global reduction (CG-style): every world rank
                // calls it, removed or not.
                let part: f64 = rt.my_rows(ph).iter().map(|i| i as f64).sum();
                sums.push(rt.allreduce_sum(&[part])[0]);
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                rt.end_cycle(&mut arrays);
            }
            sums
        });
        let expect: f64 = (0..12).map(|i| i as f64).sum();
        for sums in &outs {
            for (c, s) in sums.iter().enumerate() {
                assert!((s - expect).abs() < 1e-9, "cycle {c}: {s} vs {expect}");
            }
        }
    }

    #[test]
    fn request_rebalance_without_load_change() {
        let outs = run_threads(2, |tt| {
            let loads = Arc::new((0..2).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad { inner: tt, loads };
            let (rt, _m) = drive(&t, 16, DynMpiConfig::default(), 12, |c, rt| {
                if c == 2 {
                    rt.request_rebalance();
                }
            });
            rt.events()
                .iter()
                .map(|e| e.kind())
                .collect::<Vec<_>>()
                .join(",")
        });
        for kinds in &outs {
            assert!(kinds.contains("load-change"), "{kinds}");
            assert!(
                kinds.contains("redist-skipped") || kinds.contains("redistributed"),
                "{kinds}"
            );
        }
    }

    #[test]
    fn no_adapt_ignores_load_changes() {
        let outs = run_threads(2, |tt| {
            let loads = Arc::new((0..2).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad {
                inner: tt,
                loads: Arc::clone(&loads),
            };
            let (rt, _m) = drive(&t, 16, DynMpiConfig::no_adapt(), 10, |c, _| {
                if c == 2 {
                    loads[0].store(5, Ordering::Relaxed);
                }
            });
            (rt.events().len(), rt.distribution().counts())
        });
        for (ev, counts) in &outs {
            assert_eq!(*ev, 0);
            assert_eq!(counts, &vec![8, 8]);
        }
    }

    #[test]
    fn queries_reflect_registration() {
        run_threads(2, |tt| {
            let loads = Arc::new((0..2).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad { inner: tt, loads };
            let mut rt = DynMpi::init(&t, 10, DynMpiConfig::default());
            let a = rt.register_dense("A", 10);
            let ph = rt.init_phase(1, 9, CommPattern::NearestNeighbor);
            rt.add_access(ph, a, AccessMode::Read, Drsd::with_halo(1));
            assert!(rt.participating());
            assert_eq!(rt.num_active(), 2);
            assert_eq!(rt.rel_rank(), Some(t.rank()));
            let (lo, hi) = rt.my_range(ph).unwrap();
            if t.rank() == 0 {
                assert_eq!((lo, hi), (1, 4)); // rows 0..5 ∩ [1,9) = 1..=4
            } else {
                assert_eq!((lo, hi), (5, 8));
            }
        });
    }

    #[test]
    fn ghost_exchange_refreshes_halo() {
        run_threads(3, |tt| {
            let loads = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad { inner: tt, loads };
            let mut rt = DynMpi::init(&t, 9, DynMpiConfig::default());
            let a = rt.register_dense("A", 9);
            let ph = rt.init_phase(0, 9, CommPattern::NearestNeighbor);
            rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::with_halo(1));
            let mut m = DenseMatrix::<f64>::new(9, 1);
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                rt.setup(&mut arrays);
            }
            // Write a rank-specific value into owned rows, then exchange.
            for i in rt.my_rows(ph).iter() {
                m.row_mut(i)[0] = (100 + i) as f64;
            }
            rt.ghost_exchange(a, &mut m);
            // Ghost rows now carry their owners' values.
            for i in rt.local_rows(a).iter() {
                assert_eq!(m.row(i)[0], (100 + i) as f64, "row {i}");
            }
        });
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_array_name_rejected() {
        run_threads(1, |tt| {
            let loads = Arc::new(vec![AtomicU32::new(0)]);
            let t = FakeLoad { inner: tt, loads };
            let mut rt = DynMpi::init(&t, 4, DynMpiConfig::default());
            rt.register_dense("A", 4);
            rt.register_dense("A", 4);
        });
    }

    /// Like [`FakeLoad`] but with fail-stop switches for the detector and
    /// recovery paths. A `downed` node's monitor reads raw 0, its own
    /// sends are dropped, and timeout-guarded receives touching it (from
    /// it, or issued by it) fail immediately — the thread-world analogue
    /// of a dead NIC. A `stalled` node's timeout-guarded receives *from*
    /// it fail too, but its monitor stays alive: the overloaded-not-dead
    /// case the detector must never confirm.
    struct FakeCrash<'x> {
        inner: &'x ThreadTransport,
        loads: Arc<Vec<AtomicU32>>,
        downed: Arc<Vec<AtomicBool>>,
        stalled: Arc<Vec<AtomicBool>>,
    }

    impl FakeCrash<'_> {
        fn down(&self, r: usize) -> bool {
            self.downed[r].load(Ordering::SeqCst)
        }
    }

    impl Transport for FakeCrash<'_> {
        fn rank(&self) -> usize {
            self.inner.rank()
        }
        fn size(&self) -> usize {
            self.inner.size()
        }
        fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) {
            if !self.down(self.rank()) {
                self.inner.send_bytes(dst, tag, payload);
            }
        }
        fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8> {
            self.inner.recv_bytes(src, tag)
        }
        fn recv_bytes_any(&self, tag: u64) -> (usize, Vec<u8>) {
            self.inner.recv_bytes_any(tag)
        }
        fn recv_bytes_timeout(
            &self,
            src: usize,
            tag: u64,
            _timeout_seconds: f64,
        ) -> Result<Vec<u8>, dynmpi_comm::PeerTimeout> {
            // Poll until either a matching message is delivered or the
            // peer's fault switch flips — the fault switch plays the role
            // of the elapsed wall-clock timeout, so tests are free of
            // real-time races: a receive from a faulty peer *always*
            // times out, a receive from a healthy one *never* does.
            loop {
                if self.down(src)
                    || self.down(self.rank())
                    || self.stalled[src].load(Ordering::SeqCst)
                {
                    return Err(dynmpi_comm::PeerTimeout {
                        src: Some(src),
                        tag,
                    });
                }
                if let Some(p) = self.inner.try_recv_bytes(src, tag) {
                    return Ok(p);
                }
                std::thread::yield_now();
            }
        }
        fn wtime(&self) -> f64 {
            self.inner.wtime()
        }
    }

    impl HostMeters for FakeCrash<'_> {
        fn dmpi_ps(&self, r: usize) -> u32 {
            // A remote reading cannot cross a dead NIC on *either* end:
            // the target's (crashed node reads silent everywhere) or the
            // reader's (a partitioned rank sees everyone else as silent).
            if self.down(r) || (self.down(self.rank()) && r != self.rank()) {
                0
            } else {
                self.loads[r].load(Ordering::Relaxed) + 1
            }
        }
        fn proc_cpu_seconds(&self) -> f64 {
            self.inner.wtime()
        }
        fn proc_tick_seconds(&self) -> f64 {
            0.0
        }
    }

    fn crash_cfg() -> DynMpiConfig {
        DynMpiConfig {
            failure_detection: true,
            failure_confirm_cycles: 2,
            checkpoint_interval_cycles: 3,
            drop_policy: DropPolicy::Never,
            ..Default::default()
        }
    }

    /// One set of fault switches shared by every rank thread (a fault is
    /// a property of the cluster, not of one rank's view of it).
    #[allow(clippy::type_complexity)]
    fn fault_switches(
        n: usize,
    ) -> (
        Arc<Vec<AtomicU32>>,
        Arc<Vec<AtomicBool>>,
        Arc<Vec<AtomicBool>>,
    ) {
        (
            Arc::new((0..n).map(|_| AtomicU32::new(0)).collect()),
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
        )
    }

    /// The canonical rollback loop: computes `steps` increments on col 0
    /// of every owned row, crashing rank `crash_rank` before its step
    /// `crash_step` when given. Returns (runtime, matrix, rollbacks).
    #[allow(clippy::type_complexity)]
    fn drive_with_rollback<'x>(
        t: &'x FakeCrash<'x>,
        nrows: usize,
        steps: u64,
        crash: Option<(usize, u64)>,
    ) -> Option<(DynMpi<'x, FakeCrash<'x>>, DenseMatrix<f64>, Vec<u64>)> {
        let mut rt = DynMpi::init(t, nrows, crash_cfg());
        let a = rt.register_dense("A", nrows);
        let ph = rt.init_phase(0, nrows, CommPattern::NearestNeighbor);
        rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::with_halo(1));
        let mut m = DenseMatrix::<f64>::new(nrows, 4);
        {
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            rt.setup(&mut arrays);
        }
        m.fill_rows(&rt.local_rows(a), fill_pattern);
        let mut rollbacks = Vec::new();
        let mut step = 0u64;
        while step < steps {
            if let Some((cr, cs)) = crash {
                if t.rank() == cr && step == cs {
                    // Fail-stop: flip the NIC switch and never speak again.
                    t.downed[cr].store(true, Ordering::SeqCst);
                    return None;
                }
            }
            rt.begin_cycle();
            for i in rt.my_rows(ph).iter() {
                m.row_mut(i)[0] += 1.0;
            }
            rt.charge_rows(ph, |_| 10.0);
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            rt.end_cycle(&mut arrays);
            step = match rt.take_rollback() {
                Some(back) => {
                    rollbacks.push(back);
                    back
                }
                None => step + 1,
            };
        }
        Some((rt, m, rollbacks))
    }

    /// Tentpole end-to-end at the unit level: a silent node is suspected,
    /// confirmed after the sustain window, its rows are restored from the
    /// buddy mirror, the survivors roll back and replay — and every row
    /// ends with exactly `steps` increments, as in a crash-free run.
    #[test]
    fn crash_is_confirmed_and_recovered_from_buddy() {
        let steps = 16u64;
        let (loads, downed, stalled) = fault_switches(4);
        let outs = run_threads(4, move |tt| {
            let t = FakeCrash {
                inner: tt,
                loads: Arc::clone(&loads),
                downed: Arc::clone(&downed),
                stalled: Arc::clone(&stalled),
            };
            let (rt, m, rollbacks) = drive_with_rollback(&t, 40, steps, Some((2, 6)))?;
            // Every surviving row carries the full increment count plus
            // the untouched fill pattern in the other columns.
            for i in rt.my_rows(0).iter() {
                assert_eq!(m.row(i)[0], fill_pattern(i, 0) + steps as f64, "row {i}");
                for j in 1..4 {
                    assert_eq!(m.row(i)[j], fill_pattern(i, j), "row {i} col {j}");
                }
            }
            let kinds: Vec<&str> = rt.events().iter().map(|e| e.kind()).collect();
            Some((
                rt.active_members().to_vec(),
                rt.dead_nodes(),
                rollbacks,
                rt.my_rows(0).len(),
                kinds.contains(&"node-suspected") && kinds.contains(&"node-confirmed-dead"),
                kinds.contains(&"node-recovered"),
            ))
        });
        assert!(outs[2].is_none(), "rank 2 crashed");
        let survivors: Vec<_> = outs.into_iter().flatten().collect();
        assert_eq!(survivors.len(), 3);
        let mut owned = 0;
        for (members, dead, rollbacks, mine, detected, recovered) in &survivors {
            assert_eq!(members, &vec![0, 1, 3]);
            assert_eq!(dead, &vec![2]);
            assert_eq!(rollbacks.len(), 1, "exactly one rollback");
            assert!(*detected && *recovered);
            owned += mine;
        }
        // Survivors own the whole space, dead rows restored from the buddy.
        assert_eq!(owned, 40);
        // All survivors rolled back to the same checkpointed step.
        assert!(survivors.windows(2).all(|w| w[0].2 == w[1].2));
    }

    /// Property guard: a node whose control samples time out while its
    /// monitor still answers (pure overload) must never build a suspect
    /// streak, let alone be confirmed dead.
    #[test]
    fn overloaded_stall_is_never_confirmed() {
        let steps = 14u64;
        let (loads, downed, stalled) = fault_switches(3);
        let outs = run_threads(3, move |tt| {
            let stalled = Arc::clone(&stalled);
            let t = FakeCrash {
                inner: tt,
                loads: Arc::clone(&loads),
                downed: Arc::clone(&downed),
                stalled: Arc::clone(&stalled),
            };
            let mut rt = DynMpi::init(&t, 30, crash_cfg());
            let a = rt.register_dense("A", 30);
            let ph = rt.init_phase(0, 30, CommPattern::NearestNeighbor);
            rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::with_halo(1));
            let mut m = DenseMatrix::<f64>::new(30, 4);
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                rt.setup(&mut arrays);
            }
            m.fill_rows(&rt.local_rows(a), fill_pattern);
            for step in 0..steps {
                // Rank 1's samples stall for far longer than the sustain
                // window, then clear.
                if t.rank() == 1 && step == 3 {
                    stalled[1].store(true, Ordering::SeqCst);
                }
                if t.rank() == 1 && step == 10 {
                    stalled[1].store(false, Ordering::SeqCst);
                }
                rt.begin_cycle();
                rt.charge_rows(ph, |_| 10.0);
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                rt.end_cycle(&mut arrays);
                assert!(rt.take_rollback().is_none(), "no recovery under overload");
            }
            check_owned(&rt, &m, a);
            let failure_kinds = rt
                .events()
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        RuntimeEvent::NodeSuspected { .. }
                            | RuntimeEvent::NodeConfirmedDead { .. }
                            | RuntimeEvent::NodeRecovered { .. }
                    )
                })
                .count();
            (failure_kinds, rt.num_active(), rt.participating())
        });
        for (failures, na, p) in outs {
            assert_eq!(failures, 0, "stall must never escalate");
            assert_eq!(na, 3);
            assert!(p);
        }
    }

    /// The other side of a partition: the cut-off rank's own control
    /// receives go silent, so after the sustain window it withdraws
    /// permanently instead of blocking forever, while the survivors
    /// confirm it dead and recover its rows.
    #[test]
    fn partitioned_rank_self_evicts_and_survivors_recover() {
        let steps = 16u64;
        let (loads, downed, stalled) = fault_switches(4);
        let outs = run_threads(4, move |tt| {
            let downed = Arc::clone(&downed);
            let t = FakeCrash {
                inner: tt,
                loads: Arc::clone(&loads),
                downed: Arc::clone(&downed),
                stalled: Arc::clone(&stalled),
            };
            let mut rt = DynMpi::init(&t, 40, crash_cfg());
            let a = rt.register_dense("A", 40);
            let ph = rt.init_phase(0, 40, CommPattern::NearestNeighbor);
            rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::with_halo(1));
            let mut m = DenseMatrix::<f64>::new(40, 4);
            {
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                rt.setup(&mut arrays);
            }
            m.fill_rows(&rt.local_rows(a), fill_pattern);
            let mut step = 0u64;
            while step < steps {
                // The partition: rank 1 keeps running, but its NIC dies.
                if t.rank() == 1 && step == 6 {
                    downed[1].store(true, Ordering::SeqCst);
                }
                rt.begin_cycle();
                rt.charge_rows(ph, |_| 10.0);
                let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
                rt.end_cycle(&mut arrays);
                step = match rt.take_rollback() {
                    Some(back) => back,
                    None => step + 1,
                };
            }
            (
                rt.is_evicted(),
                rt.participating(),
                rt.active_members().to_vec(),
                rt.my_rows(0).len(),
            )
        });
        let (evicted, participating, members, mine) = &outs[1];
        assert!(*evicted, "partitioned rank withdraws");
        assert!(!participating);
        assert_eq!(*mine, 0);
        let _ = members;
        let mut owned = 0;
        for (r, (evicted, participating, members, mine)) in outs.iter().enumerate() {
            if r == 1 {
                continue;
            }
            assert!(!evicted && *participating, "rank {r}");
            assert_eq!(members, &vec![0, 2, 3]);
            owned += mine;
        }
        assert_eq!(owned, 40, "survivors own everything");
    }
}
