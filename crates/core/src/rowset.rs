//! Sets of global row indices, kept as sorted disjoint half-open ranges.
//!
//! Row sets are the currency of redistribution: ownership maps, DRSD
//! evaluations, and transfer schedules are all computed with set algebra
//! over row indices.

use std::fmt;
use std::ops::Range;

/// A set of `usize` row indices stored as sorted, disjoint, non-adjacent
/// half-open ranges.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct RowSet {
    ranges: Vec<Range<usize>>,
}

impl RowSet {
    /// The empty set.
    pub fn new() -> Self {
        RowSet::default()
    }

    /// A single contiguous range.
    pub fn from_range(r: Range<usize>) -> Self {
        let mut s = RowSet::new();
        s.insert_range(r);
        s
    }

    /// From arbitrary (possibly unsorted, overlapping) ranges.
    pub fn from_ranges(rs: impl IntoIterator<Item = Range<usize>>) -> Self {
        let mut s = RowSet::new();
        for r in rs {
            s.insert_range(r);
        }
        s
    }

    /// A strided set: `start, start+step, …` up to but excluding `end`.
    /// Built in one pass — the elements are already sorted and (for
    /// `step > 1`) non-adjacent, so each becomes its own range directly
    /// instead of going through `insert_range`'s splice.
    pub fn strided(start: usize, end: usize, step: usize) -> Self {
        assert!(step > 0, "stride must be positive");
        if step == 1 {
            return RowSet::from_range(start..end.max(start));
        }
        RowSet {
            ranges: (start..end).step_by(step).map(|i| i..i + 1).collect(),
        }
    }

    /// Inserts a range, merging as needed.
    pub fn insert_range(&mut self, r: Range<usize>) {
        if r.is_empty() {
            return;
        }
        // Find all ranges overlapping or adjacent to `r` and coalesce.
        let lo = self.ranges.partition_point(|x| x.end < r.start);
        let hi = self.ranges.partition_point(|x| x.start <= r.end);
        let mut start = r.start;
        let mut end = r.end;
        if lo < hi {
            start = start.min(self.ranges[lo].start);
            end = end.max(self.ranges[hi - 1].end);
        }
        self.ranges.splice(lo..hi, std::iter::once(start..end));
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|r| r.len()).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, row: usize) -> bool {
        let i = self.ranges.partition_point(|r| r.end <= row);
        self.ranges.get(i).is_some_and(|r| r.start <= row)
    }

    /// The disjoint ranges, sorted.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Iterates all rows in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranges.iter().flat_map(|r| r.clone())
    }

    /// Smallest member, if any.
    pub fn first(&self) -> Option<usize> {
        self.ranges.first().map(|r| r.start)
    }

    /// Largest member, if any.
    pub fn last(&self) -> Option<usize> {
        self.ranges.last().map(|r| r.end - 1)
    }

    /// Set union.
    pub fn union(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        for r in &other.ranges {
            out.insert_range(r.clone());
        }
        out
    }

    /// Set intersection.
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        let mut out = RowSet::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let a = &self.ranges[i];
            let b = &other.ranges[j];
            let lo = a.start.max(b.start);
            let hi = a.end.min(b.end);
            if lo < hi {
                out.ranges.push(lo..hi);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Set difference `self \ other`.
    pub fn diff(&self, other: &RowSet) -> RowSet {
        let mut out = RowSet::new();
        for a in &self.ranges {
            let mut cur = a.start;
            let end = a.end;
            // Walk other's ranges overlapping [cur, end).
            let mut j = other.ranges.partition_point(|r| r.end <= cur);
            while cur < end {
                match other.ranges.get(j) {
                    Some(b) if b.start < end => {
                        if b.start > cur {
                            out.ranges.push(cur..b.start);
                        }
                        cur = cur.max(b.end);
                        j += 1;
                    }
                    _ => {
                        out.ranges.push(cur..end);
                        cur = end;
                    }
                }
            }
        }
        out
    }

    /// Restricts to `0..limit`.
    pub fn clamp(&self, limit: usize) -> RowSet {
        self.intersect(&RowSet::from_range(0..limit))
    }
}

impl fmt::Debug for RowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowSet[")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}..{}", r.start, r.end)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<usize> for RowSet {
    /// Sort–dedup–coalesce: O(n log n) on arbitrary input instead of the
    /// O(n²) worst case of per-element `insert_range` splicing.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut rows: Vec<usize> = iter.into_iter().collect();
        rows.sort_unstable();
        rows.dedup();
        let mut ranges: Vec<Range<usize>> = Vec::new();
        for i in rows {
            match ranges.last_mut() {
                Some(r) if r.end == i => r.end = i + 1,
                _ => ranges.push(i..i + 1),
            }
        }
        RowSet { ranges }
    }
}

#[cfg(test)]
// Single-range arrays are exactly what `ranges()` assertions compare against.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_merge() {
        let mut s = RowSet::new();
        s.insert_range(5..10);
        s.insert_range(0..3);
        s.insert_range(3..5); // adjacent: merges everything
        assert_eq!(s.ranges(), &[0..10]);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn overlapping_insert() {
        let mut s = RowSet::from_range(0..5);
        s.insert_range(3..8);
        assert_eq!(s.ranges(), &[0..8]);
        s.insert_range(20..25);
        s.insert_range(10..15);
        assert_eq!(s.ranges(), &[0..8, 10..15, 20..25]);
        s.insert_range(7..21);
        assert_eq!(s.ranges(), &[0..25]);
    }

    #[test]
    fn contains_and_iter() {
        let s = RowSet::from_ranges([2..4, 8..10]);
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.contains(9));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 3, 8, 9]);
        assert_eq!(s.first(), Some(2));
        assert_eq!(s.last(), Some(9));
    }

    #[test]
    fn union_intersect_diff() {
        let a = RowSet::from_ranges([0..10, 20..30]);
        let b = RowSet::from_ranges([5..25]);
        assert_eq!(a.union(&b).ranges(), &[0..30]);
        assert_eq!(a.intersect(&b).ranges(), &[5..10, 20..25]);
        assert_eq!(a.diff(&b).ranges(), &[0..5, 25..30]);
        assert_eq!(b.diff(&a).ranges(), &[10..20]);
    }

    #[test]
    fn diff_with_empty() {
        let a = RowSet::from_range(3..7);
        let e = RowSet::new();
        assert_eq!(a.diff(&e), a);
        assert_eq!(e.diff(&a), e);
        assert_eq!(a.intersect(&e), e);
    }

    #[test]
    fn strided_cyclic_pattern() {
        // Cyclic distribution of 10 rows over 3 nodes: node 1 gets 1,4,7.
        let s = RowSet::strided(1, 10, 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
        // Stride 1 collapses to a single range.
        assert_eq!(RowSet::strided(2, 6, 1).ranges(), &[2..6]);
    }

    #[test]
    fn clamp() {
        let s = RowSet::from_ranges([0..4, 6..12]);
        assert_eq!(s.clamp(8).ranges(), &[0..4, 6..8]);
        assert_eq!(s.clamp(0).ranges(), &[] as &[Range<usize>]);
    }

    #[test]
    fn from_iterator_collects() {
        let s: RowSet = [5usize, 1, 2, 9, 3].into_iter().collect();
        assert_eq!(s.ranges(), &[1..4, 5..6, 9..10]);
    }

    /// One-pass constructors must agree with a `BTreeSet` oracle on
    /// random inputs: same members, and ranges that are sorted, disjoint,
    /// non-adjacent, and non-empty (the representation invariant).
    #[test]
    fn one_pass_builders_match_btreeset_oracle() {
        use std::collections::BTreeSet;

        let invariant_holds = |s: &RowSet| {
            s.ranges().iter().all(|r| r.start < r.end)
                && s.ranges().windows(2).all(|w| w[0].end < w[1].start)
        };
        dynmpi_testkit::check("rowset-one-pass-oracle", |rng| {
            // FromIterator on unsorted input with duplicates.
            let n = rng.range_usize(0, 40);
            let rows: Vec<usize> = (0..n).map(|_| rng.range_usize(0, 30)).collect();
            let s: RowSet = rows.iter().copied().collect();
            let oracle: BTreeSet<usize> = rows.into_iter().collect();
            assert_eq!(s.iter().collect::<BTreeSet<_>>(), oracle);
            assert_eq!(s.len(), oracle.len());
            assert!(invariant_holds(&s), "{s:?}");

            // strided against the same oracle.
            let start = rng.range_usize(0, 20);
            let end = rng.range_usize(0, 40);
            let step = rng.range_usize(1, 5);
            let s = RowSet::strided(start, end, step);
            let oracle: BTreeSet<usize> = (start..end.max(start)).step_by(step).collect();
            assert_eq!(s.iter().collect::<BTreeSet<_>>(), oracle);
            assert!(invariant_holds(&s), "{s:?}");
        });
    }

    #[test]
    fn empty_range_noop() {
        let mut s = RowSet::new();
        s.insert_range(5..5);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.first(), None);
    }
}
