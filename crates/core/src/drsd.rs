//! (Deferred) Regular Section Descriptors.
//!
//! RSDs describe an array reference as `start : end : step` (§2.2, after
//! Havlak & Kennedy). *Deferred* RSDs leave the bounds as expressions over
//! the partitioned loop's bounds, evaluated at run time once the loop
//! bounds for a node are known — which is what lets Dyn-MPI know, for any
//! distribution, exactly which rows each node touches and therefore what
//! must move on redistribution (§4.4).

use crate::rowset::RowSet;

/// A bound expression deferred until loop bounds are known.
///
/// Evaluation receives the node's partitioned loop bounds `[lo, hi]`
/// (inclusive, in global row indices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// A fixed global index.
    Const(i64),
    /// `loop start + offset` (e.g. `B[start_iter - 1]` ⇒ `Start(-1)`).
    Start(i64),
    /// `loop end + offset` (e.g. `B[end_iter + 1]` ⇒ `End(1)`).
    End(i64),
}

impl Bound {
    fn eval(self, lo: i64, hi: i64) -> i64 {
        match self {
            Bound::Const(c) => c,
            Bound::Start(off) => lo + off,
            Bound::End(off) => hi + off,
        }
    }
}

/// Access mode of an array reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    Read,
    Write,
    ReadWrite,
}

/// A deferred regular section descriptor over the distributed (first)
/// dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Drsd {
    pub start: Bound,
    pub end: Bound,
    pub step: u32,
}

impl Drsd {
    /// The identity section: exactly the rows the loop iterates
    /// (`A[i]` in the loop body).
    pub fn iter_space() -> Drsd {
        Drsd {
            start: Bound::Start(0),
            end: Bound::End(0),
            step: 1,
        }
    }

    /// The loop rows widened by a halo on each side (`B[i-1] … B[i+1]` ⇒
    /// `with_halo(1)`): the nearest-neighbor read pattern.
    pub fn with_halo(h: i64) -> Drsd {
        Drsd {
            start: Bound::Start(-h),
            end: Bound::End(h),
            step: 1,
        }
    }

    /// An explicit section with constant bounds (whole-array references,
    /// e.g. the gathered vector in CG's mat-vec).
    pub fn fixed(start: i64, end: i64) -> Drsd {
        Drsd {
            start: Bound::Const(start),
            end: Bound::Const(end),
            step: 1,
        }
    }

    /// A strided section.
    pub fn strided(start: Bound, end: Bound, step: u32) -> Drsd {
        assert!(step > 0, "DRSD step must be positive");
        Drsd { start, end, step }
    }

    /// Conservative bounding interval of [`Drsd::eval`] over *any* loop
    /// ranges contained in `[first, last]`: a half-open row interval
    /// guaranteed to contain every row the section can touch for a node
    /// whose owned rows start at `first` and end at `last`. O(1) bound
    /// arithmetic — the redistribution scheduler uses it to skip schedule
    /// pairs whose row sets cannot intersect without materializing any
    /// [`RowSet`].
    ///
    /// Conservativeness: for a sub-range `[rlo, rhi] ⊆ [first, last]`,
    /// every start bound is minimized at `(first, first)` and every end
    /// bound maximized at `(last, last)` (the expressions are monotone in
    /// both loop bounds), so the interval returned here contains
    /// `eval(rlo, rhi, nrows)` — including its clamping behavior — for
    /// every such sub-range.
    pub fn envelope(&self, first: usize, last: usize, nrows: usize) -> Option<(usize, usize)> {
        if last < first {
            return None;
        }
        let s = self.start.eval(first as i64, first as i64);
        let e = self.end.eval(last as i64, last as i64);
        if e < s {
            return None;
        }
        let lo = s.max(0) as usize;
        let hi = ((e.max(0) as usize) + 1).min(nrows);
        (lo < hi).then_some((lo, hi))
    }

    /// Evaluates the descriptor for a node whose partitioned loop covers
    /// global rows `[lo, hi]` inclusive, clamped to `0..nrows`.
    /// An empty loop range (`hi < lo`) yields the empty set.
    pub fn eval(&self, lo: usize, hi: usize, nrows: usize) -> RowSet {
        if hi < lo {
            return RowSet::new();
        }
        let s = self.start.eval(lo as i64, hi as i64);
        let e = self.end.eval(lo as i64, hi as i64);
        if e < s {
            return RowSet::new();
        }
        let s = s.max(0) as usize;
        let e = e.max(0) as usize;
        RowSet::strided(s, (e + 1).min(nrows), self.step as usize).clamp(nrows)
    }
}

/// One array reference in a phase: which array, how it is accessed, and
/// the section it touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayAccess {
    pub array: usize,
    pub mode: AccessMode,
    pub drsd: Drsd,
}

#[cfg(test)]
// Single-range arrays are exactly what `ranges()` assertions compare against.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    #[test]
    fn iter_space_matches_loop() {
        let d = Drsd::iter_space();
        assert_eq!(d.eval(3, 7, 100).ranges(), &[3..8]);
    }

    #[test]
    fn halo_extends_and_clamps() {
        let d = Drsd::with_halo(1);
        assert_eq!(d.eval(3, 7, 100).ranges(), &[2..9]);
        // Clamped at both array edges.
        assert_eq!(d.eval(0, 7, 100).ranges(), &[0..9]);
        assert_eq!(d.eval(90, 99, 100).ranges(), &[89..100]);
    }

    #[test]
    fn fixed_section_ignores_loop() {
        let d = Drsd::fixed(0, 9);
        assert_eq!(d.eval(42, 57, 100).ranges(), &[0..10]);
        // Clamped to the array.
        assert_eq!(d.eval(0, 0, 5).ranges(), &[0..5]);
    }

    #[test]
    fn strided_section() {
        let d = Drsd::strided(Bound::Start(0), Bound::End(0), 2);
        assert_eq!(
            d.eval(0, 8, 100).iter().collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8]
        );
    }

    #[test]
    fn empty_loop_is_empty() {
        let d = Drsd::with_halo(1);
        assert!(d.eval(5, 4, 100).is_empty());
    }

    #[test]
    fn inverted_bounds_are_empty() {
        let d = Drsd {
            start: Bound::Const(10),
            end: Bound::Const(5),
            step: 1,
        };
        assert!(d.eval(0, 99, 100).is_empty());
    }

    #[test]
    fn negative_start_clamps_to_zero() {
        let d = Drsd::with_halo(3);
        assert_eq!(d.eval(0, 2, 100).ranges(), &[0..6]);
    }

    #[test]
    fn envelope_contains_eval_for_every_subrange() {
        dynmpi_testkit::check("drsd-envelope-superset", |rng| {
            let nrows = rng.range_usize(1, 60);
            let bound = |rng: &mut dynmpi_testkit::Rng| match rng.range_u32(0, 3) {
                0 => Bound::Const(rng.range_i64(-5, nrows as i64 + 5)),
                1 => Bound::Start(rng.range_i64(-6, 7)),
                _ => Bound::End(rng.range_i64(-6, 7)),
            };
            let d = Drsd {
                start: bound(rng),
                end: bound(rng),
                step: rng.range_u32(1, 4),
            };
            let first = rng.range_usize(0, nrows);
            let last = rng.range_usize(first, nrows);
            let env = d.envelope(first, last, nrows);
            // Every sub-range's evaluation must land inside the envelope.
            for _ in 0..8 {
                let rlo = rng.range_usize(first, last + 1);
                let rhi = rng.range_usize(rlo, last + 1);
                let rows = d.eval(rlo, rhi, nrows);
                if let Some(row) = rows.first() {
                    let (lo, hi) = env.expect("non-empty eval needs an envelope");
                    assert!(
                        row >= lo && rows.last().unwrap() < hi,
                        "{d:?} {rows:?} vs {env:?}"
                    );
                }
            }
        });
    }
}
