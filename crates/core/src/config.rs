//! Runtime configuration.

/// Which distribution algorithm the runtime uses (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalancerKind {
    /// Proportional to relative power `speed / (1 + ncp)` — the "naive"
    /// baseline the paper attributes to CRAUL-style systems.
    RelativePower,
    /// Successive balancing: relative power corrected by the CPU cost of
    /// communication on loaded nodes (the paper's contribution).
    SuccessiveBalancing,
}

/// What to do with nodes whose participation hurts (§4.4, §2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// Never remove nodes; keep rebalancing over everyone.
    Never,
    /// Decide from the post-redistribution measurement vs. the predicted
    /// unloaded-configuration time (the paper's automatic policy).
    Auto,
    /// Always remove loaded nodes after the post-redistribution grace
    /// period (used by the Figure 6 harness to force the Drop arm).
    Always,
    /// *Logical* dropping: loaded nodes stay in the computation with a
    /// minimum share so ranks remain static (§2.2's alternative).
    Logical,
}

/// Tunables of the Dyn-MPI runtime. Defaults follow the paper.
#[derive(Clone, Debug)]
pub struct DynMpiConfig {
    /// Master switch: with adaptation off the runtime only monitors
    /// (the "no Dyn-MPI" arm of every experiment).
    pub adapt: bool,
    /// Cycles of measurement after a load change before redistributing
    /// (paper default: 5).
    pub grace_period: u32,
    /// Cycles of measurement after a redistribution before the node
    /// removal decision (paper default: 10).
    pub post_redist_period: u32,
    /// Distribution algorithm.
    pub balancer: BalancerKind,
    /// Node removal policy.
    pub drop_policy: DropPolicy,
    /// Minimum rows kept by a logically dropped node.
    pub min_rows_logical: usize,
    /// Redistribute only if the new assignment moves more than this
    /// fraction of all rows (avoids thrashing on measurement noise).
    pub rebalance_threshold: f64,
    /// Re-admit removed nodes when their load clears (future-work
    /// extension; off by default to match the paper).
    pub allow_rejoin: bool,
    /// Consecutive load-free cycles a removed node must show before
    /// rejoin.
    pub rejoin_after_cycles: u32,
    /// Expected scheduler-slice wait per blocking receive per competing
    /// process, as a fraction of the quantum. With the OS wake-up boost
    /// the residual wait is small (default 0.05); refined by the
    /// micro-benchmark calibration of §4.3.
    pub wait_factor: f64,
    /// OS scheduler quantum in seconds, for the communication penalty
    /// model.
    pub quantum_seconds: f64,
    /// Safety margin: drop nodes only if the predicted unloaded
    /// configuration is at least this much faster (1.0 = any
    /// improvement).
    pub drop_margin: f64,
    /// Stop reacting to load changes after this many redistributions
    /// (the Figure 5 "Redist Once" arm). `None` = unlimited.
    pub max_redistributions: Option<u32>,
    /// Successive balancing never assigns a participating node less than
    /// this fraction of its relative-power share — balancing alone must
    /// not idle a node; *removal* (§4.4) is the separate facility for
    /// that.
    pub balance_floor: f64,
    /// World ranks `0..seed_world` start in the computation; ranks at or
    /// beyond it are reserved for *arrivals* — brand-new nodes that come
    /// online mid-run and must be admitted through the expansion decision
    /// before receiving rows. `None` = the whole world is seeded (no
    /// malleability, the paper's model).
    pub seed_world: Option<usize>,
    /// Relative speed of each world rank's node (flops relative to a
    /// reference node), for heterogeneous balancing. Empty = all 1.0.
    pub node_speeds: Vec<f64>,
    /// Admit an arriving node only if the predicted cycle time with it is
    /// at least this much faster than the measured one (1.0 = any
    /// improvement) — the expansion counterpart of `drop_margin`.
    pub expand_margin: f64,
    /// Cycles over which an admission must amortize its redistribution
    /// cost: admit only when `(measured − predicted) × horizon ≥ cost`.
    pub expand_horizon_cycles: u32,
    /// Estimated redistribution cost in seconds per row moved, for the
    /// admission amortization test. 0.0 = treat redistribution as free.
    pub redist_seconds_per_row: f64,
    /// Evaluate pending arrivals every this many cycles (a deterministic
    /// retry gate, so a rejected newcomer is reconsidered as conditions
    /// change without re-measuring every cycle).
    pub arrival_retry_cycles: u32,
    /// Master switch for the fail-stop failure path: timeout-guarded
    /// control receives, the replicated failure detector, buddy
    /// checkpoints and crash recovery. Off by default — classic runs stay
    /// byte-identical with earlier releases (no extra control payload).
    pub failure_detection: bool,
    /// Seconds a control-plane or ghost receive waits before reporting a
    /// peer timeout (the detector's per-cycle silence probe).
    pub peer_timeout_seconds: f64,
    /// Consecutive silent cycles before a Suspect escalates to Confirmed
    /// dead — the detector's sustain rule, mirroring the health monitor's.
    pub failure_confirm_cycles: u32,
    /// Refresh buddy checkpoints every this many cycles *between*
    /// redistributions (they always refresh at setup and on every
    /// redistribution). 0 = piggyback-only refreshes.
    pub checkpoint_interval_cycles: u32,
}

impl Default for DynMpiConfig {
    fn default() -> Self {
        DynMpiConfig {
            adapt: true,
            grace_period: 5,
            post_redist_period: 10,
            balancer: BalancerKind::SuccessiveBalancing,
            drop_policy: DropPolicy::Auto,
            min_rows_logical: 1,
            rebalance_threshold: 0.02,
            allow_rejoin: false,
            rejoin_after_cycles: 3,
            wait_factor: 0.05,
            quantum_seconds: 0.010,
            drop_margin: 1.0,
            max_redistributions: None,
            balance_floor: 0.8,
            seed_world: None,
            node_speeds: Vec::new(),
            expand_margin: 1.0,
            expand_horizon_cycles: 50,
            redist_seconds_per_row: 0.0,
            arrival_retry_cycles: 8,
            failure_detection: false,
            peer_timeout_seconds: 0.5,
            failure_confirm_cycles: 3,
            checkpoint_interval_cycles: 0,
        }
    }
}

impl DynMpiConfig {
    /// The paper's configuration with adaptation disabled entirely.
    pub fn no_adapt() -> Self {
        DynMpiConfig {
            adapt: false,
            ..Default::default()
        }
    }

    /// Validates invariants; called by `DynMpi::init`.
    pub fn validate(&self) {
        assert!(
            self.grace_period >= 1,
            "grace period must be at least 1 cycle"
        );
        assert!(
            self.post_redist_period >= 1,
            "post-redistribution period must be ≥ 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.rebalance_threshold),
            "rebalance threshold must be a fraction"
        );
        assert!(self.wait_factor >= 0.0 && self.quantum_seconds >= 0.0);
        assert!(self.drop_margin > 0.0);
        assert!(
            (0.0..=1.0).contains(&self.balance_floor),
            "balance floor is a fraction"
        );
        if let Some(seed) = self.seed_world {
            assert!(seed >= 1, "seed world must have at least one rank");
        }
        assert!(
            self.node_speeds.iter().all(|&s| s > 0.0),
            "node speeds must be positive"
        );
        assert!(self.expand_margin > 0.0);
        assert!(
            self.expand_horizon_cycles >= 1,
            "expansion horizon must be ≥ 1 cycle"
        );
        assert!(self.redist_seconds_per_row >= 0.0);
        assert!(
            self.arrival_retry_cycles >= 1,
            "arrival retry gate must be ≥ 1 cycle"
        );
        if self.failure_detection {
            assert!(
                self.adapt,
                "failure detection rides on the adaptive control plane"
            );
            assert!(
                self.peer_timeout_seconds > 0.0,
                "peer timeout must be positive when failure detection is on"
            );
            assert!(
                self.failure_confirm_cycles >= 1,
                "failure confirmation must sustain ≥ 1 cycle"
            );
        }
    }

    /// Relative speed of world rank `r`'s node (1.0 when unspecified).
    pub fn speed_of(&self, r: usize) -> f64 {
        self.node_speeds.get(r).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DynMpiConfig::default();
        assert_eq!(c.grace_period, 5);
        assert_eq!(c.post_redist_period, 10);
        assert_eq!(c.balancer, BalancerKind::SuccessiveBalancing);
        assert_eq!(c.drop_policy, DropPolicy::Auto);
        assert!(c.adapt);
        c.validate();
    }

    #[test]
    fn no_adapt_preset() {
        let c = DynMpiConfig::no_adapt();
        assert!(!c.adapt);
        c.validate();
    }

    #[test]
    fn speed_of_defaults_to_unity_beyond_vector() {
        let c = DynMpiConfig {
            node_speeds: vec![1.0, 2.0],
            ..Default::default()
        };
        assert_eq!(c.speed_of(1), 2.0);
        assert_eq!(c.speed_of(5), 1.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_node_speed_rejected() {
        let c = DynMpiConfig {
            node_speeds: vec![1.0, 0.0],
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "retry gate")]
    fn zero_arrival_retry_rejected() {
        let c = DynMpiConfig {
            arrival_retry_cycles: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn failure_detection_off_by_default() {
        let c = DynMpiConfig::default();
        assert!(!c.failure_detection);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "peer timeout")]
    fn zero_peer_timeout_rejected_when_detecting() {
        let c = DynMpiConfig {
            failure_detection: true,
            peer_timeout_seconds: 0.0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "control plane")]
    fn failure_detection_requires_adapt() {
        let c = DynMpiConfig {
            adapt: false,
            failure_detection: true,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sustain")]
    fn zero_confirm_cycles_rejected_when_detecting() {
        let c = DynMpiConfig {
            failure_detection: true,
            failure_confirm_cycles: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "grace period")]
    fn zero_grace_rejected() {
        let c = DynMpiConfig {
            grace_period: 0,
            ..Default::default()
        };
        c.validate();
    }
}
