//! Data-distribution algorithms (§4.3).
//!
//! Given per-row unloaded work weights and per-node load information, pick
//! a variable block distribution.
//!
//! * [`relative_power`] — the traditional method: node `i`'s share of work
//!   is proportional to `speed_i / (1 + ncp_i)`. The paper calls this the
//!   "naive" distribution.
//! * [`successive_balance`] — the paper's method: relative power corrected
//!   by the **CPU cost of communication**. A loaded node that blocks at a
//!   receive re-enters the OS run queue behind its competitors and waits
//!   up to `ncp × quantum` for a slice, so each phase cycle carries a
//!   fixed per-node penalty that pure relative power ignores. Successive
//!   balancing runs rounds that pair loaded nodes against the unloaded
//!   pool, converging on an assignment that equalizes *penalty-inclusive*
//!   completion times.

use crate::dist::Distribution;

/// Per-node load information at balancing time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeLoad {
    /// Competing processes on the node (from `dmpi_ps`).
    pub ncp: u32,
    /// Relative unloaded speed (1.0 for a homogeneous cluster).
    pub speed: f64,
}

impl NodeLoad {
    /// Available fraction of a reference node: `speed / (1 + ncp)`.
    pub fn availability(&self) -> f64 {
        self.speed / f64::from(self.ncp + 1)
    }

    pub fn unloaded(speed: f64) -> Self {
        NodeLoad { ncp: 0, speed }
    }
}

/// Communication-cost model parameters for the penalty term.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommModel {
    /// Blocking receives per phase cycle on one node (from the registered
    /// phase patterns).
    pub blocking_recvs_per_cycle: f64,
    /// OS scheduler quantum, seconds.
    pub quantum: f64,
    /// Expected wait per blocking receive per competing process, as a
    /// fraction of the quantum (0.5 under uniform re-entry; calibrated by
    /// micro-benchmarks).
    pub wait_factor: f64,
}

impl CommModel {
    /// Expected extra wall time per phase cycle on a node with `ncp`
    /// competitors, due to waiting for scheduler slices after receives.
    pub fn penalty(&self, ncp: u32) -> f64 {
        self.blocking_recvs_per_cycle * self.wait_factor * self.quantum * f64::from(ncp)
    }

    /// A model with no communication cost (reduces successive balancing
    /// to relative power — used in tests and ablations).
    pub fn zero() -> Self {
        CommModel {
            blocking_recvs_per_cycle: 0.0,
            quantum: 0.0,
            wait_factor: 0.0,
        }
    }
}

/// Splits `row_weights` into contiguous blocks whose weight sums are
/// proportional to `shares` (non-negative, positive total). Returns the
/// per-node row counts.
pub fn partition_rows(row_weights: &[f64], shares: &[f64], min_rows: usize) -> Vec<usize> {
    let n = shares.len();
    assert!(n > 0, "no nodes");
    let nrows = row_weights.len();
    assert!(min_rows * n <= nrows, "min_rows too large");
    let total_share: f64 = shares.iter().sum();
    assert!(total_share > 0.0, "all shares zero");
    let total_w: f64 = row_weights.iter().sum();
    if total_w <= 0.0 {
        // Degenerate weights: fall back to row counts ∝ shares.
        return Distribution::block_from_weights(nrows, shares, min_rows).counts();
    }

    // Walk rows once, cutting at cumulative-share targets; then enforce
    // the per-node floor by stealing from the largest block.
    let mut counts = vec![0usize; n];
    let mut acc = 0.0;
    let mut node = 0usize;
    let mut target = shares[0] / total_share * total_w;
    for &w in row_weights {
        // Advance to the node whose target covers the running sum; the
        // half-weight offset assigns a boundary row to the side holding
        // more of it.
        while node + 1 < n && acc + w * 0.5 > target {
            node += 1;
            target += shares[node] / total_share * total_w;
        }
        counts[node] += 1;
        acc += w;
    }
    if min_rows > 0 {
        while let Some(deficit) = (0..n).find(|&i| counts[i] < min_rows) {
            let donor = (0..n).max_by_key(|&i| counts[i]).expect("nonempty");
            assert!(counts[donor] > min_rows, "cannot satisfy min_rows");
            counts[donor] -= 1;
            counts[deficit] += 1;
        }
    }
    counts
}

/// The relative-power ("naive") distribution: shares ∝ availability.
pub fn relative_power(row_weights: &[f64], loads: &[NodeLoad], min_rows: usize) -> Distribution {
    let shares: Vec<f64> = loads.iter().map(NodeLoad::availability).collect();
    Distribution::block_from_counts(&partition_rows(row_weights, &shares, min_rows))
}

/// Successive balancing (§4.3): equalizes `work_i / avail_i + penalty_i`
/// across nodes by iterating balancing rounds between the loaded nodes and
/// the unloaded pool, then applies the participation floor
/// (`floor_frac` of each node's relative-power share): balancing alone
/// never idles a node — physical *removal* (§4.4) is the separate
/// facility for that. Pass `floor_frac = 0` for the unfloored optimum.
pub fn successive_balance_with_floor(
    row_weights: &[f64],
    loads: &[NodeLoad],
    comm: &CommModel,
    min_rows: usize,
    floor_frac: f64,
) -> Distribution {
    let n = loads.len();
    assert!(n > 0, "no nodes");
    let avail: Vec<f64> = loads.iter().map(NodeLoad::availability).collect();
    let pen: Vec<f64> = loads.iter().map(|l| comm.penalty(l.ncp)).collect();
    let total_w: f64 = row_weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);

    // Round structure per the paper: start from the naive assignment;
    // each round recomputes the loaded nodes' shares against the pool's
    // completion time, then rebalances the remainder over the unloaded
    // nodes; stop when the unloaded assignment stops changing.
    let mut work: Vec<f64> = {
        let s: f64 = avail.iter().sum();
        avail.iter().map(|a| a / s * total_w).collect()
    };
    let unloaded: Vec<usize> = (0..n).filter(|&i| loads[i].ncp == 0).collect();
    let loaded: Vec<usize> = (0..n).filter(|&i| loads[i].ncp > 0).collect();

    if loaded.is_empty() || unloaded.is_empty() {
        // Nothing to pair against: solve the makespan equalization
        // directly (all-loaded clusters still balance penalties).
        let t = solve_makespan(&avail, &pen, total_w);
        for i in 0..n {
            work[i] = avail[i] * (t - pen[i]).max(0.0);
        }
    } else {
        let pool_avail: f64 = unloaded.iter().map(|&i| avail[i]).sum();
        for _round in 0..64 {
            // Pool completion time under the current assignment.
            let pool_work: f64 = unloaded.iter().map(|&i| work[i]).sum();
            let t_pool = pool_work / pool_avail;
            // Two-node balance of each loaded node against the pool.
            for &i in &loaded {
                work[i] = avail[i] * (t_pool - pen[i]).max(0.0);
            }
            let loaded_work: f64 = loaded.iter().map(|&i| work[i]).sum();
            let remaining = (total_w - loaded_work).max(0.0);
            // Rebalance the remainder over the unloaded pool.
            let mut max_delta: f64 = 0.0;
            for &i in &unloaded {
                let nw = avail[i] / pool_avail * remaining;
                max_delta = max_delta.max((nw - work[i]).abs());
                work[i] = nw;
            }
            if max_delta / total_w < 1e-9 {
                break;
            }
        }
    }

    if floor_frac > 0.0 {
        let a_sum: f64 = avail.iter().sum();
        for i in 0..n {
            let naive = avail[i] / a_sum * total_w;
            work[i] = work[i].max(naive * floor_frac);
        }
    }
    Distribution::block_from_counts(&partition_rows(
        row_weights,
        &shares_or_uniform(&work),
        min_rows,
    ))
}

/// [`successive_balance_with_floor`] with the default 50 % participation
/// floor (matching `DynMpiConfig::default().balance_floor`).
pub fn successive_balance(
    row_weights: &[f64],
    loads: &[NodeLoad],
    comm: &CommModel,
    min_rows: usize,
) -> Distribution {
    successive_balance_with_floor(row_weights, loads, comm, min_rows, 0.5)
}

/// Smallest `T` with `Σ avail_i · max(0, T − pen_i) = W` (water-filling).
fn solve_makespan(avail: &[f64], pen: &[f64], w: f64) -> f64 {
    // A NaN penalty (degenerate availability on a fully loaded node) acts
    // like an infinite one: the node never activates, the water level
    // settles on the healthy nodes. Sanitizing keeps the level-vs-next
    // comparison meaningful; total_cmp keeps the sort panic-free even for
    // unsanitized exotic values.
    let pen: Vec<f64> = pen
        .iter()
        .map(|&p| if p.is_nan() { f64::INFINITY } else { p })
        .collect();
    let mut idx: Vec<usize> = (0..avail.len()).collect();
    idx.sort_by(|&a, &b| pen[a].total_cmp(&pen[b]));
    let mut a_sum = 0.0;
    let mut ap_sum = 0.0;
    let mut t = f64::INFINITY;
    for (k, &i) in idx.iter().enumerate() {
        a_sum += avail[i];
        ap_sum += avail[i] * pen[i];
        let cand = (w + ap_sum) / a_sum;
        let next_pen = idx.get(k + 1).map_or(f64::INFINITY, |&j| pen[j]);
        if cand <= next_pen {
            t = cand;
            break;
        }
    }
    t
}

/// Returns the work shares unchanged, or uniform shares when they sum to
/// nothing (every node fully loaded). Despite the old name ("normalize"),
/// this never rescales — `partition_rows` only cares about relative
/// proportions — it exists solely to keep a degenerate all-zero share
/// vector from producing an empty distribution.
fn shares_or_uniform(work: &[f64]) -> Vec<f64> {
    let s: f64 = work.iter().sum();
    if s <= 0.0 {
        vec![1.0; work.len()]
    } else {
        work.to_vec()
    }
}

/// Predicted per-cycle execution time of a configuration (§4.4): compute
/// balanced over the given nodes plus a measured communication baseline.
/// Used for the node-removal decision, where the unloaded-only
/// configuration "can be predicted with high accuracy".
pub fn predict_cycle_time(
    total_work: f64,
    loads: &[NodeLoad],
    comm: &CommModel,
    comm_baseline: f64,
) -> f64 {
    let avail: Vec<f64> = loads.iter().map(NodeLoad::availability).collect();
    let pen: Vec<f64> = loads.iter().map(|l| comm.penalty(l.ncp)).collect();
    solve_makespan(&avail, &pen, total_work) + comm_baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn partition_uniform_even() {
        let c = partition_rows(&uniform(12), &[1.0, 1.0, 1.0], 0);
        assert_eq!(c, vec![4, 4, 4]);
    }

    #[test]
    fn partition_weighted_shares() {
        let c = partition_rows(&uniform(8), &[2.0, 1.0, 1.0], 0);
        assert_eq!(c.iter().sum::<usize>(), 8);
        assert_eq!(c, vec![4, 2, 2]);
    }

    #[test]
    fn partition_nonuniform_rows() {
        // First 4 rows are 3× heavier; equal shares should cut so weight,
        // not count, balances.
        let mut w = vec![3.0; 4];
        w.extend(vec![1.0; 12]); // total 24, per node 12
        let c = partition_rows(&w, &[1.0, 1.0], 0);
        assert_eq!(c.iter().sum::<usize>(), 16);
        // Node 0 should take 4 heavy rows (12.0); node 1 the 12 light.
        assert_eq!(c, vec![4, 12]);
    }

    #[test]
    fn partition_min_rows() {
        let c = partition_rows(&uniform(10), &[1.0, 0.0], 2);
        assert_eq!(c, vec![8, 2]);
    }

    #[test]
    fn relative_power_shares() {
        // 1 CP on node 0 → availability 0.5 vs 1.0.
        let loads = [NodeLoad { ncp: 1, speed: 1.0 }, NodeLoad::unloaded(1.0)];
        let d = relative_power(&uniform(12), &loads, 0);
        assert_eq!(d.counts(), vec![4, 8]);
    }

    #[test]
    fn successive_balance_zero_comm_equals_relative_power() {
        let loads = [
            NodeLoad { ncp: 1, speed: 1.0 },
            NodeLoad::unloaded(1.0),
            NodeLoad::unloaded(1.0),
        ];
        let sb = successive_balance(&uniform(100), &loads, &CommModel::zero(), 0);
        let rp = relative_power(&uniform(100), &loads, 0);
        assert_eq!(sb.counts(), rp.counts());
    }

    #[test]
    fn successive_balance_gives_loaded_node_less_than_naive() {
        let loads = [
            NodeLoad { ncp: 2, speed: 1.0 },
            NodeLoad::unloaded(1.0),
            NodeLoad::unloaded(1.0),
            NodeLoad::unloaded(1.0),
        ];
        let comm = CommModel {
            blocking_recvs_per_cycle: 2.0,
            quantum: 0.010,
            wait_factor: 0.5,
        };
        // 100 rows of 1 ms each: total 0.1 s of work; the loaded node's
        // penalty (2 recvs × 0.5 × 10 ms × 2 CPs = 20 ms) is substantial.
        let w = vec![0.001; 100];
        let sb = successive_balance(&w, &loads, &comm, 0).counts();
        let rp = relative_power(&w, &loads, 0).counts();
        assert!(
            sb[0] < rp[0],
            "successive balancing must shave the loaded node: {sb:?} vs {rp:?}"
        );
        assert_eq!(sb.iter().sum::<usize>(), 100);
    }

    #[test]
    fn hopeless_node_gets_zero_work() {
        // Penalty alone exceeds the achievable makespan → zero rows.
        let loads = [NodeLoad { ncp: 3, speed: 1.0 }, NodeLoad::unloaded(1.0)];
        let comm = CommModel {
            blocking_recvs_per_cycle: 2.0,
            quantum: 0.010,
            wait_factor: 0.5,
        };
        let w = vec![0.0001; 100]; // 10 ms total work, 30 ms penalty
        let d = successive_balance_with_floor(&w, &loads, &comm, 0, 0.0);
        assert_eq!(d.counts()[0], 0, "{:?}", d.counts());
        // With the participation floor the node keeps a small share.
        let df = successive_balance(&w, &loads, &comm, 0);
        assert!(df.counts()[0] > 0, "{:?}", df.counts());
    }

    #[test]
    fn all_loaded_cluster_still_balances() {
        let loads = [
            NodeLoad { ncp: 1, speed: 1.0 },
            NodeLoad { ncp: 1, speed: 1.0 },
        ];
        let comm = CommModel {
            blocking_recvs_per_cycle: 2.0,
            quantum: 0.010,
            wait_factor: 0.5,
        };
        let d = successive_balance(&uniform(10), &loads, &comm, 0);
        assert_eq!(d.counts(), vec![5, 5]);
    }

    #[test]
    fn heterogeneous_speeds_respected() {
        let loads = [NodeLoad::unloaded(2.0), NodeLoad::unloaded(1.0)];
        let d = successive_balance(&uniform(9), &loads, &CommModel::zero(), 0);
        assert_eq!(d.counts(), vec![6, 3]);
    }

    #[test]
    fn solve_makespan_waterfill() {
        // Two nodes, equal availability; penalties 0 and 0.1; W = 1.
        // T solves 1·T + 1·(T − 0.1) = 1 → T = 0.55.
        let t = solve_makespan(&[1.0, 1.0], &[0.0, 0.1], 1.0);
        assert!((t - 0.55).abs() < 1e-12);
        // If the penalty is huge, node 1 is excluded: T = W / a0 = 1.
        let t = solve_makespan(&[1.0, 1.0], &[0.0, 5.0], 1.0);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_cycle_time_adds_baseline() {
        let loads = [NodeLoad::unloaded(1.0); 2];
        let t = predict_cycle_time(1.0, &loads, &CommModel::zero(), 0.25);
        assert!((t - 0.75).abs() < 1e-12);
    }

    #[test]
    fn makespan_tolerates_nan_penalty() {
        // A degenerate node feeding a NaN penalty must not panic the sort
        // (the old partial_cmp().unwrap()) and must not receive water:
        // the level settles as if the node had infinite penalty.
        let avail = [1.0, 1.0, 1.0];
        let pen = [0.0, 0.0, f64::NAN];
        let t = solve_makespan(&avail, &pen, 4.0);
        assert_eq!(t, 2.0);
    }

    #[test]
    fn makespan_degenerate_penalty_property() {
        // Property: any mix of normal / NaN / ∞ penalties yields a
        // non-NaN level, finite whenever at least one node is healthy.
        let cases: &[&[f64]] = &[
            &[0.0, f64::NAN],
            &[f64::NAN, f64::NAN],
            &[0.1, f64::INFINITY, f64::NAN],
            &[f64::NAN, 0.0, 0.2],
            &[f64::INFINITY, f64::INFINITY],
        ];
        for pen in cases {
            let avail = vec![1.0; pen.len()];
            let t = solve_makespan(&avail, pen, 8.0);
            assert!(!t.is_nan(), "pen {pen:?} → NaN level");
            if pen.iter().any(|p| p.is_finite()) {
                assert!(t.is_finite(), "pen {pen:?} → {t}");
            }
        }
    }

    #[test]
    fn predict_cycle_time_survives_degenerate_comm_model() {
        // An unbounded wait factor makes the zero-ncp penalty NaN
        // (∞ × 0); prediction must degrade to "no finite improvement"
        // rather than panic.
        let comm = CommModel {
            blocking_recvs_per_cycle: 1.0,
            quantum: 0.01,
            wait_factor: f64::INFINITY,
        };
        let loads = [NodeLoad::unloaded(1.0), NodeLoad { ncp: 2, speed: 1.0 }];
        let t = predict_cycle_time(1.0, &loads, &comm, 0.1);
        assert!(!t.is_nan());
    }

    #[test]
    fn work_conservation_property() {
        // Counts always partition the row space exactly.
        let comm = CommModel {
            blocking_recvs_per_cycle: 2.0,
            quantum: 0.01,
            wait_factor: 0.5,
        };
        for nrows in [1usize, 17, 256] {
            for ncp in [0u32, 1, 3] {
                let loads = [
                    NodeLoad { ncp, speed: 1.0 },
                    NodeLoad::unloaded(1.0),
                    NodeLoad::unloaded(0.5),
                ];
                let w: Vec<f64> = (0..nrows).map(|i| 0.0005 + (i % 7) as f64 * 1e-4).collect();
                let d = successive_balance(&w, &loads, &comm, 0);
                assert_eq!(d.counts().iter().sum::<usize>(), nrows);
            }
        }
    }
}
