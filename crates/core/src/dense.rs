//! Dense matrices with the 2-D projection allocation scheme (§4.1.1).
//!
//! An N-dimensional array is projected onto two dimensions: a top-level
//! vector indexed by the distributed (first) dimension, each entry pointing
//! to one *extended row* — the product of the remaining dimensions, stored
//! contiguously. Redistribution then (1) communicates whole extended rows
//! in single messages and (2) reuses the storage of rows that do not move:
//! only the top-level pointer vector is touched.
//!
//! [`ContiguousMatrix`] is the baseline the paper compares against
//! (Figure 3): one flat allocation holding the node's contiguous row
//! range, which must be fully reallocated and shifted whenever the range
//! changes.

use std::any::Any;

use dynmpi_comm::{from_bytes, to_bytes, Pod};

use crate::array::{AllocStats, RedistArray};
use crate::rowset::RowSet;

/// A dense matrix in 2-D projection layout. Rows may be absent (not
/// stored on this node); present rows are either owned or ghost copies —
/// ownership is the runtime's concern, storage is this type's.
pub struct DenseMatrix<P: Pod> {
    nrows: usize,
    row_len: usize,
    rows: Vec<Option<Box<[P]>>>,
    fill: P,
    stats: AllocStats,
}

impl<P: Pod + Default> DenseMatrix<P> {
    /// An `nrows × row_len` matrix with no rows allocated yet.
    pub fn new(nrows: usize, row_len: usize) -> Self {
        assert!(row_len > 0, "extended rows must have at least one element");
        DenseMatrix {
            nrows,
            row_len,
            rows: (0..nrows).map(|_| None).collect(),
            fill: P::default(),
            stats: AllocStats::default(),
        }
    }
}

impl<P: Pod> DenseMatrix<P> {
    /// Total rows in the global matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Elements per extended row.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Is row `i` stored locally?
    pub fn has_row(&self, i: usize) -> bool {
        self.rows[i].is_some()
    }

    /// Allocates storage for `rows` (no-op for rows already present).
    pub fn alloc_rows(&mut self, rows: &RowSet) {
        for i in rows.iter() {
            if self.rows[i].is_none() {
                self.rows[i] = Some(vec![self.fill; self.row_len].into_boxed_slice());
                self.stats.bytes_allocated += (self.row_len * std::mem::size_of::<P>()) as u64;
                self.stats.allocations += 1;
            }
        }
    }

    /// Immutable access to row `i`. Panics if the row is not local —
    /// that is always a distribution bug worth failing loudly on.
    pub fn row(&self, i: usize) -> &[P] {
        self.rows[i]
            .as_deref()
            .unwrap_or_else(|| panic!("row {i} is not stored on this node"))
    }

    /// Mutable access to row `i` (allocating it if absent).
    pub fn row_mut(&mut self, i: usize) -> &mut [P] {
        if self.rows[i].is_none() {
            self.rows[i] = Some(vec![self.fill; self.row_len].into_boxed_slice());
            self.stats.bytes_allocated += (self.row_len * std::mem::size_of::<P>()) as u64;
            self.stats.allocations += 1;
        }
        self.rows[i].as_deref_mut().unwrap()
    }

    /// Two rows mutably at once (red/black sweeps, row swaps).
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [P], &mut [P]) {
        assert_ne!(a, b, "two_rows_mut requires distinct rows");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.rows.split_at_mut(hi);
        let lo_row = left[lo].as_deref_mut().expect("row not stored");
        let hi_row = right[0].as_deref_mut().expect("row not stored");
        if a < b {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// Fills `rows` with values from `f(row, col)`, allocating as needed.
    pub fn fill_rows(&mut self, rows: &RowSet, mut f: impl FnMut(usize, usize) -> P) {
        self.alloc_rows(rows);
        for i in rows.iter() {
            let row = self.rows[i].as_deref_mut().unwrap();
            for (j, v) in row.iter_mut().enumerate() {
                *v = f(i, j);
            }
        }
    }

    /// Overwrites one whole row from a slice.
    pub fn set_row(&mut self, i: usize, data: &[P]) {
        assert_eq!(data.len(), self.row_len, "row length mismatch");
        self.row_mut(i).copy_from_slice(data);
    }
}

impl<P: Pod> RedistArray for DenseMatrix<P> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn alloc_rows(&mut self, rows: &RowSet) {
        DenseMatrix::alloc_rows(self, rows);
    }

    fn pack_rows(&mut self, rows: &RowSet, take: bool) -> Vec<u8> {
        let mut flat: Vec<P> = Vec::with_capacity(rows.len() * self.row_len);
        for i in rows.iter() {
            let row = self.rows[i]
                .as_deref()
                .unwrap_or_else(|| panic!("packing absent row {i}"));
            flat.extend_from_slice(row);
            if take {
                self.rows[i] = None;
            }
        }
        to_bytes(&flat)
    }

    fn unpack_rows(&mut self, rows: &RowSet, bytes: &[u8]) {
        let flat: Vec<P> = from_bytes(bytes);
        assert_eq!(
            flat.len(),
            rows.len() * self.row_len,
            "payload does not match {} rows × {}",
            rows.len(),
            self.row_len
        );
        for (k, i) in rows.iter().enumerate() {
            let src = &flat[k * self.row_len..(k + 1) * self.row_len];
            self.set_row(i, src);
        }
    }

    fn drop_rows(&mut self, rows: &RowSet) {
        for i in rows.iter() {
            self.rows[i] = None;
        }
    }

    fn present_rows(&self) -> RowSet {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i))
            .collect()
    }

    fn row_bytes_estimate(&self) -> usize {
        self.row_len * std::mem::size_of::<P>()
    }

    fn alloc_stats(&self) -> AllocStats {
        self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The contiguous-allocation baseline (Figure 3, left): the node's rows
/// live in one flat buffer covering a contiguous range. Changing the range
/// requires allocating a new buffer and copying every surviving row.
pub struct ContiguousMatrix<P: Pod> {
    nrows: usize,
    row_len: usize,
    lo: usize,
    data: Vec<P>,
    fill: P,
    stats: AllocStats,
}

impl<P: Pod + Default> ContiguousMatrix<P> {
    /// A matrix holding rows `lo..hi` of an `nrows × row_len` global
    /// array.
    pub fn new(nrows: usize, row_len: usize, lo: usize, hi: usize) -> Self {
        assert!(row_len > 0 && lo <= hi && hi <= nrows);
        let mut m = ContiguousMatrix {
            nrows,
            row_len,
            lo,
            data: Vec::new(),
            fill: P::default(),
            stats: AllocStats::default(),
        };
        m.data = vec![m.fill; (hi - lo) * row_len];
        m.stats.bytes_allocated = (m.data.len() * std::mem::size_of::<P>()) as u64;
        m.stats.allocations = 1;
        m
    }
}

impl<P: Pod> ContiguousMatrix<P> {
    /// Currently held row range.
    pub fn range(&self) -> (usize, usize) {
        (self.lo, self.lo + self.data.len() / self.row_len)
    }

    /// Access to row `i` (must be within the held range).
    pub fn row(&self, i: usize) -> &[P] {
        let (lo, hi) = self.range();
        assert!(i >= lo && i < hi, "row {i} outside held range {lo}..{hi}");
        &self.data[(i - lo) * self.row_len..(i - lo + 1) * self.row_len]
    }

    /// Mutable access to row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [P] {
        let (lo, hi) = self.range();
        assert!(i >= lo && i < hi, "row {i} outside held range {lo}..{hi}");
        &mut self.data[(i - lo) * self.row_len..(i - lo + 1) * self.row_len]
    }

    /// Changes the held range to `new_lo..new_hi`: allocates a fresh
    /// buffer and copies every row that survives — the full-reallocation
    /// cost the projection scheme avoids.
    pub fn reshape(&mut self, new_lo: usize, new_hi: usize) {
        assert!(new_lo <= new_hi && new_hi <= self.nrows);
        let (old_lo, old_hi) = self.range();
        let mut new_data = vec![self.fill; (new_hi - new_lo) * self.row_len];
        self.stats.bytes_allocated += (new_data.len() * std::mem::size_of::<P>()) as u64;
        self.stats.allocations += 1;
        let keep_lo = old_lo.max(new_lo);
        let keep_hi = old_hi.min(new_hi);
        if keep_lo < keep_hi {
            let n = (keep_hi - keep_lo) * self.row_len;
            let src = (keep_lo - old_lo) * self.row_len;
            let dst = (keep_lo - new_lo) * self.row_len;
            new_data[dst..dst + n].copy_from_slice(&self.data[src..src + n]);
            self.stats.bytes_copied += (n * std::mem::size_of::<P>()) as u64;
        }
        self.data = new_data;
        self.lo = new_lo;
    }

    /// Memory-operation counters.
    pub fn alloc_stats(&self) -> AllocStats {
        self.stats
    }

    /// Total rows in the global matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut m = DenseMatrix::<f64>::new(10, 4);
        assert!(!m.has_row(3));
        m.alloc_rows(&RowSet::from_range(2..5));
        assert!(m.has_row(3));
        m.row_mut(3)[1] = 7.5;
        assert_eq!(m.row(3), &[0.0, 7.5, 0.0, 0.0]);
        assert_eq!(m.alloc_stats().allocations, 3);
    }

    #[test]
    #[should_panic(expected = "not stored")]
    fn absent_row_panics() {
        let m = DenseMatrix::<f64>::new(4, 2);
        let _ = m.row(0);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut a = DenseMatrix::<f64>::new(8, 3);
        let rows = RowSet::from_ranges([1..3, 5..6]);
        a.fill_rows(&rows, |i, j| (i * 10 + j) as f64);
        let bytes = a.pack_rows(&rows, false);
        assert_eq!(bytes.len(), 3 * 3 * 8);

        let mut b = DenseMatrix::<f64>::new(8, 3);
        b.unpack_rows(&rows, &bytes);
        for i in rows.iter() {
            assert_eq!(b.row(i), a.row(i));
        }
    }

    #[test]
    fn pack_take_releases_rows() {
        let mut a = DenseMatrix::<f64>::new(4, 2);
        let rows = RowSet::from_range(0..2);
        a.fill_rows(&rows, |i, _| i as f64);
        let _ = a.pack_rows(&rows, true);
        assert!(!a.has_row(0));
        assert!(!a.has_row(1));
        assert!(a.present_rows().is_empty());
    }

    #[test]
    fn untouched_rows_keep_storage_identity() {
        // The projection scheme's whole point: rows that do not move are
        // not copied or reallocated.
        let mut m = DenseMatrix::<f64>::new(6, 2);
        m.fill_rows(&RowSet::from_range(0..6), |i, _| i as f64);
        let p_before = m.row(3).as_ptr();
        let stats_before = m.alloc_stats();
        // Drop some rows, unpack others; row 3 is untouched.
        m.drop_rows(&RowSet::from_range(0..2));
        m.unpack_rows(&RowSet::from_range(4..5), &to_bytes(&[9.0f64, 9.0]));
        assert_eq!(m.row(3).as_ptr(), p_before);
        assert_eq!(m.alloc_stats().allocations, stats_before.allocations);
    }

    #[test]
    fn two_rows_mut_order() {
        let mut m = DenseMatrix::<f64>::new(4, 1);
        m.fill_rows(&RowSet::from_range(0..4), |i, _| i as f64);
        let (a, b) = m.two_rows_mut(2, 0);
        assert_eq!(a[0], 2.0);
        assert_eq!(b[0], 0.0);
    }

    #[test]
    fn unpack_length_mismatch_panics() {
        let mut m = DenseMatrix::<f64>::new(4, 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.unpack_rows(&RowSet::from_range(0..2), &to_bytes(&[1.0f64]));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn contiguous_reshape_copies_survivors() {
        let mut m = ContiguousMatrix::<f64>::new(10, 2, 0, 5);
        for i in 0..5 {
            m.row_mut(i)[0] = i as f64;
        }
        m.reshape(2, 8);
        assert_eq!(m.range(), (2, 8));
        for i in 2..5 {
            assert_eq!(m.row(i)[0], i as f64, "surviving row {i}");
        }
        assert_eq!(m.row(6)[0], 0.0, "new rows are fresh");
        let s = m.alloc_stats();
        assert_eq!(s.allocations, 2);
        // 3 surviving rows × 2 els × 8 bytes copied.
        assert_eq!(s.bytes_copied, 48);
    }

    #[test]
    fn contiguous_vs_projected_copy_volume() {
        // Shrinking by one row: contiguous copies everything that
        // survives; projected copies nothing.
        let mut c = ContiguousMatrix::<f64>::new(100, 16, 0, 50);
        c.reshape(1, 50);
        assert_eq!(c.alloc_stats().bytes_copied, 49 * 16 * 8);

        let mut d = DenseMatrix::<f64>::new(100, 16);
        d.fill_rows(&RowSet::from_range(0..50), |_, _| 0.0);
        let copied_before = d.alloc_stats().bytes_copied;
        d.drop_rows(&RowSet::from_range(0..1));
        assert_eq!(d.alloc_stats().bytes_copied, copied_before);
    }
}
