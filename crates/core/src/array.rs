//! The redistributable-array abstraction.
//!
//! All arrays registered with Dyn-MPI must support allocating, dropping,
//! packing and unpacking whole *extended rows* (§4.1), so the runtime can
//! effect any redistribution with one code path for dense and sparse data.

use std::any::Any;

use crate::rowset::RowSet;

/// Counters describing the memory work a redistribution caused — the
/// quantities compared in the paper's Figure 3 discussion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes newly allocated.
    pub bytes_allocated: u64,
    /// Bytes copied between buffers (beyond the message payloads
    /// themselves).
    pub bytes_copied: u64,
    /// Individual allocation calls.
    pub allocations: u64,
}

impl AllocStats {
    pub fn add(&mut self, other: AllocStats) {
        self.bytes_allocated += other.bytes_allocated;
        self.bytes_copied += other.bytes_copied;
        self.allocations += other.allocations;
    }
}

/// A distributed array whose first dimension can be redistributed.
pub trait RedistArray: Any {
    /// Global first-dimension extent.
    fn nrows(&self) -> usize;

    /// Ensures storage exists for `rows` (no-op for rows already
    /// present). Dense rows allocate zero-filled; sparse rows allocate
    /// empty.
    fn alloc_rows(&mut self, rows: &RowSet);

    /// Serializes `rows` (which must all be present) into a message
    /// payload. When `take` is set, the rows' storage is released — they
    /// are leaving this node.
    fn pack_rows(&mut self, rows: &RowSet, take: bool) -> Vec<u8>;

    /// Materializes `rows` from a payload produced by `pack_rows` on the
    /// sending node.
    fn unpack_rows(&mut self, rows: &RowSet, bytes: &[u8]);

    /// Releases storage for `rows` (no longer owned, not needed as
    /// ghosts).
    fn drop_rows(&mut self, rows: &RowSet);

    /// Which rows currently have storage (owned + ghosts).
    fn present_rows(&self) -> RowSet;

    /// Rough wire size of one row, for communication planning.
    fn row_bytes_estimate(&self) -> usize;

    /// Memory-operation counters accumulated so far.
    fn alloc_stats(&self) -> AllocStats;

    /// Dynamic downcast support.
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Metadata recorded when an array is registered (the
/// `DMPI_register_*_array` calls of §2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayMeta {
    pub name: String,
    pub kind: ArrayKind,
    pub nrows: usize,
}

/// Dense (vector-of-extended-rows) or sparse (vector-of-lists) layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayKind {
    Dense,
    Sparse,
}

impl ArrayMeta {
    pub fn dense(name: impl Into<String>, nrows: usize) -> Self {
        ArrayMeta {
            name: name.into(),
            kind: ArrayKind::Dense,
            nrows,
        }
    }

    pub fn sparse(name: impl Into<String>, nrows: usize) -> Self {
        ArrayMeta {
            name: name.into(),
            kind: ArrayKind::Sparse,
            nrows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut a = AllocStats::default();
        a.add(AllocStats {
            bytes_allocated: 10,
            bytes_copied: 5,
            allocations: 1,
        });
        a.add(AllocStats {
            bytes_allocated: 1,
            bytes_copied: 2,
            allocations: 3,
        });
        assert_eq!(
            a,
            AllocStats {
                bytes_allocated: 11,
                bytes_copied: 7,
                allocations: 4
            }
        );
    }

    #[test]
    fn meta_constructors() {
        let m = ArrayMeta::dense("A", 100);
        assert_eq!(m.kind, ArrayKind::Dense);
        assert_eq!(m.nrows, 100);
        assert_eq!(ArrayMeta::sparse("S", 7).kind, ArrayKind::Sparse);
    }
}
