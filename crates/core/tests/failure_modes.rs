//! Failure-injection and edge-case tests for the runtime: degenerate
//! clusters, hostile load patterns, and misuse that must fail loudly.

use dynmpi::{
    AccessMode, CommPattern, DenseMatrix, DropPolicy, Drsd, DynMpi, DynMpiConfig, RedistArray,
};
use dynmpi_comm::{run_threads, HostMeters, Transport};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

struct FakeLoad<'x> {
    inner: &'x dynmpi_comm::ThreadTransport,
    loads: Arc<Vec<AtomicU32>>,
}

impl Transport for FakeLoad<'_> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        self.inner.send_bytes(dst, tag, payload);
    }
    fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8> {
        self.inner.recv_bytes(src, tag)
    }
    fn recv_bytes_any(&self, tag: u64) -> (usize, Vec<u8>) {
        self.inner.recv_bytes_any(tag)
    }
    fn wtime(&self) -> f64 {
        self.inner.wtime()
    }
}

impl HostMeters for FakeLoad<'_> {
    fn dmpi_ps(&self, r: usize) -> u32 {
        self.loads[r].load(Ordering::Relaxed) + 1
    }
    fn proc_cpu_seconds(&self) -> f64 {
        self.inner.wtime()
    }
    fn proc_tick_seconds(&self) -> f64 {
        0.0
    }
}

fn drive(
    n_ranks: usize,
    nrows: usize,
    cfg: DynMpiConfig,
    cycles: usize,
    loads_script: impl Fn(u64, &Arc<Vec<AtomicU32>>) + Send + Sync,
) -> Vec<(bool, usize, Vec<&'static str>)> {
    run_threads(n_ranks, |tt| {
        let loads = Arc::new((0..n_ranks).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
        let t = FakeLoad {
            inner: tt,
            loads: Arc::clone(&loads),
        };
        let mut rt = DynMpi::init(&t, nrows, cfg.clone());
        let a = rt.register_dense("A", nrows);
        let ph = rt.init_phase(0, nrows, CommPattern::NearestNeighbor);
        rt.add_access(ph, a, AccessMode::ReadWrite, Drsd::with_halo(1));
        let mut m = DenseMatrix::<f64>::new(nrows, 2);
        {
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            rt.setup(&mut arrays);
        }
        m.fill_rows(&rt.local_rows(a), |i, j| (i + j) as f64);
        for c in 0..cycles {
            loads_script(c as u64, &loads);
            rt.begin_cycle();
            if rt.participating() {
                rt.ghost_exchange(a, &mut m);
                rt.charge_rows(ph, |_| 1.0);
            }
            let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut m];
            rt.end_cycle(&mut arrays);
        }
        // Verify data integrity at the end.
        for i in rt.my_rows(ph).iter() {
            assert_eq!(m.row(i)[0], i as f64, "row {i} corrupted");
        }
        (
            rt.participating(),
            rt.my_rows(ph).len(),
            rt.events().iter().map(|e| e.kind()).collect(),
        )
    })
}

#[test]
fn single_node_cluster_is_a_noop() {
    let out = drive(1, 8, DynMpiConfig::default(), 12, |c, l| {
        if c == 2 {
            l[0].store(3, Ordering::Relaxed);
        }
    });
    // A load change on the only node: grace runs, but there is nowhere to
    // move work and no one to drop.
    assert!(out[0].0);
    assert_eq!(out[0].1, 8);
}

#[test]
fn all_nodes_loaded_never_drops() {
    let out = drive(
        3,
        24,
        DynMpiConfig {
            drop_policy: DropPolicy::Auto,
            grace_period: 2,
            ..Default::default()
        },
        20,
        |c, l| {
            if c == 2 {
                for x in l.iter() {
                    x.store(2, Ordering::Relaxed);
                }
            }
        },
    );
    for (participating, rows, kinds) in &out {
        assert!(
            *participating,
            "uniformly loaded cluster must keep everyone"
        );
        assert!(*rows > 0);
        assert!(!kinds.contains(&"nodes-dropped"));
    }
    // Uniform load ⇒ balanced shares stay (roughly) even.
    let rows: Vec<usize> = out.iter().map(|o| o.1).collect();
    assert!(rows.iter().all(|&r| r >= 7), "{rows:?}");
}

#[test]
fn load_spike_during_post_redist_window_is_deferred() {
    // A second load change while the runtime is inside grace/post-redist
    // must not wedge the state machine; it is handled at the next stable
    // cycle.
    let out = drive(
        3,
        24,
        DynMpiConfig {
            drop_policy: DropPolicy::Never,
            grace_period: 3,
            ..Default::default()
        },
        40,
        |c, l| {
            if c == 2 {
                l[1].store(1, Ordering::Relaxed);
            }
            if c == 7 {
                // mid-grace / post-redist
                l[2].store(2, Ordering::Relaxed);
            }
        },
    );
    for (_, _, kinds) in &out {
        let changes = kinds.iter().filter(|k| **k == "load-change").count();
        assert!(
            changes >= 2,
            "second change must eventually be processed: {kinds:?}"
        );
    }
}

#[test]
fn oscillating_load_does_not_thrash_forever() {
    let out = drive(
        2,
        16,
        DynMpiConfig {
            drop_policy: DropPolicy::Never,
            grace_period: 1,
            ..Default::default()
        },
        40,
        |c, l| {
            // Load flips every 6 cycles.
            l[1].store(u32::from((c / 6) % 2 == 1), Ordering::Relaxed);
        },
    );
    for (participating, rows, _) in &out {
        assert!(*participating);
        assert!(*rows > 0);
    }
    let total: usize = out.iter().map(|o| o.1).sum();
    assert_eq!(total, 16);
}

#[test]
fn max_redistributions_caps_adaptation() {
    let out = drive(
        2,
        16,
        DynMpiConfig {
            drop_policy: DropPolicy::Never,
            grace_period: 1,
            max_redistributions: Some(1),
            ..Default::default()
        },
        40,
        |c, l| {
            if c == 2 {
                l[1].store(2, Ordering::Relaxed);
            }
            if c == 15 {
                l[1].store(0, Ordering::Relaxed);
            }
        },
    );
    for (_, _, kinds) in &out {
        let redists = kinds.iter().filter(|k| **k == "redistributed").count();
        assert!(redists <= 1, "{kinds:?}");
    }
}

#[test]
fn setup_misuse_fails_loudly() {
    let r = std::panic::catch_unwind(|| {
        run_threads(1, |tt| {
            let loads = Arc::new(vec![AtomicU32::new(0)]);
            let t = FakeLoad { inner: tt, loads };
            let mut rt = DynMpi::init(&t, 8, DynMpiConfig::default());
            rt.register_dense("A", 8);
            // Wrong number of arrays at setup.
            let mut arrays: Vec<&mut dyn RedistArray> = vec![];
            rt.setup(&mut arrays);
        });
    });
    assert!(r.is_err());
}

#[test]
fn fewer_rows_than_ranks_rejected() {
    let r = std::panic::catch_unwind(|| {
        run_threads(4, |tt| {
            let loads = Arc::new((0..4).map(|_| AtomicU32::new(0)).collect::<Vec<_>>());
            let t = FakeLoad { inner: tt, loads };
            let _ = DynMpi::init(&t, 2, DynMpiConfig::default());
        });
    });
    assert!(r.is_err());
}
