//! Dependency-free test support for the Dyn-MPI workspace.
//!
//! Provides three things the external crates `proptest`, `rand`, and
//! `criterion` used to supply, scoped down to exactly what this repo needs:
//!
//! * [`Rng`] — a seeded SplitMix64 generator with ranged helpers, so tests
//!   and data generators stay deterministic per seed.
//! * [`check`] / [`check_n`] — a property-check harness: run a closure over
//!   `n` generated cases and panic with the failing seed on the first
//!   counterexample, so failures are reproducible with `Rng::new(seed)`.
//! * [`bench`] — a tiny wall-clock micro-benchmark loop used by the
//!   `crates/bench/benches/*` binaries (which run with `harness = false`).
//! * [`sweep`] — a scoped worker pool that runs independent, deterministic
//!   simulation configurations concurrently and returns results in input
//!   order, so figure harnesses parallelize without reordering output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Seeded RNG
// ---------------------------------------------------------------------------

/// SplitMix64 pseudo-random generator. Deterministic per seed, statistically
/// adequate for test-case generation (not cryptographic).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `i64` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.range_u64(0, (hi - lo) as u64) as i64)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        // 53 mantissa bits of the raw stream.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.f64_unit() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// A vector of `len` values from `gen`.
    pub fn vec<T>(&mut self, len: usize, mut gen: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| gen(self)).collect()
    }

    /// A vector whose length is drawn from `[min_len, max_len)`.
    pub fn vec_in<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        gen: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.range_usize(min_len, max_len);
        self.vec(len, gen)
    }
}

// ---------------------------------------------------------------------------
// Property-check harness
// ---------------------------------------------------------------------------

/// Default number of cases per property, matching what the proptest-based
/// suites used before.
pub const DEFAULT_CASES: u32 = 64;

/// Run `prop` over [`DEFAULT_CASES`] seeded cases. Each case receives its own
/// [`Rng`]; if the property panics, the harness re-panics naming the case
/// seed so the failure can be replayed with `Rng::new(seed)`.
pub fn check(name: &str, prop: impl Fn(&mut Rng)) {
    check_n(name, DEFAULT_CASES, prop);
}

/// Like [`check`] but with an explicit case count.
pub fn check_n(name: &str, cases: u32, prop: impl Fn(&mut Rng)) {
    for case in 0..cases {
        // Stable per-(property, case) seed: hash the name into the stream so
        // distinct properties explore distinct inputs.
        let mut seed = 0xD6E8_FEB8_6659_FD93u64 ^ u64::from(case);
        for b in name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(b));
        }
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property `{name}` failed on case {case} (seed {seed:#x}): {msg}");
        }
    }
}

// ---------------------------------------------------------------------------
// Micro-bench harness
// ---------------------------------------------------------------------------

/// One timed result from [`bench`].
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    pub iters: u64,
    pub mean_ns: f64,
    pub min_ns: f64,
}

impl BenchResult {
    fn fmt_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }

    /// Print a one-line summary in `name  mean (min)` form.
    pub fn report(&self) {
        println!(
            "{:<48} {:>12} /iter (min {:>12}, {} iters)",
            self.name,
            Self::fmt_ns(self.mean_ns),
            Self::fmt_ns(self.min_ns),
            self.iters
        );
    }
}

/// Time `f` with a warm-up pass and several measurement batches, returning
/// mean and best per-iteration wall time. Replacement for the criterion
/// harness: coarse, but stable enough to rank implementations.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    // Warm-up and batch sizing: aim for batches of at least ~2 ms.
    let mut iters_per_batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters_per_batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 2 || iters_per_batch >= 1 << 20 {
            break;
        }
        iters_per_batch *= 4;
    }

    const BATCHES: usize = 8;
    let mut total_ns = 0.0f64;
    let mut min_ns = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters_per_batch {
            std::hint::black_box(f());
        }
        let per_iter = start.elapsed().as_secs_f64() * 1e9 / iters_per_batch as f64;
        total_ns += per_iter;
        min_ns = min_ns.min(per_iter);
    }
    let res = BenchResult {
        name: name.to_string(),
        iters: iters_per_batch * BATCHES as u64,
        mean_ns: total_ns / BATCHES as f64,
        min_ns,
    };
    res.report();
    res
}

// ---------------------------------------------------------------------------
// Parallel sweep runner
// ---------------------------------------------------------------------------

/// The machine's available parallelism (1 if it cannot be determined) —
/// the default for `--threads` in the figure harnesses.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(index, item)` for every item on a pool of `threads` scoped
/// workers and returns the results **in input order**.
///
/// Each invocation must be independent and deterministic (the contract the
/// simulator's `run_spmd` already gives): then the output is byte-for-byte
/// identical at any thread count, which the fig-harness determinism test
/// pins down. `threads <= 1` runs inline with no pool at all. A panicking
/// item propagates out of the sweep.
pub fn sweep<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let order: Vec<usize> = (0..items.len()).collect();
    sweep_in_order(items, &order, threads, f)
}

/// The claim order that longest-processing-time (LPT) list scheduling
/// uses: heaviest item first, ties broken by input index. Deterministic.
pub fn lpt_order(weights: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    // NaN weights count as lightest so the order stays total.
    let w = |i: usize| {
        if weights[i].is_nan() {
            f64::NEG_INFINITY
        } else {
            weights[i]
        }
    };
    order.sort_by(|&a, &b| w(b).total_cmp(&w(a)).then(a.cmp(&b)));
    order
}

/// [`sweep`] with a per-item cost estimate: workers claim items heaviest
/// first (LPT order), so one huge arm placed late in the input no longer
/// tail-blocks the pool while its siblings sit finished. Weights only
/// steer the claim order — results still come back in **input order** and
/// are bit-identical to `sweep`'s at any thread count. Weights need only
/// be roughly proportional to runtime (e.g. `ranks × iterations`).
pub fn sweep_weighted<T, R, F>(items: &[T], weights: &[f64], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert_eq!(items.len(), weights.len(), "one weight per item");
    sweep_in_order(items, &lpt_order(weights), threads, f)
}

fn sweep_in_order<T, R, F>(items: &[T], order: &[usize], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads.min(items.len()))
            .map(|_| {
                s.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = order.get(k) else { return };
                    let r = f(i, &items[i]);
                    // A sibling worker may have panicked while we computed:
                    // tolerate the poisoned lock so our result still lands
                    // and the scope can unwind with the original payload.
                    slots.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(r);
                })
            })
            .collect();
        for w in workers {
            if let Err(e) = w.join() {
                std::panic::resume_unwind(e);
            }
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|r| r.expect("every sweep slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let u = r.range_usize(3, 17);
            assert!((3..17).contains(&u));
            let f = r.range_f64(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = r.range_i64(-50, -3);
            assert!((-50..-3).contains(&i));
        }
    }

    #[test]
    fn check_reports_failing_seed() {
        let err = std::panic::catch_unwind(|| {
            check_n("always-fails", 4, |_| panic!("boom"));
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always-fails"));
        assert!(msg.contains("seed"));
        assert!(msg.contains("boom"));
    }

    #[test]
    fn f64_unit_in_range() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let x = r.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn sweep_returns_results_in_input_order() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 8, 64] {
            let got = sweep(&items, threads, |i, &x| {
                assert_eq!(items[i], x);
                x * x
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(sweep(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(sweep(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn sweep_runs_every_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        sweep(&items, 7, |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sweep_propagates_worker_panics() {
        let items: Vec<u32> = (0..16).collect();
        let err = std::panic::catch_unwind(|| {
            sweep(&items, 4, |_, &x| {
                if x == 9 {
                    panic!("item nine exploded");
                }
                x
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("item nine"), "{msg}");
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn sweep_weighted_matches_sweep_results() {
        let items: Vec<u64> = (0..23).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        let weights: Vec<f64> = items.iter().map(|&x| (x % 7) as f64).collect();
        for threads in [1, 3, 16] {
            let got = sweep_weighted(&items, &weights, threads, |i, &x| {
                assert_eq!(items[i], x);
                x * 3
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    /// Greedy list-scheduling makespan on `threads` identical workers when
    /// items are claimed in `order` and item `i` takes `weights[i]` —
    /// exactly the pool's behavior if runtime tracks the weights.
    fn simulated_makespan(weights: &[f64], order: &[usize], threads: usize) -> f64 {
        let mut free = vec![0.0f64; threads];
        for &i in order {
            let w = free
                .iter_mut()
                .min_by(|a, b| a.partial_cmp(b).unwrap())
                .unwrap();
            *w += weights[i];
        }
        free.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    #[test]
    fn lpt_order_avoids_tail_blocking_on_skewed_sweeps() {
        // The fig4 shape that motivated the fix: four light arms and one
        // huge arm listed last. Input-order claiming parks the huge arm
        // behind the light ones and tail-blocks the pool.
        let weights = [10.0, 10.0, 10.0, 10.0, 40.0];
        let threads = 2;
        let total: f64 = weights.iter().sum();
        let balanced = (total / threads as f64).max(40.0); // lower bound
        let input_order: Vec<usize> = (0..weights.len()).collect();
        let naive = simulated_makespan(&weights, &input_order, threads);
        let lpt = simulated_makespan(&weights, &lpt_order(&weights), threads);
        assert!(naive > 1.2 * balanced, "skew not skewed enough: {naive}");
        assert!(
            lpt <= 1.2 * balanced,
            "LPT makespan {lpt} exceeds 1.2 × balanced bound {balanced}"
        );
    }

    #[test]
    fn lpt_order_is_heaviest_first_with_index_ties() {
        assert_eq!(lpt_order(&[1.0, 5.0, 5.0, 0.5]), vec![1, 2, 0, 3]);
        assert_eq!(lpt_order(&[]), Vec::<usize>::new());
        assert_eq!(lpt_order(&[2.0, f64::NAN, 3.0]), vec![2, 0, 1]);
    }
}
