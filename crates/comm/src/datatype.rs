//! Plain-old-data element types and byte conversion.
//!
//! Message payloads travel as byte vectors; typed sends and receives cast
//! element slices to and from bytes. The `Pod` trait marks types for which
//! this is sound: no padding, no invalid bit patterns, no pointers.
//!
//! Every conversion in this module charges the [`BYTES_COPIED`] counter
//! with the number of payload bytes it memcpy'd (when an obs recorder is
//! installed), so the collectives' copy discipline is measurable: the
//! micro-bench and the equivalence tests compare algorithms by exactly
//! this counter. The `*_into` variants reuse a caller-owned buffer so
//! steady-state collectives allocate once and stay one-copy per hop.

use dynmpi_obs as obs;

/// Metric charged (in bytes) by every payload memcpy in the comm crate:
/// serialization, deserialization, and relay clones alike.
pub const BYTES_COPIED: &str = "comm.bytes_copied";

/// Records `n` payload bytes copied. Exposed so `ops.rs` can charge relay
/// clones and block assemblies through the same counter.
#[inline]
pub(crate) fn count_copied(n: usize) {
    obs::count(BYTES_COPIED, n as u64);
}

/// Marker for types that can be safely reinterpreted as raw bytes.
///
/// `ZERO` gives collectives a valid fill value so they can preallocate
/// output vectors in safe code before assembling received blocks in place.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding bytes, and admit every bit
/// pattern as a valid value. All implementations live in this module; the
/// trait is sealed by convention (do not implement it downstream unless the
/// same guarantees hold).
pub unsafe trait Pod: Copy + Send + 'static {
    /// The all-zero-bits value.
    const ZERO: Self;
}

macro_rules! impl_pod {
    ($($t:ty => $zero:expr),* $(,)?) => {
        $(unsafe impl Pod for $t {
            const ZERO: Self = $zero;
        })*
    };
}

impl_pod! {
    u8 => 0, i8 => 0, u16 => 0, i16 => 0, u32 => 0, i32 => 0,
    u64 => 0, i64 => 0, f32 => 0.0, f64 => 0.0,
}

/// Appends the byte image of `data` to `out` without clearing it — the
/// primitive under [`to_bytes_into`] and the framed-message builders in
/// `ops.rs`.
pub(crate) fn append_bytes<P: Pod>(data: &[P], out: &mut Vec<u8>) {
    let len = std::mem::size_of_val(data);
    let old = out.len();
    out.reserve(len);
    // SAFETY: `P: Pod` has no padding, so reading its bytes is defined;
    // the destination was reserved for `len` additional bytes.
    unsafe {
        std::ptr::copy_nonoverlapping(data.as_ptr().cast::<u8>(), out.as_mut_ptr().add(old), len);
        out.set_len(old + len);
    }
    count_copied(len);
}

/// Typed clone that charges [`BYTES_COPIED`], so `data.to_vec()` on hot
/// paths stays visible to the copy accounting.
pub(crate) fn counted_to_vec<P: Pod>(data: &[P]) -> Vec<P> {
    count_copied(std::mem::size_of_val(data));
    data.to_vec()
}

/// Serializes a slice of POD elements to bytes (native endianness; both
/// transports stay within one process, so this is lossless).
pub fn to_bytes<P: Pod>(data: &[P]) -> Vec<u8> {
    let mut out = Vec::new();
    to_bytes_into(data, &mut out);
    out
}

/// Serializes into a reusable buffer: clears `out`, then appends the byte
/// image of `data`. Capacity is retained across calls, so a loop that
/// serializes into the same buffer allocates only on growth.
pub fn to_bytes_into<P: Pod>(data: &[P], out: &mut Vec<u8>) {
    out.clear();
    append_bytes(data, out);
}

/// Deserializes bytes produced by [`to_bytes`] back into elements.
///
/// Panics if the byte length is not a multiple of the element size.
pub fn from_bytes<P: Pod>(bytes: &[u8]) -> Vec<P> {
    let mut out = Vec::new();
    from_bytes_into(bytes, &mut out);
    out
}

/// Deserializes into a reusable buffer: clears `out`, then appends the
/// decoded elements. Panics if the byte length is not a multiple of the
/// element size.
pub fn from_bytes_into<P: Pod>(bytes: &[u8], out: &mut Vec<P>) {
    let esz = std::mem::size_of::<P>();
    assert!(esz > 0, "zero-sized POD elements are not supported");
    assert!(
        bytes.len().is_multiple_of(esz),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        esz
    );
    let n = bytes.len() / esz;
    out.clear();
    out.reserve(n);
    // SAFETY: `P: Pod` accepts any bit pattern; the destination has
    // capacity for `n` elements and is properly aligned by Vec; lengths
    // match.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    count_copied(bytes.len());
}

/// Decodes `bytes` into `out[at..at + bytes.len()/esz]` in place — the
/// block-assembly primitive of the scatter–allgather collectives, which
/// write each received block straight into the final output vector
/// instead of growing intermediate vectors.
///
/// Panics if the byte length is not a multiple of the element size or the
/// decoded elements would overrun `out`.
pub fn write_bytes_at<P: Pod>(out: &mut [P], at: usize, bytes: &[u8]) {
    let esz = std::mem::size_of::<P>();
    assert!(esz > 0, "zero-sized POD elements are not supported");
    assert!(
        bytes.len().is_multiple_of(esz),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        esz
    );
    let n = bytes.len() / esz;
    assert!(
        at.checked_add(n).is_some_and(|end| end <= out.len()),
        "write_bytes_at: {n} elements at offset {at} overrun output of {}",
        out.len()
    );
    // SAFETY: bounds checked above; `P: Pod` accepts any bit pattern.
    unsafe {
        std::ptr::copy_nonoverlapping(
            bytes.as_ptr(),
            out.as_mut_ptr().add(at).cast::<u8>(),
            bytes.len(),
        );
    }
    count_copied(bytes.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let v = vec![1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(from_bytes::<f64>(&to_bytes(&v)), v);
    }

    #[test]
    fn u32_round_trip() {
        let v: Vec<u32> = (0..100u32).map(|i| i.wrapping_mul(2654435761)).collect();
        assert_eq!(from_bytes::<u32>(&to_bytes(&v)), v);
    }

    #[test]
    fn empty_round_trip() {
        let v: Vec<i64> = vec![];
        let b = to_bytes(&v);
        assert!(b.is_empty());
        assert!(from_bytes::<i64>(&b).is_empty());
    }

    #[test]
    fn nan_bits_preserved() {
        let v = vec![f64::NAN];
        let r = from_bytes::<f64>(&to_bytes(&v));
        assert_eq!(r[0].to_bits(), v[0].to_bits());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_length_panics() {
        let _ = from_bytes::<f64>(&[0u8; 7]);
    }

    #[test]
    fn byte_length_is_exact() {
        let v = vec![0u16; 7];
        assert_eq!(to_bytes(&v).len(), 14);
    }

    #[test]
    fn into_variants_reuse_capacity() {
        let mut bytes = Vec::new();
        let mut elems: Vec<u32> = Vec::new();
        to_bytes_into(&[1u32, 2, 3, 4], &mut bytes);
        let cap = bytes.capacity();
        from_bytes_into(&bytes, &mut elems);
        assert_eq!(elems, vec![1, 2, 3, 4]);
        // A smaller payload must not reallocate the byte buffer.
        to_bytes_into(&[9u32], &mut bytes);
        assert_eq!(bytes.capacity(), cap);
        assert_eq!(from_bytes::<u32>(&bytes), vec![9]);
    }

    #[test]
    fn write_bytes_at_places_block() {
        let mut out = vec![0u64; 6];
        write_bytes_at(&mut out, 2, &to_bytes(&[7u64, 8, 9]));
        assert_eq!(out, vec![0, 0, 7, 8, 9, 0]);
    }

    #[test]
    #[should_panic(expected = "overrun")]
    fn write_bytes_at_rejects_overrun() {
        let mut out = vec![0u64; 2];
        write_bytes_at(&mut out, 1, &to_bytes(&[1u64, 2]));
    }
}
