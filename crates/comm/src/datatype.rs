//! Plain-old-data element types and byte conversion.
//!
//! Message payloads travel as byte vectors; typed sends and receives cast
//! element slices to and from bytes. The `Pod` trait marks types for which
//! this is sound: no padding, no invalid bit patterns, no pointers.

/// Marker for types that can be safely reinterpreted as raw bytes.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding bytes, and admit every bit
/// pattern as a valid value. All implementations live in this module; the
/// trait is sealed by convention (do not implement it downstream unless the
/// same guarantees hold).
pub unsafe trait Pod: Copy + Send + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

/// Serializes a slice of POD elements to bytes (native endianness; both
/// transports stay within one process, so this is lossless).
pub fn to_bytes<P: Pod>(data: &[P]) -> Vec<u8> {
    let len = std::mem::size_of_val(data);
    let mut out = vec![0u8; len];
    // SAFETY: `P: Pod` has no padding, so reading its bytes is defined;
    // lengths match by construction.
    unsafe {
        std::ptr::copy_nonoverlapping(data.as_ptr().cast::<u8>(), out.as_mut_ptr(), len);
    }
    out
}

/// Deserializes bytes produced by [`to_bytes`] back into elements.
///
/// Panics if the byte length is not a multiple of the element size.
pub fn from_bytes<P: Pod>(bytes: &[u8]) -> Vec<P> {
    let esz = std::mem::size_of::<P>();
    assert!(esz > 0, "zero-sized POD elements are not supported");
    assert!(
        bytes.len().is_multiple_of(esz),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        esz
    );
    let n = bytes.len() / esz;
    let mut out = Vec::<P>::with_capacity(n);
    // SAFETY: `P: Pod` accepts any bit pattern; the destination has
    // capacity for `n` elements and is properly aligned by Vec; lengths
    // match.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let v = vec![1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(from_bytes::<f64>(&to_bytes(&v)), v);
    }

    #[test]
    fn u32_round_trip() {
        let v: Vec<u32> = (0..100u32).map(|i| i.wrapping_mul(2654435761)).collect();
        assert_eq!(from_bytes::<u32>(&to_bytes(&v)), v);
    }

    #[test]
    fn empty_round_trip() {
        let v: Vec<i64> = vec![];
        let b = to_bytes(&v);
        assert!(b.is_empty());
        assert!(from_bytes::<i64>(&b).is_empty());
    }

    #[test]
    fn nan_bits_preserved() {
        let v = vec![f64::NAN];
        let r = from_bytes::<f64>(&to_bytes(&v));
        assert_eq!(r[0].to_bits(), v[0].to_bits());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_length_panics() {
        let _ = from_bytes::<f64>(&[0u8; 7]);
    }

    #[test]
    fn byte_length_is_exact() {
        let v = vec![0u16; 7];
        assert_eq!(to_bytes(&v).len(), 14);
    }
}
