//! Transport backed by the virtual-time cluster simulator.

use dynmpi_obs as obs;
use dynmpi_sim::SimCtx;

use crate::transport::{HostMeters, PeerTimeout, Transport};

/// A [`Transport`] view over a simulated rank.
///
/// All paper experiments run on this transport: message timing follows the
/// simulator's network model and `compute` advances virtual time under the
/// node's competing load.
pub struct SimTransport<'a> {
    ctx: &'a SimCtx,
}

impl<'a> SimTransport<'a> {
    pub fn new(ctx: &'a SimCtx) -> Self {
        SimTransport { ctx }
    }

    /// The underlying simulator handle (for host metering beyond the
    /// `HostMeters` trait, e.g. exact CPU time in tests).
    pub fn ctx(&self) -> &'a SimCtx {
        self.ctx
    }
}

impl Transport for SimTransport<'_> {
    fn rank(&self) -> usize {
        self.ctx.rank()
    }

    fn size(&self) -> usize {
        self.ctx.nprocs()
    }

    fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        obs::observe(
            "comm.msg_bytes_sent",
            &obs::BYTE_BUCKETS,
            payload.len() as u64,
        );
        self.ctx.send(dst, tag, payload);
    }

    fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8> {
        let payload = self.ctx.recv(src, tag);
        obs::observe(
            "comm.msg_bytes_recvd",
            &obs::BYTE_BUCKETS,
            payload.len() as u64,
        );
        payload
    }

    fn recv_bytes_any(&self, tag: u64) -> (usize, Vec<u8>) {
        let (src, payload) = self.ctx.recv_any(tag);
        obs::observe(
            "comm.msg_bytes_recvd",
            &obs::BYTE_BUCKETS,
            payload.len() as u64,
        );
        (src, payload)
    }

    fn recv_bytes_timeout(
        &self,
        src: usize,
        tag: u64,
        timeout_seconds: f64,
    ) -> Result<Vec<u8>, PeerTimeout> {
        let timeout = dynmpi_sim::SimDur::from_secs_f64(timeout_seconds);
        match self.ctx.recv_timeout(Some(src), tag, timeout) {
            Ok((_, payload)) => {
                obs::observe(
                    "comm.msg_bytes_recvd",
                    &obs::BYTE_BUCKETS,
                    payload.len() as u64,
                );
                Ok(payload)
            }
            Err(t) => Err(PeerTimeout {
                src: t.src,
                tag: t.tag,
            }),
        }
    }

    fn wtime(&self) -> f64 {
        self.ctx.now().as_secs_f64()
    }

    fn now_ns(&self) -> u64 {
        // Exact: the simulator clock is already integer nanoseconds.
        self.ctx.now().0
    }

    fn compute(&self, work: f64) {
        self.ctx.advance(work);
    }

    fn phase_cycle_completed(&self) {
        self.ctx.phase_cycle_completed();
    }
}

impl HostMeters for SimTransport<'_> {
    fn dmpi_ps(&self, r: usize) -> u32 {
        // One rank per node in the simulator.
        self.ctx.dmpi_ps(r)
    }

    fn node_online(&self, r: usize) -> bool {
        self.ctx.node_online(r)
    }

    fn proc_cpu_seconds(&self) -> f64 {
        self.ctx.cpu_time_reading().as_secs_f64()
    }

    fn proc_tick_seconds(&self) -> f64 {
        0.010
    }

    fn proc_cpu_ns(&self) -> u64 {
        // Exact (un-quantized) CPU nanoseconds: identical between the
        // fast-forward and stepped engines, which is what keeps health
        // snapshots byte-identical across modes.
        self.ctx.cpu_time_exact().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmpi_sim::{Cluster, NodeSpec};

    #[test]
    fn transport_maps_to_sim() {
        let c = Cluster::homogeneous(2, NodeSpec::with_speed(1e6));
        let out = c.run_spmd(|ctx| {
            let t = SimTransport::new(ctx);
            assert_eq!(t.size(), 2);
            if t.rank() == 0 {
                t.send_bytes(1, 3, vec![9, 9]);
                t.compute(1000.0);
                t.wtime()
            } else {
                let m = t.recv_bytes(0, 3);
                assert_eq!(m, vec![9, 9]);
                t.wtime()
            }
        });
        assert!(out.results.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn host_meters_exposed() {
        let c = Cluster::homogeneous(1, NodeSpec::with_speed(1e6));
        let out = c.run_spmd(|ctx| {
            let t = SimTransport::new(ctx);
            t.compute(25_000.0); // 25 ms CPU
            (t.dmpi_ps(0), t.proc_cpu_seconds())
        });
        let (ps, cpu) = out.results[0];
        assert_eq!(ps, 1);
        assert!((cpu - 0.020).abs() < 1e-9, "reading {cpu}"); // truncated to 10 ms tick
    }
}
