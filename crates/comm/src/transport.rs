//! The transport abstraction.
//!
//! Everything above this layer — typed point-to-point, collectives, the
//! Dyn-MPI runtime, the applications — is written once against
//! [`Transport`]. Two implementations exist: the virtual-time simulator
//! ([`crate::SimTransport`]) used for all paper experiments, and a real
//! multi-threaded channel transport ([`crate::ThreadTransport`]) proving
//! the stack runs on actual concurrency.

/// Reserved tag space boundary: application tags must stay below this;
/// internal (collective) traffic uses tags at or above it.
pub const RESERVED_TAG_BASE: u64 = 1 << 32;

/// A blocking receive gave up: no matching message arrived within the
/// caller's timeout. The peer may be dead, partitioned, or merely slow —
/// classifying that is the failure detector's job, not the transport's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerTimeout {
    /// The rank the receive was directed at (`None` = any source).
    pub src: Option<usize>,
    /// The tag the receive was matching.
    pub tag: u64,
}

impl std::fmt::Display for PeerTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.src {
            Some(s) => write!(f, "receive from rank {s} tag {} timed out", self.tag),
            None => write!(f, "any-source receive tag {} timed out", self.tag),
        }
    }
}

impl std::error::Error for PeerTimeout {}

/// A point-to-point byte transport between `size()` ranks.
pub trait Transport {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Sends `payload` to `dst` under `tag`. Buffered: returns once the
    /// message is injected, not when it is received.
    fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>);

    /// Receives the next message from `src` under `tag`, blocking.
    fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8>;

    /// Receives the next message under `tag` from any rank, blocking.
    fn recv_bytes_any(&self, tag: u64) -> (usize, Vec<u8>);

    /// Receives like [`recv_bytes`](Transport::recv_bytes) but gives up
    /// after `timeout_seconds` of transport time, returning
    /// `Err(`[`PeerTimeout`]`)` instead of blocking forever — the
    /// progress-or-fail primitive failure detection builds on. The default
    /// implementation never times out (transports without a clocked wait
    /// degrade to plain blocking receives; callers treat that as "failure
    /// detection unavailable", not as an error).
    fn recv_bytes_timeout(
        &self,
        src: usize,
        tag: u64,
        _timeout_seconds: f64,
    ) -> Result<Vec<u8>, PeerTimeout> {
        Ok(self.recv_bytes(src, tag))
    }

    /// Wallclock seconds (virtual or real, per transport).
    fn wtime(&self) -> f64;

    /// Wallclock in integer nanoseconds — the timestamp domain of the
    /// tracing layer. Transports with an exact integer clock (the
    /// simulator) override this to avoid the round trip through `f64`.
    fn now_ns(&self) -> u64 {
        (self.wtime() * 1e9).round() as u64
    }

    /// Consumes `work` units of CPU. On the simulator this advances
    /// virtual time under the node's current load; on real transports the
    /// work is assumed to be performed by the caller's own code and this
    /// is a no-op.
    fn compute(&self, _work: f64) {}

    /// Marks the end of one application phase cycle (drives cycle-triggered
    /// load scripts on the simulator; no-op elsewhere).
    fn phase_cycle_completed(&self) {}
}

/// Transports also used by the Dyn-MPI runtime expose the host's
/// measurement facilities (§4.2 of the paper). The thread transport
/// implements these with real OS facilities where possible and benign
/// stand-ins otherwise.
pub trait HostMeters: Transport {
    /// `dmpi_ps` reading for the node hosting rank `r`: running-or-ready
    /// process count including the application.
    fn dmpi_ps(&self, r: usize) -> u32;

    /// CPU time consumed by this rank per `/proc`, in seconds, truncated
    /// to the accounting tick.
    fn proc_cpu_seconds(&self) -> f64;

    /// The `/proc` accounting tick in seconds (0 ⇒ exact readings).
    fn proc_tick_seconds(&self) -> f64;

    /// Whether the node hosting rank `r` is online (booted, daemon
    /// running). Seed nodes are always online; ranks reserved for
    /// scripted arrivals read offline until their cold start completes.
    /// Transports without an arrival notion report everything online.
    fn node_online(&self, _r: usize) -> bool {
        true
    }

    /// CPU time consumed by this rank in exact nanoseconds, for
    /// observability-grade accounting (the health monitor's interference
    /// share). Unlike [`proc_cpu_seconds`](HostMeters::proc_cpu_seconds)
    /// this must not be quantized to the accounting tick — quantization
    /// shows up as phantom interference on short cycles. The default
    /// converts the quantized reading; transports with an exact clock
    /// override it.
    fn proc_cpu_ns(&self) -> u64 {
        (self.proc_cpu_seconds() * 1e9).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_tag_base_leaves_room() {
        const {
            assert!(RESERVED_TAG_BASE > u32::MAX as u64);
            assert!(RESERVED_TAG_BASE < u64::MAX / 2);
        }
    }
}
