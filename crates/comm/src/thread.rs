//! Real multi-threaded transport.
//!
//! One OS thread per rank, messages over `std::sync::mpsc` channels. This
//! backend
//! proves the comm/runtime stack runs on genuine concurrency (no virtual
//! clock, no global serialization). It is used by tests comparing results
//! across transports and by the quickstart example's `--threads` mode.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};

use crate::transport::{HostMeters, Transport};

/// A message in flight between threads.
#[derive(Debug)]
struct Envelope {
    src: usize,
    tag: u64,
    payload: Vec<u8>,
}

/// Per-rank endpoint of the thread transport. Not `Sync`: each rank thread
/// owns its endpoint.
pub struct ThreadTransport {
    rank: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet matched (wrong src/tag for the
    /// receive in progress).
    stash: RefCell<Vec<Envelope>>,
    epoch: Instant,
    /// Set when any rank panics, so blocked receivers unwind instead of
    /// hanging (every rank holds sender clones, so channels never
    /// disconnect on their own).
    poison: Arc<AtomicBool>,
}

impl ThreadTransport {
    fn take_stashed(&self, src: Option<usize>, tag: u64) -> Option<Envelope> {
        let mut stash = self.stash.borrow_mut();
        let pos = stash
            .iter()
            .position(|e| e.tag == tag && src.is_none_or(|s| s == e.src))?;
        Some(stash.remove(pos))
    }

    /// Non-blocking probe: a matching message if one is already delivered,
    /// stashing any non-matching deliveries for later receives. Used by
    /// tests that emulate timeout-guarded receives without wall-clock
    /// waits (poll this together with the fault condition).
    pub fn try_recv_bytes(&self, src: usize, tag: u64) -> Option<Vec<u8>> {
        if let Some(e) = self.take_stashed(Some(src), tag) {
            return Some(e.payload);
        }
        loop {
            match self.inbox.try_recv() {
                Ok(e) => {
                    if e.tag == tag && e.src == src {
                        return Some(e.payload);
                    }
                    self.stash.borrow_mut().push(e);
                }
                Err(_) => return None,
            }
        }
    }

    fn recv_matching(&self, src: Option<usize>, tag: u64) -> Envelope {
        if let Some(e) = self.take_stashed(src, tag) {
            return e;
        }
        loop {
            match self.inbox.recv_timeout(Duration::from_millis(20)) {
                Ok(e) => {
                    if e.tag == tag && src.is_none_or(|s| s == e.src) {
                        return e;
                    }
                    self.stash.borrow_mut().push(e);
                }
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        !self.poison.load(Ordering::Acquire),
                        "thread transport: a peer rank panicked while rank {} was receiving",
                        self.rank
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("thread transport: all peers disconnected while receiving")
                }
            }
        }
    }
}

impl Transport for ThreadTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.senders.len()
    }

    fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        let env = Envelope {
            src: self.rank,
            tag,
            payload,
        };
        self.senders[dst]
            .send(env)
            .expect("thread transport: receiver disconnected");
    }

    fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8> {
        self.recv_matching(Some(src), tag).payload
    }

    fn recv_bytes_any(&self, tag: u64) -> (usize, Vec<u8>) {
        let e = self.recv_matching(None, tag);
        (e.src, e.payload)
    }

    /// Real wall-clock timed receive: gives up once `timeout_seconds`
    /// elapse without a matching delivery (non-matching deliveries are
    /// stashed, as in the blocking receive).
    fn recv_bytes_timeout(
        &self,
        src: usize,
        tag: u64,
        timeout_seconds: f64,
    ) -> Result<Vec<u8>, crate::transport::PeerTimeout> {
        if let Some(e) = self.take_stashed(Some(src), tag) {
            return Ok(e.payload);
        }
        let deadline = Instant::now() + Duration::from_secs_f64(timeout_seconds.max(0.0));
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(crate::transport::PeerTimeout {
                    src: Some(src),
                    tag,
                });
            }
            match self
                .inbox
                .recv_timeout((deadline - now).min(Duration::from_millis(20)))
            {
                Ok(e) => {
                    if e.tag == tag && e.src == src {
                        return Ok(e.payload);
                    }
                    self.stash.borrow_mut().push(e);
                }
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        !self.poison.load(Ordering::Acquire),
                        "thread transport: a peer rank panicked while rank {} was receiving",
                        self.rank
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("thread transport: all peers disconnected while receiving")
                }
            }
        }
    }

    fn wtime(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

impl HostMeters for ThreadTransport {
    /// Real `ps` parsing is out of scope for the in-process backend; report
    /// an otherwise-idle node (just the application).
    fn dmpi_ps(&self, _r: usize) -> u32 {
        1
    }

    /// Stand-in: wall time since transport creation. Adequate for the
    /// runtime's relative comparisons when nodes are threads of one
    /// process.
    fn proc_cpu_seconds(&self) -> f64 {
        self.wtime()
    }

    fn proc_tick_seconds(&self) -> f64 {
        0.0
    }
}

/// Runs `f` as an SPMD program over `n` rank threads and returns each
/// rank's result. Panics (with the original payload) if any rank panics;
/// remaining ranks observing a closed channel panic too, so the process
/// does not hang.
pub fn run_threads<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ThreadTransport) -> R + Send + Sync,
{
    assert!(n > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(n);
    let mut inboxes = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = channel();
        senders.push(s);
        inboxes.push(r);
    }
    let epoch = Instant::now();
    let poison = Arc::new(AtomicBool::new(false));
    let f = &f;
    let senders = &senders;
    // Each thread returns its inbox receiver alongside its result so every
    // channel stays connected until the whole scope joins: a rank may finish
    // with control messages still addressed to peers that exited first
    // (pipelined monitoring), and those sends must not observe a
    // disconnected channel.
    let results: Vec<(std::thread::Result<R>, Receiver<Envelope>)> = std::thread::scope(|s| {
        let handles: Vec<_> = inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                let poison = Arc::clone(&poison);
                s.spawn(move || {
                    let t = ThreadTransport {
                        rank,
                        senders: senders.clone(),
                        inbox,
                        stash: RefCell::new(Vec::new()),
                        epoch,
                        poison: Arc::clone(&poison),
                    };
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&t)));
                    if out.is_err() {
                        poison.store(true, Ordering::Release);
                    }
                    let ThreadTransport { inbox, .. } = t;
                    (out, inbox)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|e| {
                    // Join only fails if the thread panicked outside
                    // catch_unwind; substitute a fresh (disconnected) inbox.
                    let (_, dead_inbox) = channel();
                    (Err(e), dead_inbox)
                })
            })
            .collect()
    });
    // Prefer a root-cause payload: one that is not the secondary
    // "peer rank panicked" unwind.
    let mut secondary = None;
    let mut oks = Vec::with_capacity(n);
    for (r, _inbox) in results {
        match r {
            Ok(v) => oks.push(v),
            Err(e) => {
                let is_secondary = e
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("a peer rank panicked"));
                if is_secondary {
                    secondary = Some(e);
                } else {
                    std::panic::resume_unwind(e);
                }
            }
        }
    }
    if let Some(e) = secondary {
        std::panic::resume_unwind(e);
    }
    oks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let out = run_threads(2, |t| {
            if t.rank() == 0 {
                t.send_bytes(1, 1, vec![42]);
                t.recv_bytes(1, 2)
            } else {
                let m = t.recv_bytes(0, 1);
                t.send_bytes(0, 2, vec![m[0] + 1]);
                m
            }
        });
        assert_eq!(out[0], vec![43]);
        assert_eq!(out[1], vec![42]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = run_threads(2, |t| {
            if t.rank() == 0 {
                t.send_bytes(1, 10, vec![10]);
                t.send_bytes(1, 20, vec![20]);
                vec![]
            } else {
                let b = t.recv_bytes(0, 20);
                let a = t.recv_bytes(0, 10);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![10, 20]);
    }

    #[test]
    fn fifo_per_pair_and_tag() {
        let out = run_threads(2, |t| {
            if t.rank() == 0 {
                for i in 0..50u8 {
                    t.send_bytes(1, 1, vec![i]);
                }
                vec![]
            } else {
                (0..50).map(|_| t.recv_bytes(0, 1)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn recv_any_from_many() {
        let out = run_threads(4, |t| {
            if t.rank() == 0 {
                let mut got: Vec<usize> = (0..3).map(|_| t.recv_bytes_any(9).0).collect();
                got.sort_unstable();
                got
            } else {
                t.send_bytes(0, 9, vec![]);
                vec![]
            }
        });
        assert_eq!(out[0], vec![1, 2, 3]);
    }

    #[test]
    fn wtime_monotone() {
        let out = run_threads(1, |t| {
            let a = t.wtime();
            let b = t.wtime();
            b >= a
        });
        assert!(out[0]);
    }

    #[test]
    #[should_panic(expected = "worker died")]
    fn panic_propagates() {
        let _ = run_threads(2, |t| {
            if t.rank() == 1 {
                panic!("worker died");
            }
            // Rank 0 would block forever; the closed channel unwinds it.
            t.recv_bytes(1, 1)
        });
    }
}
