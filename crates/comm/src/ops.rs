//! Typed point-to-point operations and collectives.
//!
//! [`CommOps`] is an extension trait with a blanket implementation for
//! every [`Transport`], so both the simulator and the thread backend get
//! the same algorithms: dissemination barrier, binomial broadcast and
//! reduction, ring allgather, linear (buffered) scatter/gather/alltoall.
//! All collectives operate over a [`Group`] and must be called by every
//! group member in the same order (SPMD discipline).
//!
//! # Size-adaptive algorithms
//!
//! `bcast` and `allreduce` pick their algorithm from the payload size,
//! the way production MPI implementations do:
//!
//! * below [`COLL_LARGE_THRESHOLD`] bytes (or in groups smaller than
//!   [`LARGE_ALGO_MIN_RANKS`]) they run the latency-optimal binomial
//!   tree / reduce-then-broadcast;
//! * at or above it, `bcast` switches to a van de Geijn scatter +
//!   ring-allgather and `allreduce` to a ring reduce-scatter +
//!   allgather, both bandwidth-optimal: every rank sends and receives
//!   ≈ `2·len·(n−1)/n` bytes instead of hot tree nodes handling
//!   `len·log n`.
//!
//! Only the broadcast root knows the payload size, so every broadcast
//! message carries an 8-byte frame header (total payload bytes plus an
//! algorithm bit). Both algorithms deliver a rank's *first* message from
//! the same binomial-tree parent — the large path routes per-block framed
//! messages down the tree — so non-roots read the header and follow the
//! root's choice without a separate size exchange.
//!
//! # One-copy discipline
//!
//! Each payload is serialized exactly once per collective; relays forward
//! received byte buffers as-is (cloning only when a message fans out to
//! several children, moving to the last), and ring stages pass received
//! buffers along by move while decoding blocks straight into the
//! preallocated result. Every remaining memcpy is charged to the
//! [`crate::datatype::BYTES_COPIED`] counter, which `bench_comm` and the
//! equivalence suite use to hold the line.

use dynmpi_obs as obs;

use crate::datatype::{
    append_bytes, counted_to_vec, from_bytes, from_bytes_into, to_bytes, write_bytes_at, Pod,
};
use crate::group::Group;
use crate::transport::{Transport, RESERVED_TAG_BASE};

// Internal tag sub-spaces, one per collective kind. Tag reuse across
// successive collectives is safe because both transports deliver FIFO per
// (source, destination) pair.
const TAG_BARRIER: u64 = RESERVED_TAG_BASE;
const TAG_BCAST: u64 = RESERVED_TAG_BASE + 0x1000;
const TAG_BCAST_RING: u64 = RESERVED_TAG_BASE + 0x1001;
const TAG_REDUCE: u64 = RESERVED_TAG_BASE + 0x2000;
const TAG_GATHER: u64 = RESERVED_TAG_BASE + 0x3000;
const TAG_SCATTER: u64 = RESERVED_TAG_BASE + 0x4000;
const TAG_ALLGATHER: u64 = RESERVED_TAG_BASE + 0x5000;
const TAG_ALLTOALL: u64 = RESERVED_TAG_BASE + 0x6000;
const TAG_ALLREDUCE_RS: u64 = RESERVED_TAG_BASE + 0x7000;
const TAG_ALLREDUCE_AG: u64 = RESERVED_TAG_BASE + 0x7001;

/// Payload size in bytes at which `bcast` and `allreduce` switch from the
/// latency-optimal tree algorithms to the bandwidth-optimal scatter-based
/// ones. 64 KiB mirrors the MPICH/Open MPI crossover region for
/// switched-Ethernet clusters like the paper's testbed.
pub const COLL_LARGE_THRESHOLD: usize = 64 * 1024;

/// Minimum group size for the large-message algorithms; below this the
/// tree variants move the same bytes with fewer messages.
pub const LARGE_ALGO_MIN_RANKS: usize = 4;

// Broadcast frame header: a little-endian u64 whose low 63 bits are the
// total payload byte length and whose top bit selects the algorithm.
const FRAME_LEN: usize = 8;
const FRAME_VDG: u64 = 1 << 63;

fn frame_header(bytes: &[u8]) -> u64 {
    assert!(
        bytes.len() >= FRAME_LEN,
        "bcast message missing frame header"
    );
    u64::from_le_bytes(bytes[..FRAME_LEN].try_into().unwrap())
}

/// Builds `[header | bytes-of(data)]` with a single payload copy.
fn frame_slice<P: Pod>(header: u64, data: &[P]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_LEN + std::mem::size_of_val(data));
    out.extend_from_slice(&header.to_le_bytes());
    append_bytes(data, &mut out);
    out
}

/// Clone of a relay buffer, charged to the copy counter.
fn counted_clone(bytes: &[u8]) -> Vec<u8> {
    crate::datatype::count_copied(bytes.len());
    bytes.to_vec()
}

fn check_app_tag(tag: u64) {
    assert!(
        tag < RESERVED_TAG_BASE,
        "application tag {tag} collides with the reserved collective tag space"
    );
}

/// Largest power of two ≤ `x` (x ≥ 1).
fn prev_power_of_two(x: usize) -> usize {
    1 << (usize::BITS - 1 - x.leading_zeros())
}

/// Lowest set bit of `vr` — the binomial-tree receive mask; callers
/// guarantee `vr > 0`.
fn lowbit(vr: usize) -> usize {
    vr & vr.wrapping_neg()
}

/// Even element partition used by the scatter-based collectives: block
/// `i` of `n` over `elems` elements, as a half-open range.
fn block_bounds(elems: usize, n: usize, i: usize) -> (usize, usize) {
    let q = elems / n;
    let r = elems % n;
    let lo = i * q + i.min(r);
    (lo, lo + q + usize::from(i < r))
}

/// Wraps one collective call in a `cat = "comm"` trace span stamped with
/// the transport's (virtual) clock. Composite collectives nest naturally:
/// an `allreduce` span contains its `reduce` and `bcast` children. The
/// span closes with `ranks` (participating group size) and `bytes` (this
/// rank's local payload contribution) attributes for trace analysis.
fn traced<R>(
    t: &(impl Transport + ?Sized),
    name: &'static str,
    ranks: usize,
    bytes: usize,
    body: impl FnOnce() -> R,
) -> R {
    if !obs::enabled() {
        return body();
    }
    obs::span_begin("comm", name, t.now_ns());
    obs::count(&format!("comm.coll.{name}"), 1);
    let out = body();
    obs::span_end_args(
        t.now_ns(),
        vec![
            ("ranks".to_string(), obs::Json::UInt(ranks as u64)),
            ("bytes".to_string(), obs::Json::UInt(bytes as u64)),
        ],
    );
    out
}

// ---------------------------------------------------------------------------
// Broadcast internals (free functions so both the adaptive entry point and
// the forced per-algorithm methods share them).
// ---------------------------------------------------------------------------

/// Receives the first broadcast message: always from the binomial-tree
/// parent, whichever algorithm the root chose.
fn bcast_recv_first<T: Transport + ?Sized>(t: &T, g: &Group, root: usize, vr: usize) -> Vec<u8> {
    let n = g.size();
    let parent_vr = vr - lowbit(vr);
    let parent = g.world_rank((parent_vr + root) % n);
    t.recv_bytes(parent, TAG_BCAST)
}

/// Binomial-tree broadcast, root side: frame once, clone for every child
/// but the last, move into the last send.
fn bcast_binomial_root<T: Transport + ?Sized, P: Pod>(
    t: &T,
    g: &Group,
    root: usize,
    data: &[P],
) -> Vec<P> {
    let n = g.size();
    let header = std::mem::size_of_val(data) as u64;
    let framed = frame_slice(header, data);
    forward_framed(t, g, root, 0, n.next_power_of_two(), framed);
    counted_to_vec(data)
}

/// Binomial-tree broadcast, non-root side, after the framed payload has
/// been received from the parent.
fn bcast_binomial_nonroot<T: Transport + ?Sized, P: Pod>(
    t: &T,
    g: &Group,
    root: usize,
    vr: usize,
    first: Vec<u8>,
) -> Vec<P> {
    let header = frame_header(&first);
    assert_eq!(
        (header & !FRAME_VDG) as usize,
        first.len() - FRAME_LEN,
        "bcast frame length mismatch"
    );
    let out = from_bytes(&first[FRAME_LEN..]);
    forward_framed(t, g, root, vr, lowbit(vr), first);
    out
}

/// Relays a framed payload to every subtree below `recv_mask`: clones for
/// all children but the last, which receives the buffer by move.
fn forward_framed<T: Transport + ?Sized>(
    t: &T,
    g: &Group,
    root: usize,
    vr: usize,
    recv_mask: usize,
    framed: Vec<u8>,
) {
    let n = g.size();
    let mut dsts = Vec::new();
    let mut m = recv_mask >> 1;
    while m > 0 {
        if vr + m < n {
            dsts.push(g.world_rank((vr + m + root) % n));
        }
        m >>= 1;
    }
    let last = dsts.len().saturating_sub(1);
    let mut framed = Some(framed);
    for (i, dst) in dsts.into_iter().enumerate() {
        let msg = if i == last {
            framed.take().expect("framed buffer consumed early")
        } else {
            counted_clone(framed.as_ref().expect("framed buffer present"))
        };
        t.send_bytes(dst, TAG_BCAST, msg);
    }
}

/// Ring allgather of framed blocks shared by both van de Geijn sides:
/// sends `mine` as round 0, then forwards each received buffer by move,
/// decoding blocks into `out` (when given) as they arrive.
fn vdg_ring<T: Transport + ?Sized, P: Pod>(
    t: &T,
    g: &Group,
    root: usize,
    vr: usize,
    elems: usize,
    mine: Vec<u8>,
    mut out: Option<&mut [P]>,
) {
    let n = g.size();
    let next = g.world_rank(((vr + 1) % n + root) % n);
    let prev = g.world_rank(((vr + n - 1) % n + root) % n);
    let mut carry = mine;
    for k in 0..n - 1 {
        t.send_bytes(next, TAG_BCAST_RING, carry);
        let rx = t.recv_bytes(prev, TAG_BCAST_RING);
        let b = (vr + n - k - 1) % n;
        let (lo, hi) = block_bounds(elems, n, b);
        assert_eq!(
            rx.len() - FRAME_LEN,
            (hi - lo) * std::mem::size_of::<P>(),
            "bcast ring block length mismatch"
        );
        if let Some(out) = out.as_deref_mut() {
            write_bytes_at(out, lo, &rx[FRAME_LEN..]);
        }
        carry = rx;
    }
}

/// Van de Geijn broadcast, root side: scatter per-block framed messages
/// down the binomial tree (relays forward them by move), then circulate
/// all blocks on a ring.
fn bcast_vdg_root<T: Transport + ?Sized, P: Pod>(
    t: &T,
    g: &Group,
    root: usize,
    data: &[P],
) -> Vec<P> {
    let n = g.size();
    let elems = data.len();
    let header = FRAME_VDG | std::mem::size_of_val(data) as u64;
    // Ascending block order keeps each child's first message its own
    // block, so it can classify the algorithm and start its ring early.
    for b in 1..n {
        let child = prev_power_of_two(b);
        let (lo, hi) = block_bounds(elems, n, b);
        t.send_bytes(
            g.world_rank((child + root) % n),
            TAG_BCAST,
            frame_slice(header, &data[lo..hi]),
        );
    }
    let (lo, hi) = block_bounds(elems, n, 0);
    vdg_ring::<T, P>(
        t,
        g,
        root,
        0,
        elems,
        frame_slice(header, &data[lo..hi]),
        None,
    );
    counted_to_vec(data)
}

/// Van de Geijn broadcast, non-root side, after the rank's own framed
/// block has been received from the tree parent.
fn bcast_vdg_nonroot<T: Transport + ?Sized, P: Pod>(
    t: &T,
    g: &Group,
    root: usize,
    vr: usize,
    first: Vec<u8>,
) -> Vec<P> {
    let n = g.size();
    let esz = std::mem::size_of::<P>();
    let total = (frame_header(&first) & !FRAME_VDG) as usize;
    assert!(
        total.is_multiple_of(esz),
        "bcast payload of {total} bytes is not a multiple of element size {esz}"
    );
    let elems = total / esz;
    let mut out = vec![P::ZERO; elems];
    let (lo, hi) = block_bounds(elems, n, vr);
    assert_eq!(
        first.len() - FRAME_LEN,
        (hi - lo) * esz,
        "bcast scatter block mismatch"
    );
    write_bytes_at(&mut out, lo, &first[FRAME_LEN..]);
    // Route the rest of the subtree's blocks: each arrives from the
    // parent in ascending block order and is forwarded untouched.
    let parent = g.world_rank((vr - lowbit(vr) + root) % n);
    let seg_end = (vr + lowbit(vr)).min(n);
    for b in vr + 1..seg_end {
        let msg = t.recv_bytes(parent, TAG_BCAST);
        let child = vr + prev_power_of_two(b - vr);
        t.send_bytes(g.world_rank((child + root) % n), TAG_BCAST, msg);
    }
    vdg_ring::<T, P>(t, g, root, vr, elems, first, Some(&mut out));
    out
}

/// Typed p2p and collective operations over any transport.
pub trait CommOps: Transport {
    /// Sends a typed slice to `dst`.
    fn send_slice<P: Pod>(&self, dst: usize, tag: u64, data: &[P]) {
        check_app_tag(tag);
        self.send_bytes(dst, tag, to_bytes(data));
    }

    /// Receives a typed vector from `src`.
    fn recv_vec<P: Pod>(&self, src: usize, tag: u64) -> Vec<P> {
        check_app_tag(tag);
        from_bytes(&self.recv_bytes(src, tag))
    }

    /// Receives a typed vector from any rank.
    fn recv_vec_any<P: Pod>(&self, tag: u64) -> (usize, Vec<P>) {
        check_app_tag(tag);
        let (src, bytes) = self.recv_bytes_any(tag);
        (src, from_bytes(&bytes))
    }

    /// Buffered exchange: send to one neighbor, receive from another.
    /// Safe against deadlock because sends are buffered.
    fn sendrecv<P: Pod>(
        &self,
        dst: usize,
        send_tag: u64,
        data: &[P],
        src: usize,
        recv_tag: u64,
    ) -> Vec<P> {
        traced(self, "sendrecv", 2, std::mem::size_of_val(data), || {
            self.send_slice(dst, send_tag, data);
            self.recv_vec(src, recv_tag)
        })
    }

    /// Dissemination barrier over `g`. O(log n) rounds.
    fn barrier(&self, g: &Group) {
        traced(self, "barrier", g.size(), 0, || {
            let n = g.size();
            let rel = g.rel_unchecked();
            let mut k = 1usize;
            let mut round = 0u64;
            while k < n {
                let to = g.world_rank((rel + k) % n);
                let from = g.world_rank((rel + n - k) % n);
                self.send_bytes(to, TAG_BARRIER + round, Vec::new());
                let _ = self.recv_bytes(from, TAG_BARRIER + round);
                k <<= 1;
                round += 1;
            }
        })
    }

    /// Size-adaptive broadcast from relative rank `root`. The root passes
    /// `Some(data)`; everyone receives the broadcast value. Payloads of
    /// [`COLL_LARGE_THRESHOLD`] bytes and up in groups of at least
    /// [`LARGE_ALGO_MIN_RANKS`] take the scatter–allgather path; smaller
    /// ones the binomial tree. Non-roots follow the root's choice via the
    /// frame header, so only the root needs to know the size.
    fn bcast<P: Pod>(&self, g: &Group, root: usize, data: Option<&[P]>) -> Vec<P> {
        traced(
            self,
            "bcast",
            g.size(),
            data.map(std::mem::size_of_val).unwrap_or(0),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                assert!(root < n, "bcast root {root} out of group of {n}");
                let vr = (rel + n - root) % n;
                if n == 1 {
                    return counted_to_vec(data.expect("bcast root must supply data"));
                }
                if vr == 0 {
                    let data = data.expect("bcast root must supply data");
                    if std::mem::size_of_val(data) >= COLL_LARGE_THRESHOLD
                        && n >= LARGE_ALGO_MIN_RANKS
                    {
                        obs::count("comm.coll.bcast_large", 1);
                        bcast_vdg_root(self, g, root, data)
                    } else {
                        bcast_binomial_root(self, g, root, data)
                    }
                } else {
                    let first = bcast_recv_first(self, g, root, vr);
                    if frame_header(&first) & FRAME_VDG != 0 {
                        obs::count("comm.coll.bcast_large", 1);
                        bcast_vdg_nonroot(self, g, root, vr, first)
                    } else {
                        bcast_binomial_nonroot(self, g, root, vr, first)
                    }
                }
            },
        )
    }

    /// Broadcast forced onto the binomial tree regardless of size — the
    /// small-message algorithm. Exposed for the equivalence suite and the
    /// micro-bench; production code should call [`CommOps::bcast`].
    fn bcast_binomial<P: Pod>(&self, g: &Group, root: usize, data: Option<&[P]>) -> Vec<P> {
        traced(
            self,
            "bcast",
            g.size(),
            data.map(std::mem::size_of_val).unwrap_or(0),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                assert!(root < n, "bcast root {root} out of group of {n}");
                let vr = (rel + n - root) % n;
                if n == 1 {
                    return counted_to_vec(data.expect("bcast root must supply data"));
                }
                if vr == 0 {
                    bcast_binomial_root(self, g, root, data.expect("bcast root must supply data"))
                } else {
                    let first = bcast_recv_first(self, g, root, vr);
                    assert_eq!(
                        frame_header(&first) & FRAME_VDG,
                        0,
                        "bcast algorithm mismatch: root chose scatter-allgather"
                    );
                    bcast_binomial_nonroot(self, g, root, vr, first)
                }
            },
        )
    }

    /// Broadcast forced onto the van de Geijn scatter + ring-allgather
    /// regardless of size — the large-message algorithm. Exposed for the
    /// equivalence suite and the micro-bench.
    fn bcast_scatter_allgather<P: Pod>(
        &self,
        g: &Group,
        root: usize,
        data: Option<&[P]>,
    ) -> Vec<P> {
        traced(
            self,
            "bcast",
            g.size(),
            data.map(std::mem::size_of_val).unwrap_or(0),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                assert!(root < n, "bcast root {root} out of group of {n}");
                let vr = (rel + n - root) % n;
                if vr == 0 {
                    let data = data.expect("bcast root must supply data");
                    if n == 1 {
                        return counted_to_vec(data);
                    }
                    bcast_vdg_root(self, g, root, data)
                } else {
                    let first = bcast_recv_first(self, g, root, vr);
                    assert_ne!(
                        frame_header(&first) & FRAME_VDG,
                        0,
                        "bcast algorithm mismatch: root chose the binomial tree"
                    );
                    bcast_vdg_nonroot(self, g, root, vr, first)
                }
            },
        )
    }

    /// Binomial-tree reduction to relative rank `root` with a commutative,
    /// associative combine `f(acc, incoming)`. Returns `Some` on the root.
    /// Incoming payloads decode into one scratch buffer reused across
    /// rounds; the accumulator is serialized once, on the single send.
    fn reduce<P: Pod>(
        &self,
        g: &Group,
        root: usize,
        data: &[P],
        f: impl Fn(&mut [P], &[P]),
    ) -> Option<Vec<P>> {
        traced(
            self,
            "reduce",
            g.size(),
            std::mem::size_of_val(data),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                assert!(root < n, "reduce root {root} out of group of {n}");
                let vr = (rel + n - root) % n;
                let mut acc = counted_to_vec(data);
                let mut incoming: Vec<P> = Vec::new();
                let mut mask = 1usize;
                while mask < n {
                    if vr & mask == 0 {
                        let peer_vr = vr | mask;
                        if peer_vr < n {
                            let src = g.world_rank((peer_vr + root) % n);
                            from_bytes_into(&self.recv_bytes(src, TAG_REDUCE), &mut incoming);
                            assert_eq!(incoming.len(), acc.len(), "reduce length mismatch");
                            f(&mut acc, &incoming);
                        }
                    } else {
                        let peer_vr = vr & !mask;
                        let dst = g.world_rank((peer_vr + root) % n);
                        self.send_bytes(dst, TAG_REDUCE, to_bytes(&acc));
                        return None;
                    }
                    mask <<= 1;
                }
                Some(acc)
            },
        )
    }

    /// Size-adaptive allreduce: everyone gets the combined value. Small
    /// payloads reduce to rank 0 and broadcast back; payloads of
    /// [`COLL_LARGE_THRESHOLD`] bytes and up in groups of at least
    /// [`LARGE_ALGO_MIN_RANKS`] run the ring reduce-scatter + allgather
    /// instead. `f` must be commutative and associative; note the two
    /// paths may associate floating-point reductions differently.
    fn allreduce<P: Pod>(&self, g: &Group, data: &[P], f: impl Fn(&mut [P], &[P])) -> Vec<P> {
        traced(
            self,
            "allreduce",
            g.size(),
            std::mem::size_of_val(data),
            || {
                if std::mem::size_of_val(data) >= COLL_LARGE_THRESHOLD
                    && g.size() >= LARGE_ALGO_MIN_RANKS
                {
                    obs::count("comm.coll.allreduce_large", 1);
                    self.allreduce_ring(g, data, f)
                } else {
                    let reduced = self.reduce(g, 0, data, f);
                    self.bcast(g, 0, reduced.as_deref())
                }
            },
        )
    }

    /// Ring reduce-scatter + ring allgather allreduce — the large-message
    /// algorithm, callable directly for the equivalence suite and the
    /// micro-bench. Each rank sends and receives `2·(n−1)/n` of the
    /// payload; forwarded allgather blocks move without re-serialization.
    fn allreduce_ring<P: Pod>(&self, g: &Group, data: &[P], f: impl Fn(&mut [P], &[P])) -> Vec<P> {
        traced(
            self,
            "allreduce_ring",
            g.size(),
            std::mem::size_of_val(data),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                let mut acc = counted_to_vec(data);
                if n == 1 {
                    return acc;
                }
                let elems = data.len();
                let next = g.world_rank((rel + 1) % n);
                let prev = g.world_rank((rel + n - 1) % n);
                // Reduce-scatter: after round k every rank has folded k+1
                // contributions into block (rel − k); after n−1 rounds rank
                // `rel` owns the fully reduced block (rel + 1) mod n.
                let mut incoming: Vec<P> = Vec::new();
                for k in 0..n - 1 {
                    let sb = (rel + n - k) % n;
                    let (slo, shi) = block_bounds(elems, n, sb);
                    self.send_bytes(next, TAG_ALLREDUCE_RS, to_bytes(&acc[slo..shi]));
                    let rb = (rel + n - k - 1) % n;
                    let (rlo, rhi) = block_bounds(elems, n, rb);
                    from_bytes_into(&self.recv_bytes(prev, TAG_ALLREDUCE_RS), &mut incoming);
                    assert_eq!(incoming.len(), rhi - rlo, "allreduce block length mismatch");
                    f(&mut acc[rlo..rhi], &incoming);
                }
                // Allgather: circulate the reduced blocks; each received
                // buffer is written into `acc` and forwarded by move.
                let mut carry: Option<Vec<u8>> = None;
                for k in 0..n - 1 {
                    let msg = carry.take().unwrap_or_else(|| {
                        let (lo, hi) = block_bounds(elems, n, (rel + 1) % n);
                        to_bytes(&acc[lo..hi])
                    });
                    self.send_bytes(next, TAG_ALLREDUCE_AG, msg);
                    let rb = (rel + n - k) % n;
                    let (rlo, _) = block_bounds(elems, n, rb);
                    let rx = self.recv_bytes(prev, TAG_ALLREDUCE_AG);
                    write_bytes_at(&mut acc, rlo, &rx);
                    carry = Some(rx);
                }
                acc
            },
        )
    }

    /// Sum-allreduce for f64 slices.
    fn allreduce_sum_f64(&self, g: &Group, data: &[f64]) -> Vec<f64> {
        self.allreduce(g, data, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc) {
                *a += b;
            }
        })
    }

    /// Max-allreduce for f64 slices.
    fn allreduce_max_f64(&self, g: &Group, data: &[f64]) -> Vec<f64> {
        self.allreduce(g, data, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc) {
                *a = a.max(*b);
            }
        })
    }

    /// Max-allreduce for u64 slices.
    fn allreduce_max_u64(&self, g: &Group, data: &[u64]) -> Vec<u64> {
        self.allreduce(g, data, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc) {
                *a = (*a).max(*b);
            }
        })
    }

    /// Gathers variable-length contributions to relative rank `root`.
    /// Returns `Some(per-member vectors, indexed by relative rank)` on the
    /// root.
    fn gatherv<P: Pod>(&self, g: &Group, root: usize, data: &[P]) -> Option<Vec<Vec<P>>> {
        traced(
            self,
            "gatherv",
            g.size(),
            std::mem::size_of_val(data),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                assert!(root < n);
                if rel != root {
                    self.send_bytes(g.world_rank(root), TAG_GATHER, to_bytes(data));
                    return None;
                }
                let mut out: Vec<Vec<P>> = Vec::with_capacity(n);
                for r in 0..n {
                    if r == root {
                        out.push(counted_to_vec(data));
                    } else {
                        out.push(from_bytes(&self.recv_bytes(g.world_rank(r), TAG_GATHER)));
                    }
                }
                Some(out)
            },
        )
    }

    /// Scatters per-member vectors from relative rank `root`; each member
    /// receives its slice. The root passes `Some(parts)` with
    /// `parts.len() == g.size()`.
    fn scatterv<P: Pod>(&self, g: &Group, root: usize, parts: Option<&[Vec<P>]>) -> Vec<P> {
        traced(
            self,
            "scatterv",
            g.size(),
            parts
                .map(|ps| ps.iter().map(|p| std::mem::size_of_val(p.as_slice())).sum())
                .unwrap_or(0),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                assert!(root < n);
                if rel == root {
                    let parts = parts.expect("scatterv root must supply parts");
                    assert_eq!(parts.len(), n, "scatterv parts must match group size");
                    for (r, part) in parts.iter().enumerate() {
                        if r != root {
                            self.send_bytes(g.world_rank(r), TAG_SCATTER, to_bytes(part));
                        }
                    }
                    counted_to_vec(&parts[root])
                } else {
                    from_bytes(&self.recv_bytes(g.world_rank(root), TAG_SCATTER))
                }
            },
        )
    }

    /// Ring allgather of variable-length contributions: returns all
    /// members' data, indexed by relative rank. n−1 rounds; own data is
    /// serialized once and every received buffer is decoded into the
    /// result, then forwarded by move — one copy per block per hop.
    fn allgatherv<P: Pod>(&self, g: &Group, data: &[P]) -> Vec<Vec<P>> {
        traced(
            self,
            "allgatherv",
            g.size(),
            std::mem::size_of_val(data),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                let mut out: Vec<Vec<P>> = (0..n).map(|_| Vec::new()).collect();
                out[rel] = counted_to_vec(data);
                if n == 1 {
                    return out;
                }
                let next = g.world_rank((rel + 1) % n);
                let prev = g.world_rank((rel + n - 1) % n);
                let mut carry: Option<Vec<u8>> = None;
                for k in 0..n - 1 {
                    let msg = carry.take().unwrap_or_else(|| to_bytes(data));
                    self.send_bytes(next, TAG_ALLGATHER, msg);
                    let recv_idx = (rel + n - k - 1) % n;
                    let rx = self.recv_bytes(prev, TAG_ALLGATHER);
                    out[recv_idx] = from_bytes(&rx);
                    carry = Some(rx);
                }
                out
            },
        )
    }

    /// Personalized all-to-all: member `i` sends `parts[j]` to member `j`;
    /// returns what everyone sent to me, indexed by relative rank. Linear
    /// buffered exchange, staggered to spread NIC load.
    fn alltoallv<P: Pod>(&self, g: &Group, parts: &[Vec<P>]) -> Vec<Vec<P>> {
        traced(
            self,
            "alltoallv",
            g.size(),
            parts
                .iter()
                .map(|p| std::mem::size_of_val(p.as_slice()))
                .sum(),
            || {
                let n = g.size();
                let rel = g.rel_unchecked();
                assert_eq!(parts.len(), n, "alltoallv parts must match group size");
                for k in 1..n {
                    let dst = (rel + k) % n;
                    self.send_bytes(g.world_rank(dst), TAG_ALLTOALL, to_bytes(&parts[dst]));
                }
                let mut out: Vec<Vec<P>> = (0..n).map(|_| Vec::new()).collect();
                out[rel] = counted_to_vec(&parts[rel]);
                for k in 1..n {
                    let src = (rel + n - k) % n;
                    out[src] = from_bytes(&self.recv_bytes(g.world_rank(src), TAG_ALLTOALL));
                }
                out
            },
        )
    }
}

impl<T: Transport + ?Sized> CommOps for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::run_threads;

    fn world(t: &impl Transport) -> Group {
        Group::world(t.rank(), t.size())
    }

    #[test]
    fn barrier_completes_various_sizes() {
        for n in [1usize, 2, 3, 5, 8] {
            run_threads(n, |t| {
                for _ in 0..3 {
                    t.barrier(&world(t));
                }
            });
        }
    }

    #[test]
    fn bcast_all_roots_all_sizes() {
        for n in [1usize, 2, 3, 4, 7] {
            for root in 0..n {
                let out = run_threads(n, |t| {
                    let g = world(t);
                    let data: Vec<u64> = vec![99, root as u64];
                    let src = (t.rank() == root).then_some(&data[..]);
                    t.bcast(&g, root, src)
                });
                for v in out {
                    assert_eq!(v, vec![99, root as u64]);
                }
            }
        }
    }

    #[test]
    fn bcast_large_payload_dispatches_to_scatter_allgather() {
        // 128 KiB of u64 over 5 ranks crosses COLL_LARGE_THRESHOLD.
        let elems = (2 * COLL_LARGE_THRESHOLD) / 8;
        let data: Vec<u64> = (0..elems as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for root in [0usize, 3] {
            let expect = data.clone();
            let data = data.clone();
            let out = run_threads(5, move |t| {
                let g = world(t);
                let src = (t.rank() == root).then_some(&data[..]);
                t.bcast(&g, root, src)
            });
            for v in out {
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn forced_bcast_algorithms_agree_at_any_size() {
        for n in [2usize, 3, 5, 8] {
            for root in [0, n - 1] {
                let data: Vec<u32> = (0..97u32).map(|i| i * 7 + root as u32).collect();
                let expect = data.clone();
                let out = run_threads(n, move |t| {
                    let g = world(t);
                    let src = (t.rank() == root).then_some(&data[..]);
                    let tree = t.bcast_binomial(&g, root, src);
                    let vdg = t.bcast_scatter_allgather(&g, root, src);
                    (tree, vdg)
                });
                for (tree, vdg) in out {
                    assert_eq!(tree, expect);
                    assert_eq!(vdg, expect);
                }
            }
        }
    }

    #[test]
    fn reduce_sum_matches_sequential() {
        for n in [1usize, 2, 3, 6, 8] {
            let out = run_threads(n, |t| {
                let g = world(t);
                let mine = vec![t.rank() as f64, 1.0];
                t.reduce(&g, 0, &mine, |a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                })
            });
            let expect: f64 = (0..n).map(|r| r as f64).sum();
            assert_eq!(out[0].as_ref().unwrap(), &vec![expect, n as f64]);
            assert!(out[1..].iter().all(|o| o.is_none()));
        }
    }

    #[test]
    fn allreduce_everyone_agrees() {
        let out = run_threads(5, |t| {
            let g = world(t);
            t.allreduce_sum_f64(&g, &[t.rank() as f64 + 1.0])
        });
        for v in out {
            assert_eq!(v, vec![15.0]);
        }
    }

    #[test]
    fn allreduce_max() {
        let out = run_threads(4, |t| {
            let g = world(t);
            t.allreduce_max_u64(&g, &[t.rank() as u64 * 10, 7])
        });
        for v in out {
            assert_eq!(v, vec![30, 7]);
        }
    }

    #[test]
    fn allreduce_ring_matches_tree_small_and_large() {
        for n in [1usize, 2, 3, 5, 8] {
            // Exactly representable values so any association is identical.
            let out = run_threads(n, move |t| {
                let g = world(t);
                let mine: Vec<u64> = (0..1000).map(|i| i + t.rank() as u64).collect();
                let sum = |a: &mut [u64], b: &[u64]| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                };
                let ring = t.allreduce_ring(&g, &mine, sum);
                let tree = {
                    let red = t.reduce(&g, 0, &mine, sum);
                    t.bcast_binomial(&g, 0, red.as_deref())
                };
                (ring, tree)
            });
            for (ring, tree) in out {
                assert_eq!(ring, tree);
            }
        }
    }

    #[test]
    fn gatherv_variable_lengths() {
        let out = run_threads(4, |t| {
            let g = world(t);
            let mine: Vec<u32> = (0..t.rank() as u32).collect();
            t.gatherv(&g, 2, &mine)
        });
        let rootwise = out[2].as_ref().unwrap();
        for (r, v) in rootwise.iter().enumerate() {
            assert_eq!(v, &(0..r as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatterv_distributes() {
        let out = run_threads(3, |t| {
            let g = world(t);
            let parts: Vec<Vec<i64>> = (0..3).map(|r| vec![r as i64; r + 1]).collect();
            let src = (t.rank() == 0).then_some(&parts[..]);
            t.scatterv(&g, 0, src)
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![r as i64; r + 1]);
        }
    }

    #[test]
    fn allgatherv_ring() {
        for n in [1usize, 2, 3, 5] {
            let out = run_threads(n, |t| {
                let g = world(t);
                let mine: Vec<u64> = vec![t.rank() as u64; t.rank() + 1];
                t.allgatherv(&g, &mine)
            });
            for v in out {
                for (r, block) in v.iter().enumerate() {
                    assert_eq!(block, &vec![r as u64; r + 1]);
                }
            }
        }
    }

    #[test]
    fn alltoallv_personalized() {
        let out = run_threads(3, |t| {
            let g = world(t);
            let parts: Vec<Vec<u32>> = (0..3).map(|j| vec![(t.rank() * 10 + j) as u32]).collect();
            t.alltoallv(&g, &parts)
        });
        for (me, v) in out.iter().enumerate() {
            for (src, block) in v.iter().enumerate() {
                assert_eq!(block, &vec![(src * 10 + me) as u32]);
            }
        }
    }

    #[test]
    fn collectives_on_subgroup() {
        // World of 4; group excludes rank 2 (a "removed" node).
        let out = run_threads(4, |t| {
            if t.rank() == 2 {
                return vec![];
            }
            let g = Group::new(vec![0, 1, 3], t.rank());
            t.allreduce_sum_f64(&g, &[1.0])
        });
        assert_eq!(out[0], vec![3.0]);
        assert_eq!(out[1], vec![3.0]);
        assert_eq!(out[3], vec![3.0]);
        assert!(out[2].is_empty());
    }

    #[test]
    fn sendrecv_ring_shift() {
        let out = run_threads(4, |t| {
            let n = t.size();
            let r = t.rank();
            let got = t.sendrecv((r + 1) % n, 5, &[r as u64], (r + n - 1) % n, 5);
            got[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn block_bounds_partition_exactly() {
        for (elems, n) in [(10, 3), (7, 8), (0, 4), (16, 4), (5, 5)] {
            let mut covered = 0;
            for i in 0..n {
                let (lo, hi) = block_bounds(elems, n, i);
                assert_eq!(
                    lo,
                    covered,
                    "block {i} must start where {} ended",
                    i.wrapping_sub(1)
                );
                assert!(hi >= lo);
                covered = hi;
            }
            assert_eq!(covered, elems);
        }
    }

    #[test]
    #[should_panic(expected = "reserved collective tag space")]
    fn reserved_tags_rejected_for_app_traffic() {
        run_threads(1, |t| {
            t.send_slice(0, RESERVED_TAG_BASE, &[0u8]);
        });
    }
}
