//! Typed point-to-point operations and collectives.
//!
//! [`CommOps`] is an extension trait with a blanket implementation for
//! every [`Transport`], so both the simulator and the thread backend get
//! the same algorithms: dissemination barrier, binomial broadcast and
//! reduction, ring allgather, linear (buffered) scatter/gather/alltoall.
//! All collectives operate over a [`Group`] and must be called by every
//! group member in the same order (SPMD discipline).

use dynmpi_obs as obs;

use crate::datatype::{from_bytes, to_bytes, Pod};
use crate::group::Group;
use crate::transport::{Transport, RESERVED_TAG_BASE};

// Internal tag sub-spaces, one per collective kind. Tag reuse across
// successive collectives is safe because both transports deliver FIFO per
// (source, destination) pair.
const TAG_BARRIER: u64 = RESERVED_TAG_BASE;
const TAG_BCAST: u64 = RESERVED_TAG_BASE + 0x1000;
const TAG_REDUCE: u64 = RESERVED_TAG_BASE + 0x2000;
const TAG_GATHER: u64 = RESERVED_TAG_BASE + 0x3000;
const TAG_SCATTER: u64 = RESERVED_TAG_BASE + 0x4000;
const TAG_ALLGATHER: u64 = RESERVED_TAG_BASE + 0x5000;
const TAG_ALLTOALL: u64 = RESERVED_TAG_BASE + 0x6000;

fn check_app_tag(tag: u64) {
    assert!(
        tag < RESERVED_TAG_BASE,
        "application tag {tag} collides with the reserved collective tag space"
    );
}

/// Wraps one collective call in a `cat = "comm"` trace span stamped with
/// the transport's (virtual) clock. Composite collectives nest naturally:
/// an `allreduce` span contains its `reduce` and `bcast` children.
fn traced<R>(t: &(impl Transport + ?Sized), name: &'static str, body: impl FnOnce() -> R) -> R {
    if !obs::enabled() {
        return body();
    }
    obs::span_begin("comm", name, t.now_ns());
    obs::count(&format!("comm.coll.{name}"), 1);
    let out = body();
    obs::span_end(t.now_ns());
    out
}

/// Typed p2p and collective operations over any transport.
pub trait CommOps: Transport {
    /// Sends a typed slice to `dst`.
    fn send_slice<P: Pod>(&self, dst: usize, tag: u64, data: &[P]) {
        check_app_tag(tag);
        self.send_bytes(dst, tag, to_bytes(data));
    }

    /// Receives a typed vector from `src`.
    fn recv_vec<P: Pod>(&self, src: usize, tag: u64) -> Vec<P> {
        check_app_tag(tag);
        from_bytes(&self.recv_bytes(src, tag))
    }

    /// Receives a typed vector from any rank.
    fn recv_vec_any<P: Pod>(&self, tag: u64) -> (usize, Vec<P>) {
        check_app_tag(tag);
        let (src, bytes) = self.recv_bytes_any(tag);
        (src, from_bytes(&bytes))
    }

    /// Buffered exchange: send to one neighbor, receive from another.
    /// Safe against deadlock because sends are buffered.
    fn sendrecv<P: Pod>(
        &self,
        dst: usize,
        send_tag: u64,
        data: &[P],
        src: usize,
        recv_tag: u64,
    ) -> Vec<P> {
        traced(self, "sendrecv", || {
            self.send_slice(dst, send_tag, data);
            self.recv_vec(src, recv_tag)
        })
    }

    /// Dissemination barrier over `g`. O(log n) rounds.
    fn barrier(&self, g: &Group) {
        traced(self, "barrier", || {
            let n = g.size();
            let rel = g.rel_unchecked();
            let mut k = 1usize;
            let mut round = 0u64;
            while k < n {
                let to = g.world_rank((rel + k) % n);
                let from = g.world_rank((rel + n - k) % n);
                self.send_bytes(to, TAG_BARRIER + round, Vec::new());
                let _ = self.recv_bytes(from, TAG_BARRIER + round);
                k <<= 1;
                round += 1;
            }
        })
    }

    /// Binomial-tree broadcast from relative rank `root`. The root passes
    /// `Some(data)`; everyone receives the broadcast value.
    fn bcast<P: Pod>(&self, g: &Group, root: usize, data: Option<&[P]>) -> Vec<P> {
        traced(self, "bcast", || {
            let n = g.size();
            let rel = g.rel_unchecked();
            assert!(root < n, "bcast root {root} out of group of {n}");
            let vr = (rel + n - root) % n;
            let mut buf: Option<Vec<P>> = if vr == 0 {
                Some(data.expect("bcast root must supply data").to_vec())
            } else {
                None
            };
            // Receive phase: find the bit where we hang off the tree.
            let mut mask = 1usize;
            while mask < n {
                if vr & mask != 0 {
                    let src_vr = vr - mask;
                    let src = g.world_rank((src_vr + root) % n);
                    buf = Some(from_bytes(&self.recv_bytes(src, TAG_BCAST)));
                    break;
                }
                mask <<= 1;
            }
            // Forward phase: relay to every subtree hanging below our receive
            // bit (for the root, below the first power of two ≥ n).
            let data = buf.expect("bcast: no data after receive phase");
            let mut m = mask >> 1;
            while m > 0 {
                if vr + m < n {
                    let dst = g.world_rank((vr + m + root) % n);
                    self.send_bytes(dst, TAG_BCAST, to_bytes(&data));
                }
                m >>= 1;
            }
            data
        })
    }

    /// Binomial-tree reduction to relative rank `root` with a commutative,
    /// associative combine `f(acc, incoming)`. Returns `Some` on the root.
    fn reduce<P: Pod>(
        &self,
        g: &Group,
        root: usize,
        data: &[P],
        f: impl Fn(&mut [P], &[P]),
    ) -> Option<Vec<P>> {
        traced(self, "reduce", || {
            let n = g.size();
            let rel = g.rel_unchecked();
            assert!(root < n, "reduce root {root} out of group of {n}");
            let vr = (rel + n - root) % n;
            let mut acc = data.to_vec();
            let mut mask = 1usize;
            while mask < n {
                if vr & mask == 0 {
                    let peer_vr = vr | mask;
                    if peer_vr < n {
                        let src = g.world_rank((peer_vr + root) % n);
                        let incoming: Vec<P> = from_bytes(&self.recv_bytes(src, TAG_REDUCE));
                        assert_eq!(incoming.len(), acc.len(), "reduce length mismatch");
                        f(&mut acc, &incoming);
                    }
                } else {
                    let peer_vr = vr & !mask;
                    let dst = g.world_rank((peer_vr + root) % n);
                    self.send_bytes(dst, TAG_REDUCE, to_bytes(&acc));
                    return None;
                }
                mask <<= 1;
            }
            Some(acc)
        })
    }

    /// Reduction + broadcast: everyone gets the combined value.
    fn allreduce<P: Pod>(&self, g: &Group, data: &[P], f: impl Fn(&mut [P], &[P])) -> Vec<P> {
        traced(self, "allreduce", || {
            let reduced = self.reduce(g, 0, data, f);
            self.bcast(g, 0, reduced.as_deref())
        })
    }

    /// Sum-allreduce for f64 slices.
    fn allreduce_sum_f64(&self, g: &Group, data: &[f64]) -> Vec<f64> {
        self.allreduce(g, data, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc) {
                *a += b;
            }
        })
    }

    /// Max-allreduce for f64 slices.
    fn allreduce_max_f64(&self, g: &Group, data: &[f64]) -> Vec<f64> {
        self.allreduce(g, data, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc) {
                *a = a.max(*b);
            }
        })
    }

    /// Max-allreduce for u64 slices.
    fn allreduce_max_u64(&self, g: &Group, data: &[u64]) -> Vec<u64> {
        self.allreduce(g, data, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc) {
                *a = (*a).max(*b);
            }
        })
    }

    /// Gathers variable-length contributions to relative rank `root`.
    /// Returns `Some(per-member vectors, indexed by relative rank)` on the
    /// root.
    fn gatherv<P: Pod>(&self, g: &Group, root: usize, data: &[P]) -> Option<Vec<Vec<P>>> {
        traced(self, "gatherv", || {
            let n = g.size();
            let rel = g.rel_unchecked();
            assert!(root < n);
            if rel != root {
                self.send_bytes(g.world_rank(root), TAG_GATHER, to_bytes(data));
                return None;
            }
            let mut out: Vec<Vec<P>> = Vec::with_capacity(n);
            for r in 0..n {
                if r == root {
                    out.push(data.to_vec());
                } else {
                    out.push(from_bytes(&self.recv_bytes(g.world_rank(r), TAG_GATHER)));
                }
            }
            Some(out)
        })
    }

    /// Scatters per-member vectors from relative rank `root`; each member
    /// receives its slice. The root passes `Some(parts)` with
    /// `parts.len() == g.size()`.
    fn scatterv<P: Pod>(&self, g: &Group, root: usize, parts: Option<&[Vec<P>]>) -> Vec<P> {
        traced(self, "scatterv", || {
            let n = g.size();
            let rel = g.rel_unchecked();
            assert!(root < n);
            if rel == root {
                let parts = parts.expect("scatterv root must supply parts");
                assert_eq!(parts.len(), n, "scatterv parts must match group size");
                for (r, part) in parts.iter().enumerate() {
                    if r != root {
                        self.send_bytes(g.world_rank(r), TAG_SCATTER, to_bytes(part));
                    }
                }
                parts[root].clone()
            } else {
                from_bytes(&self.recv_bytes(g.world_rank(root), TAG_SCATTER))
            }
        })
    }

    /// Ring allgather of variable-length contributions: returns all
    /// members' data, indexed by relative rank. n−1 rounds, each passing
    /// one block around the ring.
    fn allgatherv<P: Pod>(&self, g: &Group, data: &[P]) -> Vec<Vec<P>> {
        traced(self, "allgatherv", || {
            let n = g.size();
            let rel = g.rel_unchecked();
            let mut blocks: Vec<Option<Vec<P>>> = vec![None; n];
            blocks[rel] = Some(data.to_vec());
            let next = g.world_rank((rel + 1) % n);
            let prev = g.world_rank((rel + n - 1) % n);
            for k in 0..n.saturating_sub(1) {
                let send_idx = (rel + n - k) % n;
                let recv_idx = (rel + n - k - 1) % n;
                let outgoing = blocks[send_idx].as_ref().expect("ring invariant");
                self.send_bytes(next, TAG_ALLGATHER, to_bytes(outgoing));
                blocks[recv_idx] = Some(from_bytes(&self.recv_bytes(prev, TAG_ALLGATHER)));
            }
            blocks
                .into_iter()
                .map(|b| b.expect("ring complete"))
                .collect()
        })
    }

    /// Personalized all-to-all: member `i` sends `parts[j]` to member `j`;
    /// returns what everyone sent to me, indexed by relative rank. Linear
    /// buffered exchange, staggered to spread NIC load.
    fn alltoallv<P: Pod>(&self, g: &Group, parts: &[Vec<P>]) -> Vec<Vec<P>> {
        traced(self, "alltoallv", || {
            let n = g.size();
            let rel = g.rel_unchecked();
            assert_eq!(parts.len(), n, "alltoallv parts must match group size");
            for k in 1..n {
                let dst = (rel + k) % n;
                self.send_bytes(g.world_rank(dst), TAG_ALLTOALL, to_bytes(&parts[dst]));
            }
            let mut out: Vec<Vec<P>> = (0..n).map(|_| Vec::new()).collect();
            out[rel] = parts[rel].clone();
            for k in 1..n {
                let src = (rel + n - k) % n;
                out[src] = from_bytes(&self.recv_bytes(g.world_rank(src), TAG_ALLTOALL));
            }
            out
        })
    }
}

impl<T: Transport + ?Sized> CommOps for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::run_threads;

    fn world(t: &impl Transport) -> Group {
        Group::world(t.rank(), t.size())
    }

    #[test]
    fn barrier_completes_various_sizes() {
        for n in [1usize, 2, 3, 5, 8] {
            run_threads(n, |t| {
                for _ in 0..3 {
                    t.barrier(&world(t));
                }
            });
        }
    }

    #[test]
    fn bcast_all_roots_all_sizes() {
        for n in [1usize, 2, 3, 4, 7] {
            for root in 0..n {
                let out = run_threads(n, |t| {
                    let g = world(t);
                    let data: Vec<u64> = vec![99, root as u64];
                    let src = (t.rank() == root).then_some(&data[..]);
                    t.bcast(&g, root, src)
                });
                for v in out {
                    assert_eq!(v, vec![99, root as u64]);
                }
            }
        }
    }

    #[test]
    fn reduce_sum_matches_sequential() {
        for n in [1usize, 2, 3, 6, 8] {
            let out = run_threads(n, |t| {
                let g = world(t);
                let mine = vec![t.rank() as f64, 1.0];
                t.reduce(&g, 0, &mine, |a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                })
            });
            let expect: f64 = (0..n).map(|r| r as f64).sum();
            assert_eq!(out[0].as_ref().unwrap(), &vec![expect, n as f64]);
            assert!(out[1..].iter().all(|o| o.is_none()));
        }
    }

    #[test]
    fn allreduce_everyone_agrees() {
        let out = run_threads(5, |t| {
            let g = world(t);
            t.allreduce_sum_f64(&g, &[t.rank() as f64 + 1.0])
        });
        for v in out {
            assert_eq!(v, vec![15.0]);
        }
    }

    #[test]
    fn allreduce_max() {
        let out = run_threads(4, |t| {
            let g = world(t);
            t.allreduce_max_u64(&g, &[t.rank() as u64 * 10, 7])
        });
        for v in out {
            assert_eq!(v, vec![30, 7]);
        }
    }

    #[test]
    fn gatherv_variable_lengths() {
        let out = run_threads(4, |t| {
            let g = world(t);
            let mine: Vec<u32> = (0..t.rank() as u32).collect();
            t.gatherv(&g, 2, &mine)
        });
        let rootwise = out[2].as_ref().unwrap();
        for (r, v) in rootwise.iter().enumerate() {
            assert_eq!(v, &(0..r as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatterv_distributes() {
        let out = run_threads(3, |t| {
            let g = world(t);
            let parts: Vec<Vec<i64>> = (0..3).map(|r| vec![r as i64; r + 1]).collect();
            let src = (t.rank() == 0).then_some(&parts[..]);
            t.scatterv(&g, 0, src)
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![r as i64; r + 1]);
        }
    }

    #[test]
    fn allgatherv_ring() {
        for n in [1usize, 2, 3, 5] {
            let out = run_threads(n, |t| {
                let g = world(t);
                let mine: Vec<u64> = vec![t.rank() as u64; t.rank() + 1];
                t.allgatherv(&g, &mine)
            });
            for v in out {
                for (r, block) in v.iter().enumerate() {
                    assert_eq!(block, &vec![r as u64; r + 1]);
                }
            }
        }
    }

    #[test]
    fn alltoallv_personalized() {
        let out = run_threads(3, |t| {
            let g = world(t);
            let parts: Vec<Vec<u32>> = (0..3).map(|j| vec![(t.rank() * 10 + j) as u32]).collect();
            t.alltoallv(&g, &parts)
        });
        for (me, v) in out.iter().enumerate() {
            for (src, block) in v.iter().enumerate() {
                assert_eq!(block, &vec![(src * 10 + me) as u32]);
            }
        }
    }

    #[test]
    fn collectives_on_subgroup() {
        // World of 4; group excludes rank 2 (a "removed" node).
        let out = run_threads(4, |t| {
            if t.rank() == 2 {
                return vec![];
            }
            let g = Group::new(vec![0, 1, 3], t.rank());
            t.allreduce_sum_f64(&g, &[1.0])
        });
        assert_eq!(out[0], vec![3.0]);
        assert_eq!(out[1], vec![3.0]);
        assert_eq!(out[3], vec![3.0]);
        assert!(out[2].is_empty());
    }

    #[test]
    fn sendrecv_ring_shift() {
        let out = run_threads(4, |t| {
            let n = t.size();
            let r = t.rank();
            let got = t.sendrecv((r + 1) % n, 5, &[r as u64], (r + n - 1) % n, 5);
            got[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "reserved collective tag space")]
    fn reserved_tags_rejected_for_app_traffic() {
        run_threads(1, |t| {
            t.send_slice(0, RESERVED_TAG_BASE, &[0u8]);
        });
    }
}
