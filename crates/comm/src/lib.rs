//! # dynmpi-comm — MPI-like message passing layer
//!
//! Typed point-to-point communication and collectives over a pluggable
//! [`Transport`]:
//!
//! * [`SimTransport`] — backed by the `dynmpi-sim` virtual-time cluster;
//!   used by every paper experiment.
//! * [`ThreadTransport`] — real threads and OS channels; proves the
//!   stack runs on genuine concurrency and anchors cross-transport tests.
//!
//! Collectives ([`CommOps`]) operate over a [`Group`] of world ranks, which
//! is how Dyn-MPI's *relative ranks* work after node removal: the active
//! nodes form a group, and all global operations run over it.
//!
//! ```
//! use dynmpi_comm::{run_threads, CommOps, Group, Transport};
//!
//! let sums = run_threads(4, |t| {
//!     let g = Group::world(t.rank(), t.size());
//!     t.allreduce_sum_f64(&g, &[1.0])[0]
//! });
//! assert_eq!(sums, vec![4.0; 4]);
//! ```

mod datatype;
mod group;
mod ops;
mod sim_transport;
mod thread;
mod transport;

pub use datatype::{
    from_bytes, from_bytes_into, to_bytes, to_bytes_into, write_bytes_at, Pod, BYTES_COPIED,
};
pub use group::Group;
pub use ops::{CommOps, COLL_LARGE_THRESHOLD, LARGE_ALGO_MIN_RANKS};
pub use sim_transport::SimTransport;
pub use thread::{run_threads, ThreadTransport};
pub use transport::{HostMeters, PeerTimeout, Transport, RESERVED_TAG_BASE};
