//! Rank groups (sub-communicators).
//!
//! Dyn-MPI removes nodes from the computation (§4.4), after which
//! collectives run over the *active* subset with **relative ranks**
//! (§2.2). A [`Group`] maps relative ranks to world ranks.

/// An ordered subset of world ranks. Relative rank = index in `members`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    members: Vec<usize>,
    my_rel: Option<usize>,
}

impl Group {
    /// The full world `0..size` as seen from world rank `me`.
    pub fn world(me: usize, size: usize) -> Group {
        assert!(me < size, "rank {me} out of world 0..{size}");
        Group {
            members: (0..size).collect(),
            my_rel: Some(me),
        }
    }

    /// A group over `members` (world ranks, strictly increasing) as seen
    /// from world rank `me` (which may or may not be a member).
    pub fn new(members: Vec<usize>, me: usize) -> Group {
        assert!(!members.is_empty(), "empty group");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "group members must be strictly increasing: {members:?}"
        );
        let my_rel = members.iter().position(|&m| m == me);
        Group { members, my_rel }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// My relative rank, if I am a member.
    pub fn rel(&self) -> Option<usize> {
        self.my_rel
    }

    /// My relative rank; panics if I am not a member.
    pub fn rel_unchecked(&self) -> usize {
        self.my_rel
            .expect("calling rank is not a member of this group")
    }

    /// World rank of relative rank `rel`.
    pub fn world_rank(&self, rel: usize) -> usize {
        self.members[rel]
    }

    /// Is `world` a member?
    pub fn contains(&self, world: usize) -> bool {
        self.members.binary_search(&world).is_ok()
    }

    /// All member world ranks.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Relative rank of a world rank, if a member.
    pub fn rel_of(&self, world: usize) -> Option<usize> {
        self.members.binary_search(&world).ok()
    }

    /// A new group with `world` added as a member (growth: node rejoin or
    /// a fresh arrival beyond the seed world), as seen from world rank
    /// `me`. No-op clone when `world` is already a member.
    pub fn with_member(&self, world: usize, me: usize) -> Group {
        let mut members = self.members.clone();
        if let Err(pos) = members.binary_search(&world) {
            members.insert(pos, world);
        }
        Group::new(members, me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group() {
        let g = Group::world(2, 4);
        assert_eq!(g.size(), 4);
        assert_eq!(g.rel(), Some(2));
        assert_eq!(g.world_rank(3), 3);
        assert!(g.contains(0));
    }

    #[test]
    fn subset_relative_ranks() {
        // Node 2 removed from a 4-node world.
        let g = Group::new(vec![0, 1, 3], 3);
        assert_eq!(g.size(), 3);
        assert_eq!(g.rel(), Some(2));
        assert_eq!(g.world_rank(2), 3);
        assert_eq!(g.rel_of(3), Some(2));
        assert_eq!(g.rel_of(2), None);
        assert!(!g.contains(2));
    }

    #[test]
    fn non_member_view() {
        let g = Group::new(vec![0, 1, 3], 2);
        assert_eq!(g.rel(), None);
        assert!(std::panic::catch_unwind(|| g.rel_unchecked()).is_err());
    }

    #[test]
    fn with_member_grows_beyond_original_world() {
        // A 3-node world grows with arrival rank 4 (beyond the seed size),
        // then readmits previously removed rank 2.
        let g = Group::new(vec![0, 1, 3], 0);
        let grown = g.with_member(4, 0);
        assert_eq!(grown.members(), &[0, 1, 3, 4]);
        assert_eq!(grown.rel_of(4), Some(3));
        let full = grown.with_member(2, 4);
        assert_eq!(full.members(), &[0, 1, 2, 3, 4]);
        assert_eq!(full.rel(), Some(4));
        // Adding an existing member is a no-op clone.
        assert_eq!(full.with_member(2, 4), full);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_members_rejected() {
        let _ = Group::new(vec![0, 2, 1], 0);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_rejected() {
        let _ = Group::new(vec![], 0);
    }
}
