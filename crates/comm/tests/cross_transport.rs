//! Cross-transport equivalence: every collective must produce identical
//! results on the real thread transport and the virtual-time simulator.

use dynmpi_comm::{run_threads, CommOps, Group, SimTransport, Transport};
use dynmpi_sim::{Cluster, NodeSpec};

/// Runs `f` on both transports with `n` ranks and returns both results.
fn on_both<R, F>(n: usize, f: F) -> (Vec<R>, Vec<R>)
where
    R: Send + Clone + Default,
    F: Fn(&dyn DynTransport) -> R + Send + Sync,
{
    let threads = run_threads(n, |t| f(&TransportObj(t)));
    let sim = Cluster::homogeneous(n, NodeSpec::default())
        .run_spmd(|ctx| {
            let t = SimTransport::new(ctx);
            f(&TransportObj(&t))
        })
        .results;
    (threads, sim)
}

/// Object-safe shim so one closure can serve both concrete transports.
trait DynTransport {
    fn rank(&self) -> usize;
    fn size(&self) -> usize;
    fn allreduce_sum(&self, g: &Group, data: &[f64]) -> Vec<f64>;
    fn allgatherv(&self, g: &Group, data: &[u64]) -> Vec<Vec<u64>>;
    fn bcast(&self, g: &Group, root: usize, data: Option<&[i64]>) -> Vec<i64>;
    fn alltoallv(&self, g: &Group, parts: &[Vec<u32>]) -> Vec<Vec<u32>>;
    fn sendrecv_ring(&self, val: u64) -> u64;
    /// Adaptive bcast plus both forced algorithms, in that order.
    fn bcast_all_algos(&self, g: &Group, root: usize, data: Option<&[u64]>) -> [Vec<u64>; 3];
    /// Ring allreduce plus the reduce+bcast tree path, in that order.
    fn allreduce_both_algos(&self, g: &Group, data: &[f64]) -> [Vec<f64>; 2];
}

struct TransportObj<'a, T: Transport>(&'a T);

impl<T: Transport> DynTransport for TransportObj<'_, T> {
    fn rank(&self) -> usize {
        self.0.rank()
    }
    fn size(&self) -> usize {
        self.0.size()
    }
    fn allreduce_sum(&self, g: &Group, data: &[f64]) -> Vec<f64> {
        self.0.allreduce_sum_f64(g, data)
    }
    fn allgatherv(&self, g: &Group, data: &[u64]) -> Vec<Vec<u64>> {
        self.0.allgatherv(g, data)
    }
    fn bcast(&self, g: &Group, root: usize, data: Option<&[i64]>) -> Vec<i64> {
        self.0.bcast(g, root, data)
    }
    fn alltoallv(&self, g: &Group, parts: &[Vec<u32>]) -> Vec<Vec<u32>> {
        self.0.alltoallv(g, parts)
    }
    fn sendrecv_ring(&self, val: u64) -> u64 {
        let n = self.0.size();
        let r = self.0.rank();
        let got = self.0.sendrecv((r + 1) % n, 3, &[val], (r + n - 1) % n, 3);
        got[0]
    }
    fn bcast_all_algos(&self, g: &Group, root: usize, data: Option<&[u64]>) -> [Vec<u64>; 3] {
        [
            self.0.bcast(g, root, data),
            self.0.bcast_binomial(g, root, data),
            self.0.bcast_scatter_allgather(g, root, data),
        ]
    }
    fn allreduce_both_algos(&self, g: &Group, data: &[f64]) -> [Vec<f64>; 2] {
        let sum = |a: &mut [f64], b: &[f64]| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        };
        let ring = self.0.allreduce_ring(g, data, sum);
        let reduced = self.0.reduce(g, 0, data, sum);
        let tree = self.0.bcast_binomial(g, 0, reduced.as_deref());
        [ring, tree]
    }
}

#[test]
fn allreduce_matches_across_transports() {
    for n in [1usize, 2, 5] {
        let (a, b) = on_both(n, |t| {
            let g = Group::world(t.rank(), t.size());
            t.allreduce_sum(&g, &[t.rank() as f64, 1.0])
        });
        assert_eq!(a, b, "n={n}");
        assert_eq!(a[0], vec![(0..n).map(|r| r as f64).sum(), n as f64]);
    }
}

#[test]
fn allgatherv_matches_across_transports() {
    let (a, b) = on_both(4, |t| {
        let g = Group::world(t.rank(), t.size());
        t.allgatherv(&g, &vec![t.rank() as u64; t.rank() + 1])
    });
    assert_eq!(a, b);
    for blocks in &a {
        for (r, blk) in blocks.iter().enumerate() {
            assert_eq!(blk, &vec![r as u64; r + 1]);
        }
    }
}

#[test]
fn bcast_matches_across_transports() {
    for root in 0..3 {
        let (a, b) = on_both(3, move |t| {
            let g = Group::world(t.rank(), t.size());
            let data = [root as i64, -7];
            t.bcast(&g, root, (t.rank() == root).then_some(&data[..]))
        });
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v == &[root as i64, -7]));
    }
}

#[test]
fn alltoallv_matches_across_transports() {
    let (a, b) = on_both(3, |t| {
        let g = Group::world(t.rank(), t.size());
        let parts: Vec<Vec<u32>> = (0..3)
            .map(|j| vec![(t.rank() * 10 + j) as u32; j + 1])
            .collect();
        t.alltoallv(&g, &parts)
    });
    assert_eq!(a, b);
}

#[test]
fn ring_shift_matches_across_transports() {
    let (a, b) = on_both(5, |t| t.sendrecv_ring(t.rank() as u64 * 3));
    assert_eq!(a, b);
    assert_eq!(a, vec![12, 0, 3, 6, 9]);
}

/// The size-adaptive dispatch must be invisible to callers: the adaptive
/// bcast and both forced algorithms return byte-identical payloads, on
/// both transports, across group sizes, roots, and the small/large
/// threshold.
#[test]
fn bcast_algorithms_byte_identical_across_transports() {
    // 97 u64s stay under the large threshold; 16 Ki u64s (128 KiB) cross
    // it, so the adaptive path exercises both algorithms.
    for elems in [97usize, 16 * 1024] {
        for n in [1usize, 2, 3, 5, 8] {
            for root in [0, n - 1] {
                let (threads, sim) = on_both(n, move |t| {
                    let g = Group::world(t.rank(), t.size());
                    let data: Vec<u64> =
                        (0..elems as u64).map(|i| i ^ (root as u64) << 32).collect();
                    t.bcast_all_algos(&g, root, (t.rank() == root).then_some(&data))
                });
                let expect: Vec<u64> = (0..elems as u64).map(|i| i ^ (root as u64) << 32).collect();
                assert_eq!(threads, sim, "elems={elems} n={n} root={root}");
                for per_rank in &threads {
                    let [adaptive, binomial, vdg] = per_rank;
                    assert_eq!(adaptive, &expect, "elems={elems} n={n} root={root}");
                    assert_eq!(binomial, &expect, "elems={elems} n={n} root={root}");
                    assert_eq!(vdg, &expect, "elems={elems} n={n} root={root}");
                }
            }
        }
    }
}

/// Ring allreduce vs reduce+bcast on exactly representable values: the
/// two associations are byte-identical for integer-valued doubles, on
/// both transports.
#[test]
fn allreduce_algorithms_byte_identical_across_transports() {
    for elems in [64usize, 16 * 1024] {
        for n in [1usize, 2, 3, 5, 8] {
            let (threads, sim) = on_both(n, move |t| {
                let g = Group::world(t.rank(), t.size());
                // Small integers: every partial sum is exact in f64, so
                // both associations must agree bit-for-bit.
                let data: Vec<f64> = (0..elems).map(|i| ((t.rank() + i) % 13) as f64).collect();
                t.allreduce_both_algos(&g, &data)
            });
            assert_eq!(threads, sim, "elems={elems} n={n}");
            for (r, per_rank) in threads.iter().enumerate() {
                let [ring, tree] = per_rank;
                assert_eq!(ring, tree, "elems={elems} n={n} rank={r}");
                let expect: Vec<f64> = (0..elems)
                    .map(|i| (0..n).map(|rk| ((rk + i) % 13) as f64).sum())
                    .collect();
                assert_eq!(ring, &expect, "elems={elems} n={n} rank={r}");
            }
        }
    }
}

#[test]
fn subgroup_collectives_match() {
    let (a, b) = on_both(4, |t| {
        if t.rank() == 1 {
            return vec![-1.0];
        }
        let g = Group::new(vec![0, 2, 3], t.rank());
        t.allreduce_sum(&g, &[t.rank() as f64])
    });
    assert_eq!(a, b);
    assert_eq!(a[0], vec![5.0]);
    assert_eq!(a[1], vec![-1.0]);
}
