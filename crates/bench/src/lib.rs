//! # dynmpi-bench — harnesses regenerating the paper's tables and figures
//!
//! One binary per figure of the evaluation (§5), plus ablation harnesses
//! for the design decisions:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3_alloc` | §4.1/Fig. 3 — projection vs. contiguous allocation |
//! | `fig4_overall` | Fig. 4 — 4 apps × {2,4,8} nodes × {dedicated, no-adapt, Dyn-MPI} |
//! | `fig5_redist_points` | Fig. 5 — Jacobi with 0/1/2 redistribution points |
//! | `fig6_node_removal` | Fig. 6 — SOR keep-vs-drop on 8/16/32 nodes |
//! | `fig7_grace_period` | Fig. 7 — particle sim, grace period 1 vs 5 |
//! | `fig8_node_arrival` | extension — growing the job: node arrival absorption on 2/4/8 seed nodes + recovery from removal by re-adding |
//! | `tab_microbench` | §4.3 — two-node comp/comm micro-benchmarks |
//! | `ablation_balancer` | successive balancing vs relative power |
//! | `ablation_drop_mode` | physical vs logical node dropping (§2.2) |
//! | `ablation_monitor` | `dmpi_ps` vs `vmstat` load readings (§4.2) |
//! | `bench_comm` | before/after comm hot-path micro-bench (`--check` in CI) |
//! | `bench_sim` | before/after simulator fast-path micro-bench (`--check` in CI) |
//!
//! Binaries print the figure's table to stdout and append JSON rows to
//! `results/*.jsonl` for EXPERIMENTS.md. Pass `--quick` for scaled-down
//! inputs (same shapes, minutes → seconds). Pass `--trace-out PATH` on
//! the figure binaries to capture a Chrome/Perfetto trace of the run
//! (virtual timestamps; `PATH.metrics.json` gets the metrics snapshots),
//! and `--health-out PATH`/`--watch`/`--prom-out PATH` for the online
//! health monitor's snapshot JSONL, live dashboard, and
//! Prometheus-format metrics (DESIGN.md §11), and `--explain-out PATH`
//! for the decision-audit report — decision cards with counterfactuals
//! and crash flight records (DESIGN.md §15).
//! Pass `--threads N` to size the configuration-sweep worker pool
//! (default: available parallelism; output is byte-identical at any
//! value — `fig3_alloc` ignores it and stays serial because it measures
//! real wall-clock time). Pass `--shards N` to split each simulated run
//! itself across cores with conservative-lookahead engine shards —
//! again byte-identical output at any value, only wall-clock changes.
//!
//! Progress output goes through a leveled logger controlled by the
//! `DYNMPI_LOG` environment variable (`error`, `warn`, `info` — the
//! default — `debug`, `trace`, or `off`).

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use dynmpi_obs::{ExplainEngine, HealthMonitor, Json, ProfileReport, Recorder};

/// Verbosity of the bench logger, in increasing order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Off,
    Error,
    Warn,
    Info,
    Debug,
    Trace,
}

impl LogLevel {
    fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            "trace" => Some(LogLevel::Trace),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }
}

/// The active log level: `DYNMPI_LOG` if set and valid, else `info`.
pub fn log_level() -> LogLevel {
    static LEVEL: OnceLock<LogLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var("DYNMPI_LOG")
            .ok()
            .and_then(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Info)
    })
}

/// Logger backend for the `log_*` macros: writes one stderr line when
/// `level` is enabled. Use the macros, not this directly.
pub fn log_at(level: LogLevel, args: std::fmt::Arguments<'_>) {
    if level != LogLevel::Off && level <= log_level() {
        eprintln!("[{}] {}", level.tag(), args);
    }
}

/// Logs at `error` level (shown unless `DYNMPI_LOG=off`).
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => { $crate::log_at($crate::LogLevel::Error, format_args!($($arg)*)) };
}

/// Logs at `warn` level.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => { $crate::log_at($crate::LogLevel::Warn, format_args!($($arg)*)) };
}

/// Logs at `info` level (the default): per-configuration progress lines.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => { $crate::log_at($crate::LogLevel::Info, format_args!($($arg)*)) };
}

/// Logs at `debug` level: per-variant details.
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => { $crate::log_at($crate::LogLevel::Debug, format_args!($($arg)*)) };
}

/// Logs at `trace` level.
#[macro_export]
macro_rules! log_trace {
    ($($arg:tt)*) => { $crate::log_at($crate::LogLevel::Trace, format_args!($($arg)*)) };
}

/// Common CLI handling: `--quick`, an optional `--out DIR`, an optional
/// `--trace-out PATH` (Chrome trace of the instrumented runs), an optional
/// `--profile-out PATH` (critical-path & wait-state attribution report of
/// the instrumented run, JSON; the text rendering prints to stdout), an
/// optional `--health-out PATH` (online health monitor snapshots, JSONL),
/// `--watch` (live health dashboard on stderr while the instrumented run
/// executes), `--health-window MS` (monitor window width), an optional
/// `--prom-out PATH` (metrics registry in Prometheus text exposition
/// format), an optional `--explain-out PATH` (decision cards and crash
/// flight records, JSONL; the text rendering prints to stdout —
/// DESIGN.md §15), an optional `--only KEY` (restrict the sweep to
/// matching configurations, where supported), and `--threads N` (worker
/// count for the parallel configuration sweep; defaults to the machine's
/// available parallelism). Every simulated configuration is an
/// independent deterministic run, so output is byte-identical at any
/// thread count.
pub struct BenchArgs {
    pub quick: bool,
    pub out_dir: String,
    pub trace_out: Option<String>,
    pub profile_out: Option<String>,
    pub health_out: Option<String>,
    pub explain_out: Option<String>,
    pub watch: bool,
    /// Health-monitor window width in virtual milliseconds.
    pub health_window_ms: u64,
    pub prom_out: Option<String>,
    pub only: Option<String>,
    pub threads: usize,
    /// Engine shards per simulated run (`--shards N`): splits one
    /// simulation across cores with conservative-lookahead windows.
    /// Results are bit-identical at any value; only wall-clock changes.
    pub shards: usize,
}

impl BenchArgs {
    pub fn parse() -> Self {
        let mut quick = false;
        let mut out_dir = "results".to_string();
        let mut trace_out = None;
        let mut profile_out = None;
        let mut health_out = None;
        let mut explain_out = None;
        let mut watch = false;
        let mut health_window_ms = dynmpi_obs::health::DEFAULT_WINDOW_NS / 1_000_000;
        let mut prom_out = None;
        let mut only = None;
        let mut threads = dynmpi_testkit::available_threads();
        let mut shards = 1;
        let mut args = std::env::args().skip(1);
        let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => out_dir = value("--out", &mut args),
                "--trace-out" => trace_out = Some(value("--trace-out", &mut args)),
                "--profile-out" => profile_out = Some(value("--profile-out", &mut args)),
                "--health-out" => health_out = Some(value("--health-out", &mut args)),
                "--explain-out" => explain_out = Some(value("--explain-out", &mut args)),
                "--watch" => watch = true,
                "--health-window" => {
                    let v = value("--health-window", &mut args);
                    health_window_ms = v.parse().ok().filter(|&ms| ms > 0).unwrap_or_else(|| {
                        eprintln!("--health-window needs a positive integer (ms), got {v}");
                        std::process::exit(2);
                    });
                }
                "--prom-out" => prom_out = Some(value("--prom-out", &mut args)),
                "--only" => only = Some(value("--only", &mut args)),
                "--threads" => {
                    let v = value("--threads", &mut args);
                    threads = v.parse().unwrap_or_else(|_| {
                        eprintln!("--threads needs a positive integer, got {v}");
                        std::process::exit(2);
                    });
                    if threads == 0 {
                        eprintln!("--threads must be at least 1");
                        std::process::exit(2);
                    }
                }
                "--shards" => {
                    let v = value("--shards", &mut args);
                    shards = v.parse().ok().filter(|&s| s > 0).unwrap_or_else(|| {
                        eprintln!("--shards needs a positive integer, got {v}");
                        std::process::exit(2);
                    });
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--quick] [--out DIR] [--trace-out PATH] \
                         [--profile-out PATH] [--health-out PATH] \
                         [--explain-out PATH] [--watch] \
                         [--health-window MS] [--prom-out PATH] [--only KEY] \
                         [--threads N] [--shards N]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
        BenchArgs {
            quick,
            out_dir,
            trace_out,
            profile_out,
            health_out,
            explain_out,
            watch,
            health_window_ms,
            prom_out,
            only,
            threads,
            shards,
        }
    }

    /// Does any flag ask for an instrumented run?
    pub fn wants_recorder(&self) -> bool {
        self.trace_out.is_some()
            || self.profile_out.is_some()
            || self.health_out.is_some()
            || self.explain_out.is_some()
            || self.prom_out.is_some()
            || self.watch
    }

    /// Builds the [`Instrumentation`] bundle these flags ask for: the
    /// shared recorder, the streaming health monitor subscribed to it, and
    /// (with `--watch`) the live dashboard thread.
    pub fn instrumentation(&self) -> Instrumentation {
        Instrumentation::new(self)
    }

    /// Keeps a sweep configuration when `--only` is unset or matches
    /// `key` as a substring.
    pub fn keeps(&self, key: &str) -> bool {
        self.only.as_deref().is_none_or(|pat| key.contains(pat))
    }

    /// Writes whatever outputs `--trace-out`/`--profile-out` asked for
    /// from the instrumented run's recorder. (The figure binaries use
    /// [`Instrumentation::finish`], which also handles the health and
    /// Prometheus outputs; this remains for callers that only record.)
    pub fn write_outputs(&self, recorder: &Option<dynmpi_obs::Recorder>) {
        let Some(rec) = recorder else { return };
        if let Some(path) = &self.trace_out {
            write_trace(rec, path);
        }
        if let Some(path) = &self.profile_out {
            write_profile(rec, path);
        }
    }
}

/// Everything the instrumentation flags set up for one bench run: the
/// shared [`Recorder`], the streaming [`HealthMonitor`] subscribed to it
/// (for `--health-out`/`--watch`/`--prom-out`), and the live dashboard
/// thread. Create it **before** the sweep with
/// [`BenchArgs::instrumentation`], hand the recorder to exactly one sweep
/// item via [`recorder_for`](Instrumentation::recorder_for), and call
/// [`finish`](Instrumentation::finish) after the sweep to stop the watch
/// thread and write every requested output.
pub struct Instrumentation {
    recorder: Option<Recorder>,
    monitor: Option<Arc<HealthMonitor>>,
    explain: Option<Arc<ExplainEngine>>,
    watch_stop: Option<Arc<AtomicBool>>,
    watch_thread: Option<std::thread::JoinHandle<()>>,
    trace_out: Option<String>,
    profile_out: Option<String>,
    health_out: Option<String>,
    explain_out: Option<String>,
    prom_out: Option<String>,
    watch: bool,
}

/// Probes an `--*-out` destination at startup: creates its parent
/// directories and opens it for writing, so a typo'd or unwritable path
/// fails immediately with a clear message instead of panicking after the
/// sweep has run for minutes.
fn validate_out_path(flag: &str, path: &str) {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!(
                    "{flag} {path}: cannot create directory {}: {e}",
                    parent.display()
                );
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        eprintln!("{flag} {path}: not writable: {e}");
        std::process::exit(2);
    }
}

impl Instrumentation {
    fn new(args: &BenchArgs) -> Self {
        for (flag, path) in [
            ("--trace-out", &args.trace_out),
            ("--profile-out", &args.profile_out),
            ("--health-out", &args.health_out),
            ("--explain-out", &args.explain_out),
            ("--prom-out", &args.prom_out),
        ] {
            if let Some(p) = path {
                validate_out_path(flag, p);
            }
        }
        let recorder = args.wants_recorder().then(Recorder::new);
        let window_ns = args.health_window_ms * 1_000_000;
        let wants_monitor = args.health_out.is_some() || args.watch;
        let monitor = match (&recorder, wants_monitor) {
            (Some(rec), true) => {
                let mon = Arc::new(HealthMonitor::new(window_ns));
                // Subscribe before any rank scope is installed: scopes
                // capture the sink list at install time.
                rec.subscribe(mon.clone());
                Some(mon)
            }
            _ => None,
        };
        let explain = match (&recorder, args.explain_out.is_some()) {
            (Some(rec), true) => {
                let engine = Arc::new(ExplainEngine::new(window_ns));
                rec.subscribe(engine.clone());
                Some(engine)
            }
            _ => None,
        };
        let (watch_stop, watch_thread) = if args.watch {
            let stop = Arc::new(AtomicBool::new(false));
            let mon = monitor.clone().expect("watch implies monitor");
            let stop2 = stop.clone();
            let handle = std::thread::spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let frame = mon.report().render_dashboard();
                    let (hi, lo) = mon.progress();
                    // In-place redraw: home the cursor, print the frame
                    // erasing each line's tail, clear whatever an earlier
                    // (taller) frame left below, reset attributes.
                    // Deliberately no alternate screen and no cursor
                    // hiding — if the process dies mid-frame (panic
                    // elsewhere, Ctrl-C), the TTY is already in a sane
                    // state and the last frame stays readable above the
                    // shell prompt.
                    eprintln!(
                        "\x1b[H{}streamed: fastest rank {:.3}s, slowest {:.3}s\x1b[K\x1b[0J\x1b[0m",
                        frame.replace('\n', "\x1b[K\n"),
                        hi as f64 / 1e9,
                        lo as f64 / 1e9
                    );
                    let _ = std::io::stderr().flush();
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
            });
            (Some(stop), Some(handle))
        } else {
            (None, None)
        };
        Instrumentation {
            recorder,
            monitor,
            explain,
            watch_stop,
            watch_thread,
            trace_out: args.trace_out.clone(),
            profile_out: args.profile_out.clone(),
            health_out: args.health_out.clone(),
            explain_out: args.explain_out.clone(),
            prom_out: args.prom_out.clone(),
            watch: args.watch,
        }
    }

    /// The shared recorder, if any instrumentation flag was given.
    pub fn recorder(&self) -> Option<Recorder> {
        self.recorder.clone()
    }

    /// The recorder for the sweep item elected to be instrumented
    /// (`selected` true on exactly one item), `None` for the rest.
    pub fn recorder_for(&self, selected: bool) -> Option<Recorder> {
        selected.then(|| self.recorder.clone()).flatten()
    }

    /// The health monitor, when `--health-out` or `--watch` asked for one.
    pub fn monitor(&self) -> Option<&Arc<HealthMonitor>> {
        self.monitor.as_ref()
    }

    /// The decision-audit engine, when `--explain-out` asked for one.
    /// Harnesses use it to attach post-run facts (e.g. the fig9 crash
    /// harness reports whether the final checksum survived intact) before
    /// calling [`finish`](Instrumentation::finish).
    pub fn explain(&self) -> Option<&Arc<ExplainEngine>> {
        self.explain.as_ref()
    }

    /// Stops the watch thread and writes every requested output: trace,
    /// profile, health JSONL, explain JSONL, and Prometheus metrics text.
    pub fn finish(mut self) {
        if let Some(stop) = self.watch_stop.take() {
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(handle) = self.watch_thread.take() {
            let _ = handle.join();
        }
        let Some(rec) = &self.recorder else { return };
        if let Some(path) = &self.trace_out {
            write_trace(rec, path);
        }
        // One analysis pass serves both --profile-out and the explain
        // report's critical-path blame table.
        let profile =
            (self.profile_out.is_some() || self.explain_out.is_some()).then(|| rec.profile());
        if let Some(path) = &self.profile_out {
            write_profile_report(profile.as_ref().expect("computed above"), path);
        }
        if let Some(mon) = &self.monitor {
            let report = mon.report();
            if self.watch {
                // Leave the final state on screen after in-place redraws.
                eprint!("{}", report.render_dashboard());
            }
            if let Some(path) = &self.health_out {
                std::fs::write(path, report.to_jsonl()).expect("write health file");
                log_info!("wrote {path}");
            }
        }
        if let (Some(engine), Some(path)) = (&self.explain, &self.explain_out) {
            let report = engine.report();
            let blame = profile.as_ref().map_or(&[][..], |p| p.blame.as_slice());
            std::fs::write(path, report.to_jsonl(blame)).expect("write explain file");
            print!("{}", report.render_text(blame));
            log_info!("wrote {path}");
        }
        if let Some(path) = &self.prom_out {
            let text = dynmpi_obs::prometheus_text(&rec.merged_metrics());
            std::fs::write(path, text).expect("write prometheus file");
            log_info!("wrote {path}");
        }
    }
}

impl Drop for Instrumentation {
    fn drop(&mut self) {
        // `finish` drains these on the normal path; reaching here with a
        // live watch thread means the run is unwinding (a panic skipped
        // `finish`). Stop the redraw loop, leave a final readable frame,
        // and reset terminal attributes so the panic message that follows
        // lands on a sane TTY.
        if let Some(stop) = self.watch_stop.take() {
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(handle) = self.watch_thread.take() {
            let _ = handle.join();
            if let Some(mon) = &self.monitor {
                eprint!("\x1b[0m{}", mon.report().render_dashboard());
            }
            let _ = std::io::stderr().flush();
        }
    }
}

/// Appends JSON rows to `<out_dir>/<name>.jsonl`, one object per line.
pub fn write_rows(out_dir: &str, name: &str, rows: &[Json]) {
    let dir = Path::new(out_dir);
    if std::fs::create_dir_all(dir).is_err() {
        log_warn!("cannot create {out_dir}; skipping JSON output");
        return;
    }
    let path = dir.join(format!("{name}.jsonl"));
    let mut f = std::fs::File::create(&path).expect("create results file");
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    log_info!("wrote {}", path.display());
}

/// Writes the Chrome trace and the per-rank + merged metrics snapshots
/// collected by `recorder`. The trace goes to `trace_path`; the metrics
/// report goes next to it as `<trace_path>.metrics.json`.
pub fn write_trace(recorder: &dynmpi_obs::Recorder, trace_path: &str) {
    if let Some(parent) = Path::new(trace_path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    recorder
        .write_chrome_trace(trace_path)
        .expect("write trace file");
    let metrics_path = format!("{trace_path}.metrics.json");
    recorder
        .write_metrics(&metrics_path)
        .expect("write metrics file");
    log_info!("wrote {trace_path} and {metrics_path}");
}

/// Runs the trace analyzer over `recorder`'s events, writes the JSON
/// [`ProfileReport`](dynmpi_obs::ProfileReport) to `profile_path`, and
/// prints the text rendering (attribution table, top critical-path
/// segments, redistribution audits) to stdout.
pub fn write_profile(recorder: &dynmpi_obs::Recorder, profile_path: &str) {
    write_profile_report(&recorder.profile(), profile_path);
}

fn write_profile_report(report: &ProfileReport, profile_path: &str) {
    if let Some(parent) = Path::new(profile_path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    std::fs::write(profile_path, report.to_json().to_string()).expect("write profile file");
    print!("{}", report.render_text());
    log_info!("wrote {profile_path}");
}

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats seconds with 3 decimals.
pub fn fmt_s(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio with 2 decimals.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panic() {
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn rows_write_to_tmp() {
        let dir = std::env::temp_dir().join("dynmpi_bench_test");
        let rows = [
            Json::obj([("x", Json::UInt(1))]),
            Json::obj([("x", Json::UInt(2))]),
        ];
        write_rows(dir.to_str().unwrap(), "t", &rows);
        let content = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
        assert_eq!(content.lines().count(), 2);
        let first = Json::parse(content.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("x").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn log_levels_order() {
        assert!(LogLevel::Error < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Trace);
        assert_eq!(LogLevel::parse("WARN"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("bogus"), None);
        // Must not panic whatever the level.
        log_at(LogLevel::Debug, format_args!("debug line"));
        log_error!("error line {}", 1);
    }
}
