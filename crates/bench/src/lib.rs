//! # dynmpi-bench — harnesses regenerating the paper's tables and figures
//!
//! One binary per figure of the evaluation (§5), plus ablation harnesses
//! for the design decisions:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3_alloc` | §4.1/Fig. 3 — projection vs. contiguous allocation |
//! | `fig4_overall` | Fig. 4 — 4 apps × {2,4,8} nodes × {dedicated, no-adapt, Dyn-MPI} |
//! | `fig5_redist_points` | Fig. 5 — Jacobi with 0/1/2 redistribution points |
//! | `fig6_node_removal` | Fig. 6 — SOR keep-vs-drop on 8/16/32 nodes |
//! | `fig7_grace_period` | Fig. 7 — particle sim, grace period 1 vs 5 |
//! | `tab_microbench` | §4.3 — two-node comp/comm micro-benchmarks |
//! | `ablation_balancer` | successive balancing vs relative power |
//! | `ablation_drop_mode` | physical vs logical node dropping (§2.2) |
//! | `ablation_monitor` | `dmpi_ps` vs `vmstat` load readings (§4.2) |
//!
//! Binaries print the figure's table to stdout and append JSON rows to
//! `results/*.jsonl` for EXPERIMENTS.md. Pass `--quick` for scaled-down
//! inputs (same shapes, minutes → seconds).

use std::io::Write;
use std::path::Path;

use serde::Serialize;

/// Common CLI handling: `--quick` and an optional `--out DIR`.
pub struct BenchArgs {
    pub quick: bool,
    pub out_dir: String,
}

impl BenchArgs {
    pub fn parse() -> Self {
        let mut quick = false;
        let mut out_dir = "results".to_string();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => out_dir = args.next().expect("--out needs a directory"),
                "--help" | "-h" => {
                    eprintln!("usage: [--quick] [--out DIR]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
        BenchArgs { quick, out_dir }
    }
}

/// Appends serialized rows to `<out_dir>/<name>.jsonl`.
pub fn write_rows<T: Serialize>(out_dir: &str, name: &str, rows: &[T]) {
    let dir = Path::new(out_dir);
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create {out_dir}; skipping JSON output");
        return;
    }
    let path = dir.join(format!("{name}.jsonl"));
    let mut f = std::fs::File::create(&path).expect("create results file");
    for r in rows {
        writeln!(f, "{}", serde_json::to_string(r).unwrap()).unwrap();
    }
    eprintln!("wrote {}", path.display());
}

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats seconds with 3 decimals.
pub fn fmt_s(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio with 2 decimals.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panic() {
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn rows_write_to_tmp() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        let dir = std::env::temp_dir().join("dynmpi_bench_test");
        write_rows(dir.to_str().unwrap(), "t", &[R { x: 1 }, R { x: 2 }]);
        let content = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
        assert_eq!(content.lines().count(), 2);
    }
}
