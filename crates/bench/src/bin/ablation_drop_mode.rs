//! Ablation: physical vs logical node dropping (§2.2).
//!
//! Logical dropping keeps a "removed" node in the computation with a
//! minimum share so ranks stay static; physical dropping removes it and
//! reassigns relative ranks. The paper states the difference "can be
//! significant". This harness measures both on SOR with a heavily loaded
//! node.

use dynmpi::{DropPolicy, DynMpiConfig};
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment};
use dynmpi_apps::sor::SorParams;
use dynmpi_bench::{fmt_s, print_table, write_rows, BenchArgs};
use dynmpi_obs::{Json, Recorder};
use dynmpi_sim::{LoadScript, NodeSpec};

struct Row {
    table: &'static str,
    nodes: usize,
    cps: u32,
    logical_cycle_s: f64,
    physical_cycle_s: f64,
    physical_gain_pct: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table", Json::str(self.table)),
            ("nodes", Json::UInt(self.nodes as u64)),
            ("cps", Json::UInt(u64::from(self.cps))),
            ("logical_cycle_s", Json::Num(self.logical_cycle_s)),
            ("physical_cycle_s", Json::Num(self.physical_cycle_s)),
            ("physical_gain_pct", Json::Num(self.physical_gain_pct)),
        ])
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (n, iters, node) = if args.quick {
        (512, 90usize, NodeSpec::with_speed(20e6))
    } else {
        (1024, 150usize, NodeSpec::ultra5_360())
    };
    let items = [8usize, 16, 32];
    // --trace-out/--profile-out record the long physical-drop run of the
    // first configuration (8 nodes).
    let inst = args.instrumentation();
    let rows: Vec<Row> = dynmpi_testkit::sweep(&items, args.threads, |i, nodes| {
        let nodes = *nodes;
        let cps = 3u32;
        let script = LoadScript::dedicated().at_cycle(nodes - 1, 10, cps);
        let settled = |policy: DropPolicy, rec: Option<Recorder>| {
            let mk = |iters: usize, rec: Option<Recorder>| {
                let p = SorParams {
                    n,
                    iters,
                    omega: 1.5,
                    exercise_kernel: false,
                };
                run_sim_with(
                    &Experiment::new(AppSpec::Sor(p), nodes)
                        .with_node_spec(node)
                        .with_cfg(DynMpiConfig {
                            drop_policy: policy,
                            min_rows_logical: 2,
                            ..Default::default()
                        })
                        .with_script(script.clone()),
                    rec,
                )
            };
            let short = mk(iters, None);
            let long = mk(2 * iters, rec);
            (long.makespan - short.makespan) / iters as f64
        };
        let logical = settled(DropPolicy::Logical, None);
        let physical = settled(DropPolicy::Always, inst.recorder_for(i == 0));
        let gain = (logical - physical) / logical * 100.0;
        Row {
            table: "ablation_drop_mode",
            nodes,
            cps,
            logical_cycle_s: logical,
            physical_cycle_s: physical,
            physical_gain_pct: gain,
        }
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.nodes.to_string(),
                row.cps.to_string(),
                fmt_s(row.logical_cycle_s),
                fmt_s(row.physical_cycle_s),
                format!("{:+.1}%", row.physical_gain_pct),
            ]
        })
        .collect();
    print_table(
        "Ablation — settled SOR cycle time: logical vs physical node dropping (3 CPs)",
        &["nodes", "CPs", "logical(s)", "physical(s)", "physical gain"],
        &table,
    );
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "ablation_drop_mode", &json_rows);
    inst.finish();
}
