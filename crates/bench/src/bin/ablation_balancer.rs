//! Ablation: successive balancing vs relative power ("naive").
//!
//! The abstract claims a 25 % improvement over standard adaptive load
//! balancing. This harness runs SOR with both balancers across CP counts
//! and reports the settled cycle time of each.

use dynmpi::{BalancerKind, DropPolicy, DynMpiConfig};
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment};
use dynmpi_apps::sor::SorParams;
use dynmpi_bench::{fmt_s, print_table, write_rows, BenchArgs};
use dynmpi_obs::{Json, Recorder};
use dynmpi_sim::{LoadScript, NodeSpec};

struct Row {
    table: &'static str,
    nodes: usize,
    cps: u32,
    naive_cycle_s: f64,
    sb_cycle_s: f64,
    gain_pct: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table", Json::str(self.table)),
            ("nodes", Json::UInt(self.nodes as u64)),
            ("cps", Json::UInt(u64::from(self.cps))),
            ("naive_cycle_s", Json::Num(self.naive_cycle_s)),
            ("sb_cycle_s", Json::Num(self.sb_cycle_s)),
            ("gain_pct", Json::Num(self.gain_pct)),
        ])
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (n, iters, node) = if args.quick {
        (512, 90usize, NodeSpec::with_speed(20e6))
    } else {
        (1024, 150usize, NodeSpec::ultra5_360())
    };
    let items: Vec<(usize, u32)> = [8usize, 16]
        .into_iter()
        .flat_map(|nodes| [1u32, 2, 3].map(|cps| (nodes, cps)))
        .collect();
    // --trace-out/--profile-out record the long successive-balancing run
    // of the first configuration (8 nodes, 1 CP).
    let inst = args.instrumentation();
    let rows: Vec<Row> = dynmpi_testkit::sweep(&items, args.threads, |i, item| {
        let (nodes, cps) = *item;
        let script = LoadScript::dedicated().at_cycle(nodes - 1, 10, cps);
        let settled = |balancer: BalancerKind, rec: Option<Recorder>| {
            let mk = |iters: usize, rec: Option<Recorder>| {
                let p = SorParams {
                    n,
                    iters,
                    omega: 1.5,
                    exercise_kernel: false,
                };
                run_sim_with(
                    &Experiment::new(AppSpec::Sor(p), nodes)
                        .with_node_spec(node)
                        .with_cfg(DynMpiConfig {
                            balancer,
                            drop_policy: DropPolicy::Never,
                            ..Default::default()
                        })
                        .with_script(script.clone()),
                    rec,
                )
            };
            let short = mk(iters, None);
            let long = mk(2 * iters, rec);
            (long.makespan - short.makespan) / iters as f64
        };
        let naive = settled(BalancerKind::RelativePower, None);
        let sb = settled(BalancerKind::SuccessiveBalancing, inst.recorder_for(i == 0));
        let gain = (naive - sb) / naive * 100.0;
        Row {
            table: "ablation_balancer",
            nodes,
            cps,
            naive_cycle_s: naive,
            sb_cycle_s: sb,
            gain_pct: gain,
        }
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.nodes.to_string(),
                row.cps.to_string(),
                fmt_s(row.naive_cycle_s),
                fmt_s(row.sb_cycle_s),
                format!("{:+.1}%", row.gain_pct),
            ]
        })
        .collect();
    print_table(
        "Ablation — settled SOR cycle time: relative power vs successive balancing",
        &["nodes", "CPs", "naive(s)", "succ-bal(s)", "gain"],
        &table,
    );
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "ablation_balancer", &json_rows);
    inst.finish();
}
