//! Figure 6: node removal.
//!
//! Red-Black SOR (1024×1024) on 8, 16, and 32 Ultra-Sparc-5-class nodes.
//! One node receives 1, 2, or 3 competing processes; after Dyn-MPI's
//! redistribution we measure the average phase-cycle time when the loaded
//! node is **kept** (with a successive-balancing distribution) vs. when
//! it is **dropped**. The paper's shape: dropping loses on 8 nodes, wins
//! slightly on 16 (2/7/8 %), and clearly on 32 (4/14/25 %) — removal pays
//! when the computation/communication ratio is low.

use dynmpi::{DropPolicy, DynMpiConfig};
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment};
use dynmpi_apps::sor::SorParams;
use dynmpi_bench::{fmt_s, log_info, print_table, write_rows, BenchArgs};
use dynmpi_obs::{Json, Recorder};
use dynmpi_sim::{LoadScript, NodeSpec};

struct Row {
    figure: &'static str,
    nodes: usize,
    cps: u32,
    keep_cycle_s: f64,
    drop_cycle_s: f64,
    /// Positive: dropping is faster.
    drop_gain_pct: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::str(self.figure)),
            ("nodes", Json::UInt(self.nodes as u64)),
            ("cps", Json::UInt(u64::from(self.cps))),
            ("keep_cycle_s", Json::Num(self.keep_cycle_s)),
            ("drop_cycle_s", Json::Num(self.drop_cycle_s)),
            ("drop_gain_pct", Json::Num(self.drop_gain_pct)),
        ])
    }
}

/// Steady-state cycle time after adaptation settled, measured as the
/// *marginal* rate: the makespan difference between a long and a short
/// run of the same experiment divided by the extra cycles. Immune to
/// warm-up, grace periods, and per-rank anchor shifts.
fn settled_cycle(short: f64, long: f64, extra_cycles: usize) -> f64 {
    (long - short) / extra_cycles as f64
}

fn main() {
    let args = BenchArgs::parse();
    let (n, iters, node) = if args.quick {
        (512, 90usize, NodeSpec::with_speed(20e6))
    } else {
        (1024, 150usize, NodeSpec::ultra5_360())
    };
    let extra = iters; // long run doubles the cycles
    let items: Vec<(usize, u32)> = [8usize, 16, 32]
        .into_iter()
        .flat_map(|nodes| [1u32, 2, 3].map(|cps| (nodes, cps)))
        .collect();
    // --trace-out/--profile-out record the first drop-enabled short run (8 nodes, 1 CP,
    // sweep item 0). Each item runs four sims (keep/drop × short/long).
    let inst = args.instrumentation();
    let rows: Vec<Row> = dynmpi_testkit::sweep(&items, args.threads, |i, item| {
        let (nodes, cps) = *item;
        let script = LoadScript::dedicated().at_cycle(nodes - 1, 10, cps);
        let run_pair = |policy: DropPolicy, rec: Option<Recorder>| {
            let mk = |iters: usize, rec: Option<Recorder>| {
                let p = SorParams {
                    n,
                    iters,
                    omega: 1.5,
                    exercise_kernel: false,
                };
                run_sim_with(
                    &Experiment::new(AppSpec::Sor(p), nodes)
                        .with_node_spec(node)
                        .with_cfg(DynMpiConfig {
                            drop_policy: policy,
                            ..Default::default()
                        })
                        .with_script(script.clone())
                        .with_shards(args.shards),
                    rec,
                )
            };
            let short = mk(iters, rec);
            let long = mk(iters + extra, None);
            settled_cycle(short.makespan, long.makespan, extra)
        };
        let kc = run_pair(DropPolicy::Never, None);
        let dc = run_pair(DropPolicy::Always, inst.recorder_for(i == 0));
        let row = Row {
            figure: "fig6",
            nodes,
            cps,
            keep_cycle_s: kc,
            drop_cycle_s: dc,
            drop_gain_pct: (kc - dc) / kc * 100.0,
        };
        log_info!(
            "fig6 nodes={nodes} cps={cps}: keep {kc:.4}s drop {dc:.4}s gain {:+.1}%",
            row.drop_gain_pct
        );
        row
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.nodes.to_string(),
                row.cps.to_string(),
                fmt_s(row.keep_cycle_s),
                fmt_s(row.drop_cycle_s),
                format!("{:+.1}", row.drop_gain_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 6 — SOR avg phase-cycle time after redistribution: keep loaded node vs drop",
        &["nodes", "CPs", "keep(s)", "drop(s)", "drop gain %"],
        &table,
    );
    println!(
        "\npaper shape: dropping always worse on 8 nodes; 16 nodes: +2/+7/+8 %; \
         32 nodes: +4/+14/+25 % for 1/2/3 CPs"
    );
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "fig6_node_removal", &json_rows);
    inst.finish();
}
