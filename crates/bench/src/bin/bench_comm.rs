//! Communication hot-path micro-bench: before/after numbers for the
//! size-adaptive collectives and the pruned redistribution schedules.
//!
//! Three comparisons, each against a faithful reimplementation of the
//! seed behavior:
//!
//! * **bcast copies** — payload bytes memcpy'd (the `comm.bytes_copied`
//!   counter) to broadcast 1 MiB over 8 ranks: the seed's eager binomial
//!   tree (serialize per child, deserialize per hop) vs the one-copy
//!   binomial and the scatter–allgather algorithm the adaptive dispatch
//!   picks at this size.
//! * **bcast virtual time** — the same broadcast on the simulated
//!   100 Mbit/s cluster, where the RX-NIC serialization fix makes
//!   fan-out bursts pay their real cost.
//! * **redistribution scheduling** — `ghost_needs` evaluations to plan a
//!   64-node halo exchange: the seed's every-pair sweep vs the
//!   envelope-pruned `TransferSchedule`.
//!
//! Prints the before/after table and writes `results/BENCH_comm.json`.
//! `--check` runs a scaled-down configuration and only asserts the
//! invariants (used by CI's bench-smoke job).

use dynmpi::dist::Distribution;
use dynmpi::drsd::{AccessMode, ArrayAccess, Drsd};
use dynmpi::redist::{ghost_needs, TransferSchedule, GHOST_NEEDS_EVALS};
use dynmpi_bench::{log_info, print_table};
use dynmpi_comm::{
    from_bytes, run_threads, to_bytes, CommOps, Group, SimTransport, Transport, BYTES_COPIED,
};
use dynmpi_obs::{self as obs, Json, Recorder};
use dynmpi_sim::{Cluster, NodeSpec};

/// App-level tag for the reimplemented seed broadcast.
const TAG_SEED_BCAST: u64 = 0x5eed;

/// The seed's eager binomial broadcast, reproduced for the "before"
/// column: every hop deserializes the payload and re-serializes it for
/// each child, and the root clones its own copy. Same tree shape as the
/// current one-copy binomial, so only the copy discipline differs.
fn seed_eager_bcast<T: Transport>(t: &T, g: &Group, root: usize, data: Option<&[u64]>) -> Vec<u64> {
    let n = g.size();
    let rel = g.rel_unchecked();
    let vr = (rel + n - root) % n;
    let data: Vec<u64> = if vr == 0 {
        let d = data.expect("root must supply the payload");
        obs::count(BYTES_COPIED, std::mem::size_of_val(d) as u64);
        d.to_vec()
    } else {
        let parent_vr = vr & (vr - 1);
        from_bytes(&t.recv_bytes(g.world_rank((parent_vr + root) % n), TAG_SEED_BCAST))
    };
    let lowbit = if vr == 0 {
        n.next_power_of_two()
    } else {
        vr & vr.wrapping_neg()
    };
    let mut m = lowbit >> 1;
    while m > 0 {
        let child_vr = vr + m;
        if child_vr < n {
            // Eager: a fresh serialization per child.
            t.send_bytes(
                g.world_rank((child_vr + root) % n),
                TAG_SEED_BCAST,
                to_bytes(&data),
            );
        }
        m >>= 1;
    }
    data
}

/// Bytes copied by one 8-rank broadcast of `elems` u64s under `run`.
fn copies_on_threads<F>(ranks: usize, elems: usize, run: F) -> u64
where
    F: Fn(&dynmpi_comm::ThreadTransport, &Group, &[u64]) -> Vec<u64> + Send + Sync,
{
    let rec = Recorder::new();
    let payload: Vec<u64> = (0..elems as u64).collect();
    let expect = payload.clone();
    let rec2 = rec.clone();
    run_threads(ranks, move |t| {
        let _guard = rec2.install(t.rank());
        let g = Group::world(t.rank(), t.size());
        let out = run(t, &g, &payload);
        assert_eq!(out, expect, "broadcast corrupted the payload");
    });
    rec.merged_metrics().counter(BYTES_COPIED)
}

/// Virtual finish time of one 8-rank broadcast on the simulated cluster.
fn sim_seconds<F>(ranks: usize, elems: usize, run: F) -> f64
where
    F: Fn(&SimTransport, &Group, &[u64]) -> Vec<u64> + Send + Sync,
{
    let payload: Vec<u64> = (0..elems as u64).collect();
    let out = Cluster::homogeneous(ranks, NodeSpec::default()).run_spmd(|ctx| {
        let t = SimTransport::new(ctx);
        let g = Group::world(t.rank(), t.size());
        run(&t, &g, &payload).len()
    });
    assert!(out.results.iter().all(|&l| l == elems));
    out.report.finish_time.as_secs_f64()
}

/// `ghost_needs` evaluations to plan the ghost legs for all `n` ranks:
/// the seed swept every (rank, partner) pair; the schedule only touches
/// envelope-intersecting ones.
fn schedule_evals(n: usize, nrows: usize) -> (u64, u64) {
    let d = Distribution::block_even(nrows, n);
    let acc = [ArrayAccess {
        array: 0,
        mode: AccessMode::Read,
        drsd: Drsd::with_halo(1),
    }];
    let g = Group::new((0..n).collect(), 0);

    let rec = Recorder::new();
    let (before, after) = {
        let _guard = rec.install(0);
        let ctr = obs::counter_handle(GHOST_NEEDS_EVALS).unwrap();
        // Seed behavior: every rank evaluates every partner's needs, plus
        // its own (the unpruned Phase B loops).
        let base = ctr.get();
        for me in 0..n {
            for dst in 0..n {
                if dst != me {
                    let _ = ghost_needs(&d, dst, 0, &acc, nrows);
                }
            }
            let _ = ghost_needs(&d, me, 0, &acc, nrows);
        }
        let before = ctr.get() - base;
        let base = ctr.get();
        for me in 0..n {
            let _ = TransferSchedule::build(me, &g, &d, &g, &d, &acc, 1);
        }
        (before, ctr.get() - base)
    };
    (before, after)
}

fn main() {
    let mut check = false;
    let mut out_dir = "results".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => {
                out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!("usage: bench_comm [--check] [--out DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let ranks = 8;
    // 1 MiB payload normally; --check shrinks it but stays above the
    // 64 KiB dispatch threshold so the same code paths run.
    let elems = if check { 16 * 1024 } else { 128 * 1024 };
    let payload_bytes = (elems * 8) as u64;
    let sched_nodes = if check { 16 } else { 64 };

    log_info!("bcast copy accounting: {payload_bytes} B over {ranks} ranks");
    let seed_copies = copies_on_threads(ranks, elems, |t, g, p| {
        seed_eager_bcast(t, g, 0, (t.rank() == 0).then_some(p))
    });
    let binomial_copies = copies_on_threads(ranks, elems, |t, g, p| {
        t.bcast_binomial(g, 0, (t.rank() == 0).then_some(p))
    });
    let adaptive_copies = copies_on_threads(ranks, elems, |t, g, p| {
        t.bcast(g, 0, (t.rank() == 0).then_some(p))
    });
    let copy_ratio = seed_copies as f64 / adaptive_copies as f64;

    log_info!("bcast virtual time on the simulated cluster");
    let seed_s = sim_seconds(ranks, elems, |t, g, p| {
        seed_eager_bcast(t, g, 0, (t.rank() == 0).then_some(p))
    });
    let adaptive_s = sim_seconds(ranks, elems, |t, g, p| {
        t.bcast(g, 0, (t.rank() == 0).then_some(p))
    });

    log_info!("redistribution schedule planning: {sched_nodes} nodes");
    let (evals_before, evals_after) = schedule_evals(sched_nodes, sched_nodes * 10);

    let fmt_l = |c: u64| format!("{:.2}", c as f64 / payload_bytes as f64);
    print_table(
        "comm hot paths: before/after",
        &["metric", "seed", "now", "ratio"],
        &[
            vec![
                format!("bcast bytes copied (xL, L={payload_bytes} B)"),
                fmt_l(seed_copies),
                fmt_l(adaptive_copies),
                format!("{copy_ratio:.2}x"),
            ],
            vec![
                "bcast one-copy binomial (xL)".to_string(),
                fmt_l(seed_copies),
                fmt_l(binomial_copies),
                format!("{:.2}x", seed_copies as f64 / binomial_copies as f64),
            ],
            vec![
                "bcast sim time (ms)".to_string(),
                format!("{:.2}", seed_s * 1e3),
                format!("{:.2}", adaptive_s * 1e3),
                format!("{:.2}x", seed_s / adaptive_s),
            ],
            vec![
                format!("ghost_needs evals, {sched_nodes}-node plan"),
                evals_before.to_string(),
                evals_after.to_string(),
                format!("{:.1}x", evals_before as f64 / evals_after as f64),
            ],
        ],
    );

    // The acceptance bars this binary exists to hold.
    assert!(
        copy_ratio >= 1.5,
        "adaptive bcast must copy >=1.5x fewer bytes than the seed tree \
         (seed {seed_copies}, adaptive {adaptive_copies})"
    );
    assert!(
        binomial_copies < seed_copies,
        "one-copy binomial regressed: {binomial_copies} vs seed {seed_copies}"
    );
    assert!(
        evals_after < evals_before / 4,
        "schedule pruning regressed: {evals_after} vs sweep {evals_before}"
    );

    if check {
        println!("bench_comm --check OK");
        return;
    }

    let doc = Json::obj([
        ("bench", Json::str("bench_comm")),
        ("ranks", Json::UInt(ranks as u64)),
        ("payload_bytes", Json::UInt(payload_bytes)),
        (
            "bcast_bytes_copied",
            Json::obj([
                ("seed_eager_tree", Json::UInt(seed_copies)),
                ("one_copy_binomial", Json::UInt(binomial_copies)),
                ("adaptive_scatter_allgather", Json::UInt(adaptive_copies)),
                ("seed_over_adaptive", Json::Num(copy_ratio)),
            ]),
        ),
        (
            "bcast_sim_seconds",
            Json::obj([
                ("seed_eager_tree", Json::Num(seed_s)),
                ("adaptive", Json::Num(adaptive_s)),
                ("speedup", Json::Num(seed_s / adaptive_s)),
            ]),
        ),
        (
            "redist_ghost_needs_evals",
            Json::obj([
                ("nodes", Json::UInt(sched_nodes as u64)),
                ("seed_full_sweep", Json::UInt(evals_before)),
                ("transfer_schedule", Json::UInt(evals_after)),
            ]),
        ),
    ]);
    let path = format!("{out_dir}/BENCH_comm.json");
    std::fs::create_dir_all(&out_dir).ok();
    std::fs::write(&path, format!("{doc}\n")).expect("write BENCH_comm.json");
    log_info!("wrote {path}");
}
