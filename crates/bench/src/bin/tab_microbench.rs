//! §4.3 micro-benchmark table: two-node computation/communication
//! sweeps.
//!
//! For each (comp/comm ratio, CP count) point, sweep the loaded node's
//! work fraction in the simulator, report the measured optimum against
//! the naive relative-power fraction, and fit the penalty model's wait
//! factor — the calibration step behind successive balancing.

use dynmpi::microbench::{fit_wait_factor, probe, ProbePoint};
use dynmpi_bench::{print_table, write_rows, BenchArgs};
use dynmpi_obs::Json;

struct Row {
    table: &'static str,
    total_work: f64,
    msg_bytes: usize,
    ncp: u32,
    naive_fraction: f64,
    best_fraction: f64,
    naive_cycle_s: f64,
    best_cycle_s: f64,
    gain_pct: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table", Json::str(self.table)),
            ("total_work", Json::Num(self.total_work)),
            ("msg_bytes", Json::UInt(self.msg_bytes as u64)),
            ("ncp", Json::UInt(u64::from(self.ncp))),
            ("naive_fraction", Json::Num(self.naive_fraction)),
            ("best_fraction", Json::Num(self.best_fraction)),
            ("naive_cycle_s", Json::Num(self.naive_cycle_s)),
            ("best_cycle_s", Json::Num(self.best_cycle_s)),
            ("gain_pct", Json::Num(self.gain_pct)),
        ])
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (grid, cycles) = if args.quick { (8, 10) } else { (16, 30) };
    let speed = 100e6; // Xeon-class
    let mut rows = Vec::new();
    let mut table = Vec::new();
    // Comp/comm ratios from compute-heavy to comm-heavy (message 16 KB ≈
    // one 2048-double ghost row).
    for total_work in [8.0e6, 2.0e6, 0.5e6] {
        for ncp in [1u32, 2, 3] {
            let p = ProbePoint {
                total_work,
                msg_bytes: 16_384,
                ncp,
            };
            let r = probe(speed, p, grid, cycles);
            let gain = (r.naive_cycle - r.best_cycle) / r.naive_cycle * 100.0;
            table.push(vec![
                format!("{:.1e}", total_work),
                ncp.to_string(),
                format!("{:.3}", r.naive_fraction),
                format!("{:.3}", r.best_fraction),
                format!("{:.2}ms", r.naive_cycle * 1e3),
                format!("{:.2}ms", r.best_cycle * 1e3),
                format!("{gain:+.1}%"),
            ]);
            rows.push(Row {
                table: "microbench",
                total_work,
                msg_bytes: p.msg_bytes,
                ncp,
                naive_fraction: r.naive_fraction,
                best_fraction: r.best_fraction,
                naive_cycle_s: r.naive_cycle,
                best_cycle_s: r.best_cycle,
                gain_pct: gain,
            });
        }
    }
    print_table(
        "§4.3 micro-benchmarks — loaded-node work fraction: naive vs measured best",
        &[
            "work",
            "CPs",
            "naive frac",
            "best frac",
            "naive cycle",
            "best cycle",
            "gain",
        ],
        &table,
    );
    let probes: Vec<_> = rows
        .iter()
        .map(|r| {
            probe(
                speed,
                ProbePoint {
                    total_work: r.total_work,
                    msg_bytes: r.msg_bytes,
                    ncp: r.ncp,
                },
                4,
                6,
            )
        })
        .collect();
    let wf = fit_wait_factor(&probes, 0.010);
    println!("\nfitted wait factor: {wf:.2} (config default 0.05)");
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "tab_microbench", &json_rows);
}
