//! Ablation: `dmpi_ps` vs `vmstat` load measurement (§4.2).
//!
//! The paper reports `vmstat`-style sampling is unreliable: an
//! application blocked at a receive vanishes from the run queue, so the
//! sampled load misses it. This harness runs a communication-bound
//! two-node program with competing processes and compares what the two
//! monitors report against the truth, per sampled second.

use dynmpi_bench::{print_table, write_rows, BenchArgs};
use dynmpi_obs::Json;
use dynmpi_sim::{Cluster, LoadScript, NodeSpec, SimTime};

struct Row {
    table: &'static str,
    ncp: u32,
    samples: usize,
    dmpi_ps_correct_pct: f64,
    vmstat_correct_pct: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table", Json::str(self.table)),
            ("ncp", Json::UInt(u64::from(self.ncp))),
            ("samples", Json::UInt(self.samples as u64)),
            ("dmpi_ps_correct_pct", Json::Num(self.dmpi_ps_correct_pct)),
            ("vmstat_correct_pct", Json::Num(self.vmstat_correct_pct)),
        ])
    }
}

fn main() {
    let args = BenchArgs::parse();
    let seconds = if args.quick { 20 } else { 60 };
    let items = [1u32, 2, 3];
    // --trace-out/--profile-out record the first configuration (1 CP).
    let inst = args.instrumentation();
    let rows: Vec<Row> = dynmpi_testkit::sweep(&items, args.threads, |i, ncp| {
        let ncp = *ncp;
        let script = LoadScript::dedicated().at_time(0, SimTime::ZERO, ncp);
        let mut c = Cluster::homogeneous(2, NodeSpec::with_speed(1e7)).with_script(script);
        if let Some(rec) = inst.recorder_for(i == 0) {
            c = c.with_recorder(rec);
        }
        let out = c.run_spmd(move |ctx| {
            let me = ctx.rank();
            let other = 1 - me;
            let mut ps_hits = 0usize;
            let mut vm_hits = 0usize;
            let mut samples = 0usize;
            // Communication-bound loop in lockstep iterations: node 0
            // spends most time blocked at receives — exactly where vmstat
            // loses it. Node 1 computes ~40 ms per round.
            let iters = seconds as usize * 25 + 10;
            for _ in 0..iters {
                if me == 0 {
                    ctx.send(other, 1, vec![0u8; 64]);
                    let _ = ctx.recv(other, 2);
                    ctx.advance(5_000.0);
                    let now = ctx.now();
                    if now.floor_to_second() > SimTime::from_secs(samples as u64)
                        && now < SimTime::from_secs(seconds)
                    {
                        samples += 1;
                        // Truth: the application + ncp CPs live on node 0.
                        let truth = ncp + 1;
                        if ctx.dmpi_ps(0) == truth {
                            ps_hits += 1;
                        }
                        if ctx.vmstat(0) == truth {
                            vm_hits += 1;
                        }
                    }
                } else {
                    let _ = ctx.recv(other, 1);
                    ctx.advance(400_000.0);
                    ctx.send(other, 2, vec![0u8; 64]);
                }
            }
            (samples, ps_hits, vm_hits)
        });
        let (samples, ps, vm) = out.results[0];
        Row {
            table: "ablation_monitor",
            ncp,
            samples,
            dmpi_ps_correct_pct: ps as f64 / samples.max(1) as f64 * 100.0,
            vmstat_correct_pct: vm as f64 / samples.max(1) as f64 * 100.0,
        }
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.ncp.to_string(),
                row.samples.to_string(),
                format!("{:.0}%", row.dmpi_ps_correct_pct),
                format!("{:.0}%", row.vmstat_correct_pct),
            ]
        })
        .collect();
    print_table(
        "Ablation — monitor accuracy on a comm-bound node (correct load readings)",
        &["CPs", "samples", "dmpi_ps", "vmstat"],
        &table,
    );
    println!(
        "\n`dmpi_ps` always counts the monitored application (§4.2); `vmstat` misses it \
         whenever the sample lands while it is blocked at a receive."
    );
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "ablation_monitor", &json_rows);
    inst.finish();
}
