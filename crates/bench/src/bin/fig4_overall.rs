//! Figure 4: overall results.
//!
//! Each of the four applications runs on 2, 4, and 8 nodes in three
//! variants: all nodes **dedicated**; one competing process introduced on
//! node 0 at the 10th phase cycle with **no adaptation**; and the same
//! load with **Dyn-MPI** adapting. Times are normalized to the dedicated
//! run, as in the paper's bars (smaller is better).

use dynmpi::DynMpiConfig;
use dynmpi_apps::cg::CgParams;
use dynmpi_apps::harness::{run_sim, run_sim_with, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_apps::particle::ParticleParams;
use dynmpi_apps::sor::SorParams;
use dynmpi_bench::{fmt_s, fmt_x, log_error, log_info, print_table, write_rows, BenchArgs};
use dynmpi_obs::Json;
use dynmpi_sim::{LoadScript, NodeSpec};

struct Row {
    figure: &'static str,
    app: &'static str,
    nodes: usize,
    dedicated_s: f64,
    no_adapt_s: f64,
    dynmpi_s: f64,
    no_adapt_norm: f64,
    dynmpi_norm: f64,
    redist_s: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::str(self.figure)),
            ("app", Json::str(self.app)),
            ("nodes", Json::UInt(self.nodes as u64)),
            ("dedicated_s", Json::Num(self.dedicated_s)),
            ("no_adapt_s", Json::Num(self.no_adapt_s)),
            ("dynmpi_s", Json::Num(self.dynmpi_s)),
            ("no_adapt_norm", Json::Num(self.no_adapt_norm)),
            ("dynmpi_norm", Json::Num(self.dynmpi_norm)),
            ("redist_s", Json::Num(self.redist_s)),
        ])
    }
}

type AppCtor = Box<dyn Fn(usize) -> AppSpec>;

fn apps(quick: bool) -> Vec<(&'static str, AppCtor)> {
    let scale = |full: usize, quick_v: usize| if quick { quick_v } else { full };
    let n_jac = scale(2048, 512);
    let it_jac = scale(250, 100);
    let n_sor = scale(1024, 512);
    let it_sor = scale(250, 100);
    let n_cg = scale(14_000, 1_400);
    let nnz_cg = scale(132, 24);
    let it_cg = scale(250, 100);
    let it_part = scale(200, 100);
    vec![
        (
            "jacobi",
            Box::new(move |_nodes| {
                AppSpec::Jacobi(JacobiParams {
                    n: n_jac,
                    iters: it_jac,
                    exercise_kernel: false,
                    rebalance_at: None,
                })
            }),
        ),
        (
            "sor",
            Box::new(move |_nodes| {
                AppSpec::Sor(SorParams {
                    n: n_sor,
                    iters: it_sor,
                    omega: 1.5,
                    exercise_kernel: false,
                })
            }),
        ),
        (
            "cg",
            Box::new(move |_nodes| {
                AppSpec::Cg(CgParams {
                    n: n_cg,
                    offdiag_per_row: nnz_cg,
                    iters: it_cg,
                    seed: 1,
                })
            }),
        ),
        (
            "particle",
            Box::new(move |nodes| {
                let mut p = ParticleParams::paper(nodes);
                p.iters = it_part;
                AppSpec::Particle(p)
            }),
        ),
    ]
}

fn main() {
    let args = BenchArgs::parse();

    // Pre-build every (app, nodes) configuration, then run them through the
    // parallel sweep: each item is three independent deterministic sims, so
    // results (and thus the JSONL) are identical at any --threads value.
    // `--only app/nodes` (substring match, e.g. `--only jacobi/8`) trims
    // the sweep to the configurations of interest — mainly for profiling
    // one run without paying for the other eleven.
    let items: Vec<(&'static str, usize, AppSpec, NodeSpec)> = apps(args.quick)
        .into_iter()
        .flat_map(|(name, mk)| {
            // Quick mode shrinks the problem but also slows the nodes, so
            // virtual cycle times (and hence the 1 Hz monitor's behaviour)
            // stay paper-like.
            let node = if args.quick && name != "particle" {
                NodeSpec::with_speed(5e6)
            } else {
                NodeSpec::xeon_550()
            };
            [2usize, 4, 8]
                .into_iter()
                .map(move |nodes| (name, nodes, mk(nodes), node))
                .collect::<Vec<_>>()
        })
        .filter(|(name, nodes, _, _)| args.keeps(&format!("{name}/{nodes}")))
        .collect();
    if items.is_empty() {
        log_error!("--only matched no fig4 configuration");
        std::process::exit(2);
    }

    // With --trace-out/--profile-out/--health-out/--watch, the first
    // Dyn-MPI run (the smallest selected adaptive configuration, pinned to
    // sweep item 0) is instrumented; later runs would overlay the same
    // virtual-time axis in one trace.
    let inst = args.instrumentation();
    // Rough per-arm cost estimates steer the weighted sweep's claim order
    // so the big 8-node arms start first instead of tail-blocking the pool
    // from the back of the input list. Only the ordering matters.
    let weights: Vec<f64> = items
        .iter()
        .map(|(name, nodes, _, _)| {
            let app_cost = match *name {
                "cg" => 3.0, // all-reduce every iteration: traffic ∝ nodes
                "particle" => 1.5,
                _ => 1.0,
            };
            app_cost * (*nodes as f64)
        })
        .collect();
    let rows: Vec<Row> =
        dynmpi_testkit::sweep_weighted(&items, &weights, args.threads, |i, item| {
            let (name, nodes, spec, node) = item;
            let (name, nodes) = (*name, *nodes);
            // The competing process appears at the 10th phase cycle on one
            // node (§5.1) — the last one for the uniform apps, but for the
            // particle simulation the paper puts it on the node that also
            // holds twice the particles (node 0).
            let cp_node = if name == "particle" { 0 } else { nodes - 1 };
            let loaded_script = LoadScript::dedicated().at_cycle(cp_node, 10, 1);
            let ded = run_sim(
                &Experiment::new(spec.clone(), nodes)
                    .with_node_spec(*node)
                    .with_cfg(DynMpiConfig::no_adapt())
                    .with_shards(args.shards),
            );
            let noad = run_sim(
                &Experiment::new(spec.clone(), nodes)
                    .with_node_spec(*node)
                    .with_cfg(DynMpiConfig::no_adapt())
                    .with_script(loaded_script.clone())
                    .with_shards(args.shards),
            );
            let dyn_ = run_sim_with(
                &Experiment::new(spec.clone(), nodes)
                    .with_node_spec(*node)
                    .with_cfg(DynMpiConfig::default())
                    .with_script(loaded_script.clone())
                    .with_shards(args.shards),
                inst.recorder_for(i == 0),
            );
            log_info!(
                "fig4 {name} n={nodes}: ded {:.2}s noadapt {:.2}s dynmpi {:.2}s",
                ded.makespan,
                noad.makespan,
                dyn_.makespan
            );
            Row {
                figure: "fig4",
                app: name,
                nodes,
                dedicated_s: ded.makespan,
                no_adapt_s: noad.makespan,
                dynmpi_s: dyn_.makespan,
                no_adapt_norm: noad.makespan / ded.makespan,
                dynmpi_norm: dyn_.makespan / ded.makespan,
                redist_s: dyn_.redist_seconds(),
            }
        });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.app.to_string(),
                row.nodes.to_string(),
                fmt_s(row.dedicated_s),
                fmt_s(row.no_adapt_s),
                fmt_s(row.dynmpi_s),
                fmt_x(row.no_adapt_norm),
                fmt_x(row.dynmpi_norm),
                fmt_s(row.redist_s),
            ]
        })
        .collect();
    print_table(
        "Figure 4 — execution time relative to all-dedicated (1 CP on one node at cycle 10)",
        &[
            "app",
            "nodes",
            "dedicated(s)",
            "no-adapt(s)",
            "dynmpi(s)",
            "no-adapt×",
            "dynmpi×",
            "redist(s)",
        ],
        &table,
    );
    let improvements: Vec<f64> = rows
        .iter()
        .map(|r| (r.no_adapt_s - r.dynmpi_s) / r.no_adapt_s * 100.0)
        .collect();
    let mean_impr = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max_ratio = rows
        .iter()
        .map(|r| r.no_adapt_s / r.dynmpi_s)
        .fold(0.0, f64::max);
    let mean_slow = rows
        .iter()
        .map(|r| (r.dynmpi_norm - 1.0) * 100.0)
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "\nsummary: Dyn-MPI vs no-adapt improvement mean {mean_impr:.0}% (paper: 72% avg), \
         best ratio {max_ratio:.2}× (paper: up to ~3×); slowdown vs dedicated mean \
         {mean_slow:.0}% (paper: 29% avg)"
    );
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "fig4_overall", &json_rows);
    inst.finish();
}
