//! Figure 9 (extension): fail-stop node crash — detect, restore, replay.
//!
//! The paper removes nodes *voluntarily* (§4.4): the runtime decides, the
//! node cooperates, no state is lost. This harness measures the fault
//! extension: a node fail-stops mid-run without warning. The survivors'
//! timeout detector confirms the death from broadcast control data, the
//! dead node's rows are restored from its ring-buddy's in-memory
//! checkpoint, the group shrinks and rebalances, and the application
//! replays from the checkpointed cycle.
//!
//! Sweep: crash time (fraction of the crash-free makespan) × cluster
//! size. Reported per configuration:
//!
//! * **detection latency** — cycles from the first Suspect sentinel to
//!   Confirmed (the sustain window, plus any cycles the death stayed
//!   masked by pipelined control samples);
//! * **recovery cost** — the rollback depth (cycles replayed) and the
//!   rows restored from the buddy mirror;
//! * **end-to-end slowdown vs. an oracle** — a perfect instant failover
//!   composed from two crash-free runs: the full cluster up to the
//!   crash instant, the survivor set thereafter (same capacity loss,
//!   but no detection wait, no lost work, no rollback). The gap is the
//!   true price of the fault path.
//!
//! Every run is deterministic: rows are byte-identical at any
//! `--threads`, any `--shards`, and under both simulator engines.

use dynmpi::{DropPolicy, DynMpiConfig, RuntimeEvent};
use dynmpi_apps::harness::run_sim_with;
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_apps::{AppSpec, Experiment};
use dynmpi_bench::{fmt_s, log_info, print_table, write_rows, BenchArgs};
use dynmpi_obs::Json;
use dynmpi_sim::{LoadScript, NodeSpec, SimTime};

struct Row {
    figure: &'static str,
    nodes: usize,
    crash_frac: f64,
    dead: usize,
    detect_cycles: u64,
    confirmed_cycle: u64,
    replay_cycles: u64,
    restored_rows: u64,
    base_s: f64,
    oracle_s: f64,
    crash_s: f64,
    /// (crash − oracle) / oracle: the fault path's cost over a perfect
    /// instant failover at the same instant.
    slowdown_pct: f64,
    checksum_ok: bool,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::str(self.figure)),
            ("nodes", Json::UInt(self.nodes as u64)),
            ("crash_frac", Json::Num(self.crash_frac)),
            ("dead", Json::UInt(self.dead as u64)),
            ("detect_cycles", Json::UInt(self.detect_cycles)),
            ("confirmed_cycle", Json::UInt(self.confirmed_cycle)),
            ("replay_cycles", Json::UInt(self.replay_cycles)),
            ("restored_rows", Json::UInt(self.restored_rows)),
            ("base_s", Json::Num(self.base_s)),
            ("oracle_s", Json::Num(self.oracle_s)),
            ("crash_s", Json::Num(self.crash_s)),
            ("slowdown_pct", Json::Num(self.slowdown_pct)),
            ("checksum_ok", Json::Bool(self.checksum_ok)),
        ])
    }
}

/// Checksum agreement up to reduction-regrouping rounding: the
/// survivors' final sum spans a different partition than the baseline's.
fn checksums_close(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => (x - y).abs() <= 1e-12 * y.abs().max(1.0),
        _ => false,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (n, iters, node_spec) = if args.quick {
        (96, 80usize, NodeSpec::with_speed(2e6))
    } else {
        (512, 200usize, NodeSpec::ultra5_360())
    };
    let fracs: &[f64] = if args.quick {
        &[0.3, 0.6]
    } else {
        &[0.2, 0.4, 0.6, 0.8]
    };
    let sizes: &[usize] = if args.quick { &[4] } else { &[4, 8] };

    let cfg = DynMpiConfig {
        failure_detection: true,
        peer_timeout_seconds: 0.05,
        failure_confirm_cycles: 3,
        checkpoint_interval_cycles: 10,
        drop_policy: DropPolicy::Always,
        ..Default::default()
    };

    let mut items: Vec<(usize, f64)> = Vec::new();
    for &nodes in sizes {
        for &f in fracs {
            items.push((nodes, f));
        }
    }
    let inst = args.instrumentation();

    let rows: Vec<Row> = dynmpi_testkit::sweep(&items, args.threads, |i, item| {
        let (nodes, crash_frac) = *item;
        // Kill a mid-ring node: never the root (out of scope, DESIGN.md
        // §14), and not the last rank, so both ghost neighbors survive.
        let dead = nodes / 2;
        let run = |script: LoadScript, rec| {
            let p = JacobiParams {
                n,
                iters,
                exercise_kernel: true,
                rebalance_at: None,
            };
            run_sim_with(
                &Experiment::new(AppSpec::Jacobi(p), nodes)
                    .with_node_spec(node_spec)
                    .with_cfg(cfg.clone())
                    .with_script(script)
                    .with_shards(args.shards),
                rec,
            )
        };

        let base = run(LoadScript::dedicated(), None);
        let t_crash = SimTime::from_secs_f64(base.makespan * crash_frac);
        // The oracle: perfect instant failover — the full cluster up to
        // the crash instant, the survivor set (same capacity, rebalanced
        // for free) for the rest. Composed from two crash-free runs, it
        // has zero detection wait, zero lost work, zero redistribution
        // cost; the gap to the real crash run is the fault path's whole
        // price.
        let survivors_only = {
            let p = JacobiParams {
                n,
                iters,
                exercise_kernel: true,
                rebalance_at: None,
            };
            run_sim_with(
                &Experiment::new(AppSpec::Jacobi(p), nodes - 1)
                    .with_node_spec(node_spec)
                    .with_cfg(cfg.clone())
                    .with_script(LoadScript::dedicated())
                    .with_shards(args.shards),
                None,
            )
        };
        let oracle_s = crash_frac * base.makespan + (1.0 - crash_frac) * survivors_only.makespan;
        let out = run(
            LoadScript::dedicated().node_crash(t_crash, dead),
            inst.recorder_for(i == 0),
        );

        let mut suspect_first = 0u64;
        let mut confirmed_cycle = 0u64;
        let mut rollback_to = 0u64;
        let mut restored_rows = 0u64;
        for e in out.events() {
            match e {
                RuntimeEvent::NodeSuspected { cycle, .. } if suspect_first == 0 => {
                    suspect_first = *cycle;
                }
                RuntimeEvent::NodeConfirmedDead { cycle, .. } if confirmed_cycle == 0 => {
                    confirmed_cycle = *cycle;
                }
                RuntimeEvent::NodeRecovered {
                    rollback_to: rb,
                    restored_rows: rr,
                    ..
                } if restored_rows == 0 => {
                    rollback_to = *rb;
                    restored_rows = *rr as u64;
                }
                _ => {}
            }
        }
        assert!(
            confirmed_cycle > 0,
            "fig9 nodes={nodes} frac={crash_frac}: crash was never confirmed"
        );
        let row = Row {
            figure: "fig9",
            nodes,
            crash_frac,
            dead,
            detect_cycles: confirmed_cycle - suspect_first + 1,
            confirmed_cycle,
            replay_cycles: confirmed_cycle.saturating_sub(rollback_to),
            restored_rows,
            base_s: base.makespan,
            oracle_s,
            crash_s: out.makespan,
            slowdown_pct: (out.makespan - oracle_s) / oracle_s * 100.0,
            checksum_ok: checksums_close(out.checksum(), base.checksum()),
        };
        log_info!(
            "fig9 nodes={nodes} crash@{:.0}%: confirmed c{confirmed_cycle} \
             (detect {} cyc), replay {} cyc / {} rows, {} vs oracle {} ({:+.1}%) checksum_ok={}",
            crash_frac * 100.0,
            row.detect_cycles,
            row.replay_cycles,
            row.restored_rows,
            fmt_s(row.crash_s),
            fmt_s(row.oracle_s),
            row.slowdown_pct,
            row.checksum_ok
        );
        row
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                format!("{:.0}%", r.crash_frac * 100.0),
                r.dead.to_string(),
                r.detect_cycles.to_string(),
                r.replay_cycles.to_string(),
                r.restored_rows.to_string(),
                fmt_s(r.base_s),
                fmt_s(r.oracle_s),
                fmt_s(r.crash_s),
                format!("{:+.1}", r.slowdown_pct),
                r.checksum_ok.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 9 — Jacobi: fail-stop crash, timeout detection, buddy-checkpoint recovery",
        &[
            "nodes",
            "crash@",
            "dead",
            "detect cyc",
            "replay cyc",
            "rows",
            "base(s)",
            "oracle(s)",
            "crash(s)",
            "vs oracle %",
            "checksum ok",
        ],
        &table,
    );
    println!(
        "\nexpected shape: detection latency is flat (the sustain window plus the control \
         pipeline's masking depth); replay stays bounded by the checkpoint interval plus \
         the detection window; the slowdown over the instant-failover oracle is the fault \
         path's whole price — detection wait, lost work, restore, and redistribution"
    );
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "fig9_node_crash", &json_rows);
    // Flight records carry the harness's post-run verdict: item 0 is the
    // instrumented run, so its checksum comparison is the one the explain
    // report's confirmed-death records should show.
    if let (Some(engine), Some(row)) = (inst.explain(), rows.first()) {
        engine.set_checksum_intact(row.checksum_ok);
    }
    inst.finish();
}
