//! Figure 3 / §4.1: memory-allocation schemes under redistribution.
//!
//! Compares the paper's 2-D projection layout (vector of extended rows;
//! only moved rows are touched) against contiguous allocation (full
//! reallocation and shift whenever the held range changes), for dense and
//! sparse matrices, across redistribution magnitudes. Reports both real
//! time and the memory-operation counters.
//!
//! This binary stays serial on purpose (`--threads` is accepted but
//! unused): it measures real wall-clock time with `Instant`, and running
//! configurations concurrently would contend for cores and corrupt the
//! timings. The virtual-time figure binaries are the ones that sweep in
//! parallel.

use std::time::Instant;

use dynmpi::{ContiguousMatrix, DenseMatrix, RedistArray, RowSet, SparseMatrix};
use dynmpi_bench::{print_table, write_rows, BenchArgs};
use dynmpi_obs::Json;

struct Row {
    figure: &'static str,
    kind: &'static str,
    rows_total: usize,
    rows_moved: usize,
    scheme: &'static str,
    micros: f64,
    bytes_allocated: u64,
    bytes_copied: u64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::str(self.figure)),
            ("kind", Json::str(self.kind)),
            ("rows_total", Json::UInt(self.rows_total as u64)),
            ("rows_moved", Json::UInt(self.rows_moved as u64)),
            ("scheme", Json::str(self.scheme)),
            ("micros", Json::Num(self.micros)),
            ("bytes_allocated", Json::UInt(self.bytes_allocated)),
            ("bytes_copied", Json::UInt(self.bytes_copied)),
        ])
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (n, row_len) = if args.quick { (512, 512) } else { (2048, 2048) };
    let mut rows_out = Vec::new();
    let mut table = Vec::new();

    for moved in [n / 64, n / 16, n / 4] {
        // --- dense, projected -------------------------------------------
        let mut m = DenseMatrix::<f64>::new(n, row_len);
        m.fill_rows(&RowSet::from_range(0..n / 2), |i, j| (i + j) as f64);
        let t0 = Instant::now();
        // Shift the held range down by `moved` rows: drop the head, take
        // on a new tail (the data for which arrives by message; here we
        // materialize it locally).
        m.drop_rows(&RowSet::from_range(0..moved));
        m.alloc_rows(&RowSet::from_range(n / 2..n / 2 + moved));
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        let s = m.alloc_stats();
        rows_out.push(Row {
            figure: "fig3",
            kind: "dense",
            rows_total: n,
            rows_moved: moved,
            scheme: "projected",
            micros: dt,
            bytes_allocated: (moved * row_len * 8) as u64,
            bytes_copied: 0,
        });
        let _ = s;

        // --- dense, contiguous ------------------------------------------
        let mut c = ContiguousMatrix::<f64>::new(n, row_len, 0, n / 2);
        for i in 0..n / 2 {
            c.row_mut(i)[0] = i as f64;
        }
        let before = c.alloc_stats();
        let t0 = Instant::now();
        c.reshape(moved, n / 2 + moved);
        let dt_c = t0.elapsed().as_secs_f64() * 1e6;
        let after = c.alloc_stats();
        rows_out.push(Row {
            figure: "fig3",
            kind: "dense",
            rows_total: n,
            rows_moved: moved,
            scheme: "contiguous",
            micros: dt_c,
            bytes_allocated: after.bytes_allocated - before.bytes_allocated,
            bytes_copied: after.bytes_copied - before.bytes_copied,
        });

        table.push(vec![
            "dense".into(),
            moved.to_string(),
            format!("{dt:.0}"),
            format!("{dt_c:.0}"),
            format!("{:.1}", dt_c / dt.max(1e-9)),
        ]);
    }

    // --- sparse: pack/unpack round trip vs full rebuild -----------------
    for moved in [n / 64, n / 16] {
        let mut sm = SparseMatrix::<f64>::new(n, n);
        for i in 0..n / 2 {
            for k in 0..8u32 {
                sm.set(
                    i,
                    (i as u32).wrapping_mul(7).wrapping_add(k * 131) % n as u32,
                    1.0,
                );
            }
        }
        let mv = RowSet::from_range(0..moved);
        let t0 = Instant::now();
        let bytes = sm.pack_rows(&mv, true);
        let mut recv = SparseMatrix::<f64>::new(n, n);
        recv.unpack_rows(&mv, &bytes);
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        rows_out.push(Row {
            figure: "fig3",
            kind: "sparse",
            rows_total: n,
            rows_moved: moved,
            scheme: "projected(pack+unpack)",
            micros: dt,
            bytes_allocated: bytes.len() as u64,
            bytes_copied: bytes.len() as u64,
        });
        table.push(vec![
            "sparse".into(),
            moved.to_string(),
            format!("{dt:.0}"),
            "-".into(),
            "-".into(),
        ]);
    }

    print_table(
        "Figure 3 — redistribution memory work: projected vs contiguous",
        &[
            "kind",
            "rows moved",
            "projected(us)",
            "contiguous(us)",
            "contig/proj",
        ],
        &table,
    );
    println!(
        "\nThe projection scheme touches only the moved rows; contiguous allocation \
         reallocates and copies the node's entire partition (§4.1, Figure 3)."
    );
    let json_rows: Vec<Json> = rows_out.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "fig3_alloc", &json_rows);
}
