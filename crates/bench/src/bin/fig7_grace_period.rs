//! Figure 7: grace-period length under nonuniform iterations.
//!
//! The particle simulation on 8 nodes, 256×256 cells, with `Part`
//! particles per cell in the top half of P0's rows (10 or 50). Iterations
//! run under the 10 ms `/proc` tick, so the grace period must use
//! min-of-`gethrtime` wallclock timing; with GP = 1 a single sample keeps
//! competing-process context-switch spikes in the row weights and the
//! resulting distribution is worse. The paper measures 13 % (Part = 10)
//! and 16 % (Part = 50) better post-redistribution execution with GP = 5.

use dynmpi::{DropPolicy, DynMpiConfig};
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment};
use dynmpi_apps::particle::ParticleParams;
use dynmpi_bench::{fmt_s, log_info, print_table, write_rows, BenchArgs};
use dynmpi_obs::{Json, Recorder};
use dynmpi_sim::LoadScript;

struct Row {
    figure: &'static str,
    part: f64,
    gp: u32,
    settled_cycle_s: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::str(self.figure)),
            ("part", Json::Num(self.part)),
            ("gp", Json::UInt(u64::from(self.gp))),
            ("settled_cycle_s", Json::Num(self.settled_cycle_s)),
        ])
    }
}

fn main() {
    let args = BenchArgs::parse();
    let iters = if args.quick { 120 } else { 200 };
    let extra = iters;
    let items: Vec<(f64, u32)> = [10.0f64, 50.0]
        .into_iter()
        .flat_map(|part| [1u32, 5].map(|gp| (part, gp)))
        .collect();
    // --trace-out/--profile-out record the long run of the first arm
    // (Part = 10, GP = 1, sweep item 0).
    let inst = args.instrumentation();
    let rows: Vec<Row> = dynmpi_testkit::sweep(&items, args.threads, |i, item| {
        let (part, gp) = *item;
        // Per §5.4 the competing process lands on P0 — the node that
        // also holds the imbalanced hot rows, so mismeasuring them
        // corrupts exactly the weights that matter.
        let script = LoadScript::dedicated().at_cycle(0, 10, 1);
        let cfg = DynMpiConfig {
            grace_period: gp,
            drop_policy: DropPolicy::Never,
            ..Default::default()
        };
        let mk = |iters: usize, rec: Option<Recorder>| {
            let mut p = ParticleParams::fig7(part);
            p.iters = iters;
            run_sim_with(
                &Experiment::new(AppSpec::Particle(p), 8)
                    .with_cfg(cfg.clone())
                    .with_script(script.clone())
                    .with_shards(args.shards),
                rec,
            )
        };
        let short = mk(iters, None);
        let long = mk(iters + extra, inst.recorder_for(i == 0));
        let settled = (long.makespan - short.makespan) / extra as f64;
        log_info!("fig7 part={part} gp={gp}: settled {settled:.4}s/cycle");
        Row {
            figure: "fig7",
            part,
            gp,
            settled_cycle_s: settled,
        }
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.part),
                row.gp.to_string(),
                fmt_s(row.settled_cycle_s),
            ]
        })
        .collect();
    print_table(
        "Figure 7 — particle sim, 8 nodes: settled cycle time by grace period",
        &["Part", "GP", "cycle(s)"],
        &table,
    );
    for part in [10.0f64, 50.0] {
        let get = |gp: u32| {
            rows.iter()
                .find(|r| r.part == part && r.gp == gp)
                .unwrap()
                .settled_cycle_s
        };
        let (g1, g5) = (get(1), get(5));
        println!(
            "Part={part}: GP=5 is {:.1}% better than GP=1 (paper: {}%)",
            (g1 - g5) / g1 * 100.0,
            if part == 10.0 { 13 } else { 16 },
        );
    }
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "fig7_grace_period", &json_rows);
    inst.finish();
}
