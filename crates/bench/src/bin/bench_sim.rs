//! Simulator fast-path micro-bench: before/after numbers for the
//! closed-form CPU fast-forward, the turn-handoff bypass, and the
//! indexed mailbox.
//!
//! Three comparisons, each against the seed's behavior:
//!
//! * **engine events** — heap pushes to simulate a 100-virtual-second
//!   compute under ncp = 3: `DYNMPI_SIM_STEPPED`-style stepped mode
//!   (the seed's one-event-per-quantum strategy, selected here with
//!   `with_stepped(true)`) vs the default fast-forward + bypass path.
//!   Both must produce bit-identical virtual outputs.
//! * **recv matching** — envelopes examined (and wall time) to drain a
//!   deep out-of-order mailbox: the seed's linear min-(arrival, seq)
//!   scan vs the per-(tag, src) indexed queues, reproduced here as
//!   standalone micro-models of the two matchers.
//! * **sweep wall-clock** — a fig4-shaped block of independent Jacobi
//!   runs through `dynmpi_testkit::sweep` at `--threads 1` vs the
//!   machine's parallelism, asserting identical makespans.
//! * **monitor overhead** — an adaptive Jacobi run with the recorder and
//!   the streaming health monitor subscribed vs the same run bare: the
//!   virtual outputs must be bit-identical and the wall-clock overhead
//!   of online monitoring stays pinned below its acceptance bar.
//! * **checkpoint overhead** — the same adaptive Jacobi run with the
//!   fault path armed (failure detection + periodic buddy-checkpoint
//!   refreshes) vs. unguarded: the refresh traffic's virtual-makespan
//!   overhead is deterministic and must stay pinned below its
//!   acceptance bar, and the refresh counters must show the mirrors
//!   actually cycling.
//! * **sharded scaling** — one 1024-rank ring-exchange simulation at
//!   `--shards` 1/2/8: virtual outputs must be bit-identical at every
//!   shard count, and on multi-core machines the 8-shard run must beat
//!   the 1-shard run by a core-count-tiered wall-clock factor.
//!
//! Prints the before/after table and writes `results/BENCH_sim.json`.
//! `--check` runs a scaled-down configuration and only asserts the
//! invariants (used by CI's bench-smoke job).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use dynmpi::DynMpiConfig;
use dynmpi_apps::harness::{run_sim, run_sim_with, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_bench::{log_info, print_table};
use dynmpi_obs::{HealthMonitor, Json, Recorder, DEFAULT_WINDOW_NS};
use dynmpi_sim::{Cluster, LoadScript, NodeSpec, SimReport, SimTime};

/// One rank computing `work` units on a speed-1e6 node that hosts three
/// competing processes from t = 0, so the guest holds a quarter share and
/// stepped mode pays one heap event per 10 ms quantum.
fn loaded_compute(stepped: bool, work: f64) -> SimReport {
    let script = LoadScript::dedicated().at_time(0, SimTime::ZERO, 3);
    Cluster::homogeneous(1, NodeSpec::with_speed(1e6))
        .with_script(script)
        .with_stepped(stepped)
        .run_spmd(move |ctx| ctx.advance(work))
        .report
}

/// A pending message in the matcher micro-models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Env {
    src: usize,
    tag: u64,
    arrival: u64,
    seq: u64,
}

trait Matcher {
    fn push(&mut self, e: Env);
    fn pop(&mut self, src: usize, tag: u64) -> Env;
}

/// The seed's matcher: one flat `Vec`, every `recv` scans all pending
/// envelopes for the min-(arrival, seq) match.
#[derive(Default)]
struct LinearBox {
    msgs: Vec<Env>,
    examined: u64,
}

impl Matcher for LinearBox {
    fn push(&mut self, e: Env) {
        self.msgs.push(e);
    }

    fn pop(&mut self, src: usize, tag: u64) -> Env {
        self.examined += self.msgs.len() as u64;
        let best = self
            .msgs
            .iter()
            .enumerate()
            .filter(|(_, m)| m.src == src && m.tag == tag)
            .min_by_key(|(_, m)| (m.arrival, m.seq))
            .map(|(i, _)| i)
            .expect("message present");
        self.msgs.remove(best)
    }
}

/// The engine's current matcher shape: per-(tag, src) FIFO queues, one
/// probe per `recv`.
#[derive(Default)]
struct IndexedBox {
    queues: BTreeMap<(u64, usize), VecDeque<Env>>,
    probed: u64,
}

impl Matcher for IndexedBox {
    fn push(&mut self, e: Env) {
        self.queues.entry((e.tag, e.src)).or_default().push_back(e);
    }

    fn pop(&mut self, src: usize, tag: u64) -> Env {
        self.probed += 1;
        let q = self.queues.get_mut(&(tag, src)).expect("queue present");
        let e = q.pop_front().expect("message present");
        if q.is_empty() {
            self.queues.remove(&(tag, src));
        }
        e
    }
}

/// Fills a matcher with `senders * per_sender` envelopes, then drains it
/// in an order that keeps the backlog deep (round-robin over senders).
/// Returns the drained envelopes for cross-checking.
fn drive_matcher<M: Matcher>(senders: usize, per_sender: usize, b: &mut M) -> Vec<Env> {
    let mut arrival = 0u64;
    for m in 0..per_sender {
        for src in 0..senders {
            arrival += 7;
            b.push(Env {
                src,
                tag: src as u64,
                arrival,
                seq: (m * senders + src) as u64,
            });
        }
    }
    let mut out = Vec::with_capacity(senders * per_sender);
    for _ in 0..per_sender {
        for src in 0..senders {
            out.push(b.pop(src, src as u64));
        }
    }
    out
}

/// Wall-clock of a fig4-shaped block of independent Jacobi runs under
/// `sweep` with `threads` workers. Returns (makespans, seconds).
fn mini_sweep(threads: usize, iters: usize) -> (Vec<f64>, f64) {
    let items: Vec<(usize, usize)> = [2usize, 4]
        .into_iter()
        .flat_map(|nodes| [iters, 2 * iters, 3 * iters].map(|it| (nodes, it)))
        .collect();
    let start = Instant::now();
    let makespans = dynmpi_testkit::sweep(&items, threads, |_i, item| {
        let (nodes, it) = *item;
        let p = JacobiParams {
            n: 256,
            iters: it,
            exercise_kernel: false,
            rebalance_at: None,
        };
        run_sim(
            &Experiment::new(AppSpec::Jacobi(p), nodes)
                .with_node_spec(NodeSpec::with_speed(5e6))
                .with_cfg(DynMpiConfig::no_adapt())
                .with_script(LoadScript::dedicated().at_cycle(nodes - 1, 10, 1)),
        )
        .makespan
    });
    (makespans, start.elapsed().as_secs_f64())
}

/// One ring-exchange run: `ranks` ranks, nearest-neighbor traffic with a
/// little any-source control traffic and monitor reads mixed in (the
/// cross-shard-sensitive operations), on `shards` engine shards. Returns
/// the run's virtual outputs plus the wall-clock seconds it took.
#[allow(clippy::type_complexity)]
fn sharded_ring(ranks: usize, shards: usize, iters: usize) -> ((Vec<SimTime>, SimReport), f64) {
    let script = LoadScript::dedicated()
        .at_time(ranks - 1, SimTime::from_millis(40), 2)
        .at_cycle(0, 5, 1);
    let cluster = Cluster::homogeneous(ranks, NodeSpec::with_speed(1e7))
        .with_script(script)
        .with_shards(shards);
    let start = Instant::now();
    let out = cluster.run_spmd(move |ctx| {
        let r = ctx.rank();
        let n = ctx.nprocs();
        for i in 0..iters {
            ctx.advance(2e4);
            ctx.send((r + 1) % n, 1, vec![0u8; 512]);
            let _ = ctx.recv((r + n - 1) % n, 1);
            ctx.phase_cycle_completed();
            // Long-haul any-source traffic: senders ≡ 0 (mod 16) target the
            // ≡ 8 (mod 16) ranks half a ring away (n is a multiple of 16,
            // so the target set is exactly the receiver set) — guaranteed
            // cross-shard at any shard count ≥ 2.
            if r % 16 == 0 && i % 8 == 1 {
                ctx.send((r + n / 2 + 8) % n, 9, vec![i as u8]);
            }
            if r % 16 == 8 && i % 8 == 1 {
                let _ = ctx.recv_any(9);
            }
            if i % 16 == 2 {
                std::hint::black_box(ctx.dmpi_ps((r + 7) % n));
            }
        }
        ctx.now()
    });
    let secs = start.elapsed().as_secs_f64();
    ((out.results, out.report.virtual_outputs()), secs)
}

/// The wall-clock speedup `--shards 8` must show over `--shards 1`,
/// tiered by the machine's core count so CI on small runners still
/// enforces a bound. Below two cores there is nothing to assert.
fn speedup_bound(cores: usize) -> f64 {
    if cores >= 8 {
        3.0
    } else if cores >= 4 {
        1.6
    } else if cores >= 2 {
        1.2
    } else {
        0.0
    }
}

/// The adaptive competing-process Jacobi run used to price the online
/// health monitor: same shape as the `health_monitor` integration tests.
fn health_experiment(iters: usize) -> Experiment {
    Experiment::new(
        AppSpec::Jacobi(JacobiParams {
            n: 256,
            iters,
            exercise_kernel: false,
            rebalance_at: None,
        }),
        4,
    )
    .with_node_spec(NodeSpec::with_speed(5e6))
    .with_cfg(DynMpiConfig::default())
    .with_script(LoadScript::dedicated().at_cycle(3, 10, 1))
}

fn main() {
    let mut check = false;
    let mut out_dir = "results".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => {
                out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!("usage: bench_sim [--check] [--out DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    // 100 virtual seconds normally (25e6 work at a quarter of 1e6/s);
    // --check shrinks it but keeps thousands of stepped quanta.
    let work = if check { 2.5e6 } else { 25e6 };
    let (senders, per_sender) = if check { (16, 16) } else { (64, 64) };
    let sweep_iters = if check { 10 } else { 40 };
    let monitor_iters = if check { 30 } else { 120 };
    let (ring_ranks, ring_iters) = if check { (128, 24) } else { (1024, 120) };

    log_info!("engine events: {work} work units under ncp=3, stepped vs fast");
    let stepped = loaded_compute(true, work);
    let fast = loaded_compute(false, work);
    assert_eq!(
        stepped.virtual_outputs(),
        fast.virtual_outputs(),
        "stepped and fast modes diverged on virtual outputs"
    );
    let event_ratio = stepped.engine_events as f64 / fast.engine_events.max(1) as f64;

    log_info!("recv matching: {senders} senders x {per_sender} msgs, linear vs indexed");
    let mut lin = LinearBox::default();
    let lin_out = drive_matcher(senders, per_sender, &mut lin);
    let mut idx = IndexedBox::default();
    let idx_out = drive_matcher(senders, per_sender, &mut idx);
    assert_eq!(lin_out, idx_out, "matchers disagree on delivery order");
    let lin_ns = dynmpi_testkit::bench("matcher: seed linear scan", || {
        drive_matcher(senders, per_sender, &mut LinearBox::default())
    })
    .mean_ns;
    let idx_ns = dynmpi_testkit::bench("matcher: indexed queues", || {
        drive_matcher(senders, per_sender, &mut IndexedBox::default())
    })
    .mean_ns;

    let threads = dynmpi_testkit::available_threads();
    log_info!("sweep wall-clock: 6 Jacobi runs at --threads 1 vs {threads}");
    let (serial_ms, serial_s) = mini_sweep(1, sweep_iters);
    let (par_ms, par_s) = mini_sweep(threads, sweep_iters);
    assert_eq!(serial_ms, par_ms, "sweep results changed with thread count");

    log_info!("monitor overhead: adaptive Jacobi x{monitor_iters} iters, bare vs recorder+health");
    let exp = health_experiment(monitor_iters);
    let with_monitor = || {
        let rec = Recorder::new();
        let monitor = Arc::new(HealthMonitor::new(DEFAULT_WINDOW_NS));
        rec.subscribe(monitor.clone());
        let run = run_sim_with(&exp, Some(rec));
        (run, monitor)
    };
    let bare = run_sim_with(&exp, None);
    let (monitored, monitor) = with_monitor();
    assert_eq!(
        bare.makespan.to_bits(),
        monitored.makespan.to_bits(),
        "health monitor perturbed the simulated makespan"
    );
    let report = monitor.report();
    assert!(
        !report.windows.is_empty() && report.nodes == 4,
        "health monitor produced no windows on the monitored run"
    );
    let bare_ns =
        dynmpi_testkit::bench("health monitor: off", || run_sim_with(&exp, None).makespan).mean_ns;
    let mon_ns = dynmpi_testkit::bench("health monitor: on", || with_monitor().0.makespan).mean_ns;
    let monitor_overhead = mon_ns / bare_ns;

    log_info!("checkpoint overhead: same Jacobi run, fault path off vs armed (interval 5)");
    let ckpt_interval = 5u32;
    let ckpt_exp = health_experiment(monitor_iters).with_cfg(DynMpiConfig {
        failure_detection: true,
        peer_timeout_seconds: 0.05,
        failure_confirm_cycles: 3,
        checkpoint_interval_cycles: ckpt_interval,
        ..Default::default()
    });
    let ckpt_rec = Recorder::new();
    let guarded = run_sim_with(&ckpt_exp, Some(ckpt_rec.clone()));
    let ckpt_metrics = ckpt_rec.merged_metrics();
    let ckpt_refreshes = ckpt_metrics.counter(dynmpi::CKPT_REFRESHES);
    let ckpt_bytes = ckpt_metrics.counter(dynmpi::CKPT_BYTES_SENT);
    // Virtual, not wall: the refresh traffic is simulated communication,
    // so the ratio is exactly reproducible on any machine.
    let ckpt_overhead = guarded.makespan / bare.makespan;
    let guarded_ns = dynmpi_testkit::bench("fault path: armed", || {
        run_sim_with(&ckpt_exp, None).makespan
    })
    .mean_ns;

    let cores = dynmpi_testkit::available_threads();
    log_info!("sharded scaling: {ring_ranks}-rank ring at --shards 1/2/8 on {cores} cores");
    let shard_counts = [1usize, 2, 8];
    let mut shard_secs = Vec::new();
    let mut shard_out = None;
    for &s in &shard_counts {
        let (out, secs) = sharded_ring(ring_ranks, s, ring_iters);
        log_info!("  --shards {s}: {secs:.2}s wall");
        match &shard_out {
            None => shard_out = Some(out),
            Some(first) => assert_eq!(
                *first, out,
                "--shards {s} diverged from --shards 1 on virtual outputs"
            ),
        }
        shard_secs.push(secs);
    }
    let shard_speedup = shard_secs[0] / shard_secs[2].max(f64::MIN_POSITIVE);

    print_table(
        "sim fast path: before/after",
        &["metric", "seed", "now", "ratio"],
        &[
            vec![
                format!(
                    "engine events, {:.0}s virtual ncp=3",
                    fast.finish_time.as_secs_f64()
                ),
                stepped.engine_events.to_string(),
                fast.engine_events.to_string(),
                format!("{event_ratio:.0}x"),
            ],
            vec![
                "turn bypasses (fast mode)".to_string(),
                "0".to_string(),
                fast.turn_bypasses.to_string(),
                "-".to_string(),
            ],
            vec![
                format!("envelopes examined, {} msgs", senders * per_sender),
                lin.examined.to_string(),
                idx.probed.to_string(),
                format!("{:.0}x", lin.examined as f64 / idx.probed.max(1) as f64),
            ],
            vec![
                "matcher drain time (µs)".to_string(),
                format!("{:.1}", lin_ns / 1e3),
                format!("{:.1}", idx_ns / 1e3),
                format!("{:.1}x", lin_ns / idx_ns),
            ],
            vec![
                format!("sweep wall-clock, 6 runs x{threads} threads (s)"),
                format!("{serial_s:.2}"),
                format!("{par_s:.2}"),
                format!("{:.2}x", serial_s / par_s),
            ],
            vec![
                format!("monitored run (ms), jacobi x{monitor_iters} iters"),
                format!("{:.2}", bare_ns / 1e6),
                format!("{:.2}", mon_ns / 1e6),
                format!("{monitor_overhead:.2}x"),
            ],
            vec![
                format!("fault path armed, virtual makespan (x{ckpt_refreshes} refreshes)"),
                format!("{:.3}s", bare.makespan),
                format!("{:.3}s", guarded.makespan),
                format!("{ckpt_overhead:.3}x"),
            ],
            vec![
                format!("{ring_ranks}-rank ring wall-clock (s), 1 vs 8 shards"),
                format!("{:.2}", shard_secs[0]),
                format!("{:.2}", shard_secs[2]),
                format!("{shard_speedup:.2}x"),
            ],
        ],
    );

    // The acceptance bars this binary exists to hold.
    assert!(
        stepped.engine_events >= 5 * fast.engine_events,
        "fast path must push >=5x fewer engine events than stepped mode \
         (stepped {}, fast {})",
        stepped.engine_events,
        fast.engine_events
    );
    assert!(
        fast.turn_bypasses > 0,
        "turn-handoff bypass never fired on a single-rank compute"
    );
    assert!(
        lin.examined >= 10 * idx.probed,
        "indexed mailbox regressed: {} examined vs {} probes",
        lin.examined,
        idx.probed
    );
    // The online health monitor must stay cheap enough to leave on: the
    // bar is generous against CI wall-clock noise, but catches the
    // monitor accidentally becoming superlinear in the event stream.
    assert!(
        monitor_overhead < 5.0,
        "health monitor overhead {monitor_overhead:.2}x exceeds the 5x acceptance bar"
    );
    // The fault path must be cheap enough to arm by default on long
    // runs: the mirror refreshes and the timeout-guarded control gather
    // together may not stretch the virtual makespan past the bar. The
    // ratio is pure simulation, so it is deterministic — this is a tight
    // bound, not a wall-clock-noise allowance.
    assert!(
        ckpt_refreshes > 0 && ckpt_bytes > 0,
        "fault-path run recorded no checkpoint refreshes ({ckpt_refreshes}) or \
         bytes ({ckpt_bytes}) — the mirrors never cycled"
    );
    assert!(
        ckpt_overhead < 1.25,
        "checkpoint refresh overhead {ckpt_overhead:.3}x exceeds the 1.25x bar \
         ({:.3}s guarded vs {:.3}s bare)",
        guarded.makespan,
        bare.makespan
    );
    // Bit-identity across shard counts was asserted run-by-run above; the
    // wall-clock bound only binds where the machine has cores to use.
    let bound = speedup_bound(cores);
    if bound > 0.0 {
        assert!(
            shard_speedup >= bound,
            "{ring_ranks}-rank ring: --shards 8 speedup {shard_speedup:.2}x is under the \
             {bound:.1}x bound for {cores} cores ({:.2}s vs {:.2}s)",
            shard_secs[0],
            shard_secs[2]
        );
    } else {
        log_info!("single core: skipping the shard speedup bound (identity still enforced)");
    }

    if check {
        println!("bench_sim --check OK");
        return;
    }

    let doc = Json::obj([
        ("bench", Json::str("bench_sim")),
        (
            "engine_events",
            Json::obj([
                ("virtual_seconds", Json::Num(fast.finish_time.as_secs_f64())),
                ("ncp", Json::UInt(3)),
                ("stepped", Json::UInt(stepped.engine_events)),
                ("fast", Json::UInt(fast.engine_events)),
                ("turn_bypasses", Json::UInt(fast.turn_bypasses)),
                ("stepped_over_fast", Json::Num(event_ratio)),
            ]),
        ),
        (
            "recv_matching",
            Json::obj([
                ("messages", Json::UInt((senders * per_sender) as u64)),
                ("linear_examined", Json::UInt(lin.examined)),
                ("indexed_probes", Json::UInt(idx.probed)),
                ("linear_drain_ns", Json::Num(lin_ns)),
                ("indexed_drain_ns", Json::Num(idx_ns)),
                ("speedup", Json::Num(lin_ns / idx_ns)),
            ]),
        ),
        (
            "sweep_wall_clock",
            Json::obj([
                ("runs", Json::UInt(serial_ms.len() as u64)),
                ("threads", Json::UInt(threads as u64)),
                ("serial_s", Json::Num(serial_s)),
                ("parallel_s", Json::Num(par_s)),
                ("speedup", Json::Num(serial_s / par_s)),
            ]),
        ),
        (
            "monitor_overhead",
            Json::obj([
                ("iters", Json::UInt(monitor_iters as u64)),
                ("bare_ns", Json::Num(bare_ns)),
                ("monitored_ns", Json::Num(mon_ns)),
                ("overhead", Json::Num(monitor_overhead)),
                ("health_windows", Json::UInt(report.windows.len() as u64)),
            ]),
        ),
        (
            "checkpoint_overhead",
            Json::obj([
                ("iters", Json::UInt(monitor_iters as u64)),
                ("interval_cycles", Json::UInt(ckpt_interval as u64)),
                ("refreshes", Json::UInt(ckpt_refreshes)),
                ("bytes_sent", Json::UInt(ckpt_bytes)),
                ("bare_makespan_s", Json::Num(bare.makespan)),
                ("guarded_makespan_s", Json::Num(guarded.makespan)),
                ("overhead", Json::Num(ckpt_overhead)),
                ("bare_wall_ns", Json::Num(bare_ns)),
                ("guarded_wall_ns", Json::Num(guarded_ns)),
            ]),
        ),
        (
            "sharded_scaling",
            Json::obj([
                ("ranks", Json::UInt(ring_ranks as u64)),
                ("iters", Json::UInt(ring_iters as u64)),
                ("cores", Json::UInt(cores as u64)),
                ("shards_1_s", Json::Num(shard_secs[0])),
                ("shards_2_s", Json::Num(shard_secs[1])),
                ("shards_8_s", Json::Num(shard_secs[2])),
                ("speedup_8_over_1", Json::Num(shard_speedup)),
                ("bound", Json::Num(speedup_bound(cores))),
            ]),
        ),
    ]);
    let path = format!("{out_dir}/BENCH_sim.json");
    std::fs::create_dir_all(&out_dir).ok();
    std::fs::write(&path, format!("{doc}\n")).expect("write BENCH_sim.json");
    log_info!("wrote {path}");
}
