//! Figure 5: multiple redistribution points.
//!
//! Jacobi on 4 nodes, 2048×2048, three equal periods. A competing process
//! runs on one node during the second period only. Three arms:
//!
//! * **No Redist** — adaptation off;
//! * **Redist Once** — adapt when the CP appears, but not when it leaves;
//! * **Redist Twice** — adapt at both transitions.
//!
//! Run for *Short Execution* (period = 50 cycles) and *Long Execution*
//! (period = 500), as in the paper. The short run shows the second
//! redistribution's cost canceling its benefit; the long run shows it
//! paying off.

use dynmpi::{DropPolicy, DynMpiConfig};
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_bench::{fmt_s, log_info, print_table, write_rows, BenchArgs};
use dynmpi_obs::Json;
use dynmpi_sim::{LoadScript, NodeSpec};

struct Row {
    figure: &'static str,
    execution: &'static str,
    variant: &'static str,
    period1_s: f64,
    period2_s: f64,
    period3_s: f64,
    redist_s: f64,
    total_s: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::str(self.figure)),
            ("execution", Json::str(self.execution)),
            ("variant", Json::str(self.variant)),
            ("period1_s", Json::Num(self.period1_s)),
            ("period2_s", Json::Num(self.period2_s)),
            ("period3_s", Json::Num(self.period3_s)),
            ("redist_s", Json::Num(self.redist_s)),
            ("total_s", Json::Num(self.total_s)),
        ])
    }
}

fn period_sum(per_rank: &[dynmpi_apps::AppResult], range: std::ops::Range<usize>) -> f64 {
    // The job advances at the pace of the slowest rank each cycle.
    (range.start..range.end)
        .map(|c| {
            per_rank
                .iter()
                .filter_map(|r| r.cycle_times.get(c))
                .cloned()
                .fold(0.0, f64::max)
        })
        .sum()
}

fn main() {
    let args = BenchArgs::parse();
    let (n, node) = if args.quick {
        (512, NodeSpec::with_speed(5e6))
    } else {
        (2048, NodeSpec::xeon_550())
    };
    // Every (execution, variant) arm is an independent run: build the six
    // items up front and hand them to the parallel sweep.
    let variants = |period: usize| {
        [
            ("no-redist", DynMpiConfig::no_adapt()),
            (
                "redist-once",
                DynMpiConfig {
                    drop_policy: DropPolicy::Never,
                    max_redistributions: Some(1),
                    ..Default::default()
                },
            ),
            (
                "redist-twice",
                DynMpiConfig {
                    drop_policy: DropPolicy::Never,
                    ..Default::default()
                },
            ),
        ]
        .map(|(variant, cfg)| (variant, cfg, period))
    };
    let items: Vec<(&'static str, DynMpiConfig, usize, &'static str)> =
        [("short", 50usize), ("long", 500usize)]
            .into_iter()
            .flat_map(|(execution, period)| {
                variants(period).map(|(variant, cfg, period)| (variant, cfg, period, execution))
            })
            .collect();
    // --trace-out/--profile-out record the first adaptive arm: item 1 (short, redist-once).
    let inst = args.instrumentation();
    let rows: Vec<Row> = dynmpi_testkit::sweep(&items, args.threads, |i, item| {
        let (variant, cfg, period, execution) = item;
        let (variant, period, execution) = (*variant, *period, *execution);
        // The CP lands on the last node (not the control root).
        let script = LoadScript::dedicated()
            .at_cycle(3, period as u64, 1)
            .at_cycle(3, (2 * period) as u64, 0);
        let p = JacobiParams {
            n,
            iters: 3 * period,
            exercise_kernel: false,
            rebalance_at: None,
        };
        let r = run_sim_with(
            &Experiment::new(AppSpec::Jacobi(p), 4)
                .with_node_spec(node)
                .with_cfg(cfg.clone())
                .with_script(script)
                .with_shards(args.shards),
            inst.recorder_for(i == 1),
        );
        let row = Row {
            figure: "fig5",
            execution,
            variant,
            period1_s: period_sum(&r.per_rank, 0..period),
            period2_s: period_sum(&r.per_rank, period..2 * period),
            period3_s: period_sum(&r.per_rank, 2 * period..3 * period),
            redist_s: r.redist_seconds(),
            total_s: r.makespan,
        };
        log_info!(
            "fig5 {execution} {variant}: total {:.2}s (p1 {:.2} p2 {:.2} p3 {:.2} redist {:.3})",
            row.total_s,
            row.period1_s,
            row.period2_s,
            row.period3_s,
            row.redist_s
        );
        row
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.execution.to_string(),
                row.variant.to_string(),
                fmt_s(row.period1_s),
                fmt_s(row.period2_s),
                fmt_s(row.period3_s),
                fmt_s(row.redist_s),
                fmt_s(row.total_s),
            ]
        })
        .collect();
    print_table(
        "Figure 5 — Jacobi, 4 nodes: periods 1–3, CP on one node during period 2 only",
        &[
            "execution",
            "variant",
            "period1(s)",
            "period2(s)",
            "period3(s)",
            "redist(s)",
            "total(s)",
        ],
        &table,
    );

    // Paper headlines: redistributing after period 1 speeds the whole run
    // ~16.7%; the second redistribution only pays off for long runs.
    for exec_name in ["short", "long"] {
        let get = |v: &str| {
            rows.iter()
                .find(|r| r.execution == exec_name && r.variant == v)
                .unwrap()
                .total_s
        };
        let no = get("no-redist");
        let once = get("redist-once");
        let twice = get("redist-twice");
        println!(
            "{exec_name}: once {:.1}% faster than none; twice {:+.1}% vs once (paper: \
             ~16.7% for the first redistribution; second helps only long runs, +7.9%)",
            (no - once) / no * 100.0,
            (once - twice) / once * 100.0,
        );
    }
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "fig5_redist_points", &json_rows);
    inst.finish();
}
