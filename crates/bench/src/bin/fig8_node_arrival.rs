//! Figure 8 (extension): true node arrival — growing the job.
//!
//! The paper only ever *shrinks* the computation (§4.4 node removal plus
//! the future-work rejoin of already-seeded ranks). This harness measures
//! the malleability extension: a brand-new node — its own speed, NIC and
//! cold-start delay — arrives mid-run, is measured through an arrival
//! grace window, passes the expansion decision, and receives rows.
//!
//! Two scenario families:
//!
//! * **grow** — Jacobi on 2/4/8 seed nodes; an equal-speed node arrives
//!   at a fixed virtual time. Reported: the cycle the arrival was first
//!   evaluated, the cycle it was admitted, the rows it received, and the
//!   settled per-cycle gain vs. the no-arrival baseline.
//! * **readd** — one seed node gets competing load and is physically
//!   dropped; a fresh node arrives afterwards and restores the lost
//!   capacity — recovery from removal by re-adding.
//!
//! Every simulated configuration is deterministic: rows (and `--health-out`
//! snapshots) are byte-identical at any `--threads` value and under both
//! simulator engines (`DYNMPI_SIM_STEPPED=1`).

use dynmpi::{DropPolicy, DynMpiConfig, RuntimeEvent};
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_bench::{fmt_s, log_info, print_table, write_rows, BenchArgs};
use dynmpi_obs::Json;
use dynmpi_obs::Recorder;
use dynmpi_sim::{LoadScript, NodeSpec, SimDur, SimTime};

struct Row {
    figure: &'static str,
    scenario: &'static str,
    nodes: usize,
    admitted: bool,
    arrived_cycle: u64,
    admitted_cycle: u64,
    new_rows: u64,
    base_cycle_s: f64,
    with_cycle_s: f64,
    /// Positive: the grown configuration is faster per cycle.
    gain_pct: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::str(self.figure)),
            ("scenario", Json::str(self.scenario)),
            ("nodes", Json::UInt(self.nodes as u64)),
            ("admitted", Json::Bool(self.admitted)),
            ("arrived_cycle", Json::UInt(self.arrived_cycle)),
            ("admitted_cycle", Json::UInt(self.admitted_cycle)),
            ("new_rows", Json::UInt(self.new_rows)),
            ("base_cycle_s", Json::Num(self.base_cycle_s)),
            ("with_cycle_s", Json::Num(self.with_cycle_s)),
            ("gain_pct", Json::Num(self.gain_pct)),
        ])
    }
}

/// Steady-state cycle time after adaptation settled: the marginal rate
/// between a long and a short run of the same experiment (immune to
/// warm-up, grace windows, and the absorption transient).
fn settled_cycle(short: f64, long: f64, extra_cycles: usize) -> f64 {
    (long - short) / extra_cycles as f64
}

fn main() {
    let args = BenchArgs::parse();
    let (n, iters, node) = if args.quick {
        (256, 220usize, NodeSpec::with_speed(20e6))
    } else {
        (1024, 400usize, NodeSpec::ultra5_360())
    };
    let extra = iters;
    // readd: the replacement must come online after the drop completed
    // (detection lags the script by the monitor's 1 s sampling period)
    // but well before the short run ends — both are virtual-time points
    // that scale with the input size.
    let readd_arrival_ms: u64 = if args.quick { 1400 } else { 2600 };

    // grow on 2/4/8 seed nodes, then the removal-recovery scenario.
    let items: Vec<(&'static str, usize)> =
        vec![("grow", 2), ("grow", 4), ("grow", 8), ("readd", 4)];
    // Instrumentation records the first sweep item's arrival (short) run.
    let inst = args.instrumentation();

    let rows: Vec<Row> = dynmpi_testkit::sweep(&items, args.threads, |i, item| {
        let (scenario, nodes) = *item;
        let run = |script: LoadScript, iters: usize, rec: Option<Recorder>| {
            let p = JacobiParams {
                n,
                iters,
                exercise_kernel: false,
                rebalance_at: None,
            };
            run_sim_with(
                &Experiment::new(AppSpec::Jacobi(p), nodes)
                    .with_node_spec(node)
                    .with_cfg(DynMpiConfig {
                        drop_policy: DropPolicy::Always,
                        arrival_retry_cycles: 4,
                        ..Default::default()
                    })
                    .with_script(script)
                    .with_shards(args.shards),
                rec,
            )
        };
        let base_script = match scenario {
            // readd baseline: the load and the drop, but no spare capacity.
            "readd" => LoadScript::dedicated().at_cycle(nodes - 1, 10, 3),
            _ => LoadScript::dedicated(),
        };
        let arrival_at = match scenario {
            // After the drop has surely completed (monitor daemon samples
            // once per virtual second, so detection lags the script).
            "readd" => SimTime::from_millis(readd_arrival_ms),
            _ => SimTime::from_millis(80),
        };
        let with_script =
            base_script
                .clone()
                .node_arrival(arrival_at, node, SimDur::from_millis(25));

        let base_short = run(base_script.clone(), iters, None);
        let base_long = run(base_script, iters + extra, None);
        let with_short = run(with_script.clone(), iters, inst.recorder_for(i == 0));
        let with_long = run(with_script, iters + extra, None);

        let base_cycle_s = settled_cycle(base_short.makespan, base_long.makespan, extra);
        let with_cycle_s = settled_cycle(with_short.makespan, with_long.makespan, extra);

        let mut arrived_cycle = 0;
        let mut admitted_cycle = 0;
        let mut admitted = false;
        for e in with_short.events() {
            match e {
                RuntimeEvent::NodeArrived { cycle, .. } if arrived_cycle == 0 => {
                    arrived_cycle = *cycle;
                }
                RuntimeEvent::NodeAdmitted { cycle, .. } if !admitted => {
                    admitted = true;
                    admitted_cycle = *cycle;
                }
                _ => {}
            }
        }
        let new_rows = with_short.per_rank[nodes].final_rows as u64;
        let row = Row {
            figure: "fig8",
            scenario,
            nodes,
            admitted,
            arrived_cycle,
            admitted_cycle,
            new_rows,
            base_cycle_s,
            with_cycle_s,
            gain_pct: (base_cycle_s - with_cycle_s) / base_cycle_s * 100.0,
        };
        log_info!(
            "fig8 {scenario} nodes={nodes}: arrived c{arrived_cycle} admitted({}) c{admitted_cycle} \
             rows {new_rows}, cycle {} -> {} ({:+.1}%)",
            row.admitted,
            fmt_s(base_cycle_s),
            fmt_s(with_cycle_s),
            row.gain_pct
        );
        row
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.nodes.to_string(),
                r.admitted.to_string(),
                r.arrived_cycle.to_string(),
                r.admitted_cycle.to_string(),
                r.new_rows.to_string(),
                fmt_s(r.base_cycle_s),
                fmt_s(r.with_cycle_s),
                format!("{:+.1}", r.gain_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 8 — Jacobi: growing the job with a true node arrival",
        &[
            "scenario",
            "seed",
            "admitted",
            "arrived@",
            "admitted@",
            "new rows",
            "base(s)",
            "grown(s)",
            "gain %",
        ],
        &table,
    );
    println!(
        "\nexpected shape: the arrival is absorbed on every cluster size; the per-cycle \
         gain shrinks as the seed cluster grows (1/(n+1) marginal capacity), and the \
         readd scenario recovers the capacity lost to the drop"
    );
    let json_rows: Vec<Json> = rows.iter().map(Row::to_json).collect();
    write_rows(&args.out_dir, "fig8_node_arrival", &json_rows);
    inst.finish();
}
