//! Integration tests for the online health monitor (ISSUE 6 tentpole):
//! attaching the monitor must not perturb the simulation in any way, its
//! output must be deterministic, and on the paper's competing-process
//! scenario it must flag the loaded node as a straggler *before* the
//! balancer's redistribution lands on the same virtual timeline.

use std::sync::Arc;

use dynmpi::DynMpiConfig;
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment, SimRunResult};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_obs::{HealthMonitor, HealthState, Recorder};
use dynmpi_sim::{LoadScript, NodeSpec};

/// The fig4 competing-process scenario, scaled down: Jacobi on 4 nodes,
/// one competing process appearing on the last node at its 10th cycle.
fn loaded_experiment() -> Experiment {
    Experiment::new(
        AppSpec::Jacobi(JacobiParams {
            n: 256,
            iters: 60,
            exercise_kernel: false,
            rebalance_at: None,
        }),
        4,
    )
    .with_node_spec(NodeSpec::with_speed(5e6))
    .with_cfg(DynMpiConfig::default())
    .with_script(LoadScript::dedicated().at_cycle(3, 10, 1))
}

fn fingerprint(r: &SimRunResult) -> (u64, u64, u64, Vec<u64>, Vec<String>) {
    (
        r.makespan.to_bits(),
        r.net_messages,
        r.net_bytes,
        r.per_rank
            .iter()
            .flat_map(|a| a.cycle_times.iter().map(|t| t.to_bits()))
            .collect(),
        r.events().iter().map(|e| format!("{e:?}")).collect(),
    )
}

/// Monitor off ⇒ bit-identical results; monitor on ⇒ the subscriber is
/// purely passive: the run's virtual outputs and the recorder's event
/// stream are unchanged by its presence (fast-path-equivalence style).
#[test]
fn monitor_presence_does_not_perturb_run() {
    let exp = loaded_experiment();
    let plain = run_sim_with(&exp, None);

    let rec_only = Recorder::new();
    let traced = run_sim_with(&exp, Some(rec_only.clone()));

    let rec_mon = Recorder::new();
    let monitor = Arc::new(HealthMonitor::new(20_000_000));
    rec_mon.subscribe(monitor.clone());
    let monitored = run_sim_with(&exp, Some(rec_mon.clone()));

    assert_eq!(fingerprint(&plain), fingerprint(&traced));
    assert_eq!(fingerprint(&plain), fingerprint(&monitored));
    // The recorder sees the identical event stream with and without the
    // streaming subscriber attached.
    assert_eq!(rec_only.events(), rec_mon.events());
    // And the monitor actually saw the run.
    let report = monitor.report();
    assert_eq!(report.nodes, 4);
    assert!(!report.windows.is_empty());
}

/// Feeding the recorder's (already deterministic) event stream to a fresh
/// monitor post-hoc reproduces the streaming report byte for byte — the
/// streaming fold is a pure function of the event set.
#[test]
fn streaming_equals_posthoc_replay() {
    let exp = loaded_experiment();
    let rec = Recorder::new();
    let streaming = Arc::new(HealthMonitor::new(20_000_000));
    rec.subscribe(streaming.clone());
    run_sim_with(&exp, Some(rec.clone()));

    let replay = HealthMonitor::new(20_000_000);
    for ev in rec.events() {
        use dynmpi_obs::trace::EventSink;
        replay.on_event(&ev);
    }
    assert_eq!(streaming.report(), replay.report());
    assert_eq!(streaming.report().to_jsonl(), replay.report().to_jsonl());
}

/// Acceptance criterion: the competing-process scenario produces a
/// `Straggler` alert on the loaded node *before* the balancer's
/// redistribution event on the same (virtual) timeline.
#[test]
fn straggler_alert_precedes_redistribution() {
    let exp = loaded_experiment();
    let rec = Recorder::new();
    let monitor = Arc::new(HealthMonitor::new(20_000_000));
    rec.subscribe(monitor.clone());
    run_sim_with(&exp, Some(rec));

    let report = monitor.report();
    let alerts = report.alerts();
    let first_straggler = alerts
        .iter()
        .find(|a| a.state == HealthState::Straggler && a.node == 3)
        .unwrap_or_else(|| panic!("no straggler alert on the loaded node; alerts: {alerts:?}"));
    let decisions = report.decisions();
    let redistributed = decisions
        .iter()
        .find(|d| d.kind == "redistributed")
        .unwrap_or_else(|| panic!("no redistribution decision; decisions: {decisions:?}"));
    assert!(
        first_straggler.ts_ns < redistributed.ts_ns,
        "straggler alert at {} ns did not precede redistribution at {} ns",
        first_straggler.ts_ns,
        redistributed.ts_ns
    );
    // The loaded node's dashboard row reflects the classification in the
    // windows between detection and redistribution.
    let widx = (first_straggler.ts_ns / report.window_ns - 1) as usize;
    assert_eq!(report.windows[widx].nodes[3].state, HealthState::Straggler);
}
