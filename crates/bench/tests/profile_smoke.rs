//! Smoke test behind the CI `profile-smoke` job: run the quick fig4
//! `jacobi/8` configuration end to end with `--trace-out`/`--profile-out`
//! and assert the emitted profile report is parseable, complete, and
//! internally consistent. Artifacts land in `target/profile-smoke/` so CI
//! can upload them when this fails.

use std::path::PathBuf;
use std::process::Command;

use dynmpi_obs::Json;

fn u64_field(obj: &Json, key: &str) -> u64 {
    obj.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing u64 `{key}` in {obj}"))
}

#[test]
fn fig4_quick_profile_is_complete() {
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/profile-smoke");
    std::fs::create_dir_all(&out_dir).unwrap();
    let trace_path = out_dir.join("trace.json");
    let profile_path = out_dir.join("profile.json");

    let output = Command::new(env!("CARGO_BIN_EXE_fig4_overall"))
        .arg("--quick")
        .arg("--only")
        .arg("jacobi/8")
        .arg("--out")
        .arg(&out_dir)
        .arg("--trace-out")
        .arg(&trace_path)
        .arg("--profile-out")
        .arg(&profile_path)
        .output()
        .expect("failed to launch fig4_overall");
    assert!(
        output.status.success(),
        "fig4_overall failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The trace the profile was computed from is on disk too.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(!trace.trim().is_empty(), "trace output is empty");

    let report = Json::parse(&std::fs::read_to_string(&profile_path).unwrap())
        .expect("profile report must be valid JSON");

    // Coverage bar from the acceptance criteria: >= 95 % of every rank's
    // makespan attributed (exact attribution gives 100).
    let coverage = report
        .get("min_coverage_pct")
        .and_then(Json::as_f64)
        .expect("missing min_coverage_pct");
    assert!(coverage >= 95.0, "coverage {coverage:.2}% below 95%");

    // Attribution sums exactly per rank, for all 8 ranks.
    let ranks = report.get("ranks").and_then(Json::as_arr).unwrap();
    assert_eq!(ranks.len(), 8, "expected 8 attributed ranks");
    for rank in ranks {
        let makespan = u64_field(rank, "makespan_ns");
        let buckets = rank.get("buckets").expect("rank without buckets");
        let total: u64 = [
            "compute_ns",
            "interference_ns",
            "late_wait_ns",
            "network_ns",
            "redist_ns",
            "runtime_ns",
            "other_ns",
        ]
        .iter()
        .map(|k| u64_field(buckets, k))
        .sum();
        assert_eq!(
            total,
            makespan,
            "rank {} buckets do not sum to its makespan",
            u64_field(rank, "rank")
        );
    }

    // A complete cross-rank critical path: non-empty, tiles the makespan.
    let path = report.get("critical_path").and_then(Json::as_arr).unwrap();
    assert!(!path.is_empty(), "critical path is empty");
    assert_eq!(
        u64_field(&report, "critical_path_ns"),
        u64_field(&report, "makespan_ns"),
        "critical path does not cover the makespan"
    );
    assert!(
        path.iter().any(|seg| {
            seg.get("kind").and_then(Json::as_str) == Some("transfer")
                && seg.get("src").and_then(Json::as_u64) != seg.get("dst").and_then(Json::as_u64)
        }),
        "no cross-rank transfer on the critical path"
    );

    // The adaptive run redistributed at least once and was audited.
    let cycles = report.get("cycles").and_then(Json::as_arr).unwrap();
    assert!(!cycles.is_empty(), "no redistribution audits");
    assert!(cycles.iter().all(|c| u64_field(c, "rows_moved") > 0));
}
