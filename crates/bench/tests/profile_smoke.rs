//! Smoke tests behind the CI `profile-smoke` job: run the quick fig4
//! `jacobi/8` configuration end to end with `--trace-out`/`--profile-out`
//! (and, separately, `--health-out`) and assert the emitted reports are
//! parseable, complete, and internally consistent; quick fig8 (node
//! arrival) and fig9 (node crash) arms do the same for the malleability
//! and fault paths. Artifacts land in `target/profile-smoke/` so CI can
//! upload them when this fails.

use std::path::PathBuf;
use std::process::Command;

use dynmpi_obs::Json;

fn u64_field(obj: &Json, key: &str) -> u64 {
    obj.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing u64 `{key}` in {obj}"))
}

#[test]
fn fig4_quick_profile_is_complete() {
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/profile-smoke");
    std::fs::create_dir_all(&out_dir).unwrap();
    let trace_path = out_dir.join("trace.json");
    let profile_path = out_dir.join("profile.json");

    let output = Command::new(env!("CARGO_BIN_EXE_fig4_overall"))
        .arg("--quick")
        .arg("--only")
        .arg("jacobi/8")
        .arg("--out")
        .arg(&out_dir)
        .arg("--trace-out")
        .arg(&trace_path)
        .arg("--profile-out")
        .arg(&profile_path)
        .output()
        .expect("failed to launch fig4_overall");
    assert!(
        output.status.success(),
        "fig4_overall failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The trace the profile was computed from is on disk too.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(!trace.trim().is_empty(), "trace output is empty");

    let report = Json::parse(&std::fs::read_to_string(&profile_path).unwrap())
        .expect("profile report must be valid JSON");

    // Coverage bar from the acceptance criteria: >= 95 % of every rank's
    // makespan attributed (exact attribution gives 100).
    let coverage = report
        .get("min_coverage_pct")
        .and_then(Json::as_f64)
        .expect("missing min_coverage_pct");
    assert!(coverage >= 95.0, "coverage {coverage:.2}% below 95%");

    // Attribution sums exactly per rank, for all 8 ranks.
    let ranks = report.get("ranks").and_then(Json::as_arr).unwrap();
    assert_eq!(ranks.len(), 8, "expected 8 attributed ranks");
    for rank in ranks {
        let makespan = u64_field(rank, "makespan_ns");
        let buckets = rank.get("buckets").expect("rank without buckets");
        let total: u64 = [
            "compute_ns",
            "interference_ns",
            "late_wait_ns",
            "network_ns",
            "redist_ns",
            "runtime_ns",
            "other_ns",
        ]
        .iter()
        .map(|k| u64_field(buckets, k))
        .sum();
        assert_eq!(
            total,
            makespan,
            "rank {} buckets do not sum to its makespan",
            u64_field(rank, "rank")
        );
    }

    // A complete cross-rank critical path: non-empty, tiles the makespan.
    let path = report.get("critical_path").and_then(Json::as_arr).unwrap();
    assert!(!path.is_empty(), "critical path is empty");
    assert_eq!(
        u64_field(&report, "critical_path_ns"),
        u64_field(&report, "makespan_ns"),
        "critical path does not cover the makespan"
    );
    assert!(
        path.iter().any(|seg| {
            seg.get("kind").and_then(Json::as_str) == Some("transfer")
                && seg.get("src").and_then(Json::as_u64) != seg.get("dst").and_then(Json::as_u64)
        }),
        "no cross-rank transfer on the critical path"
    );

    // The adaptive run redistributed at least once and was audited.
    let cycles = report.get("cycles").and_then(Json::as_arr).unwrap();
    assert!(!cycles.is_empty(), "no redistribution audits");
    assert!(cycles.iter().all(|c| u64_field(c, "rows_moved") > 0));
}

/// Runs quick fig4 `jacobi/8` fully instrumented (`--trace-out`,
/// `--profile-out`, `--health-out`, `--explain-out`) at the given shard
/// count, returning `(trace, profile, health, rows_jsonl, explain)`.
fn fig4_sharded_run(
    out_dir: &std::path::Path,
    shards: &str,
) -> (String, String, String, String, String) {
    let dir = out_dir.join(format!("shards-{shards}"));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let profile = dir.join("profile.json");
    let health = dir.join("health.jsonl");
    let explain = dir.join("explain.jsonl");
    let output = Command::new(env!("CARGO_BIN_EXE_fig4_overall"))
        .arg("--quick")
        .arg("--only")
        .arg("jacobi/8")
        .arg("--out")
        .arg(&dir)
        .arg("--shards")
        .arg(shards)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--profile-out")
        .arg(&profile)
        .arg("--health-out")
        .arg(&health)
        .arg("--explain-out")
        .arg(&explain)
        .output()
        .expect("failed to launch fig4_overall");
    assert!(
        output.status.success(),
        "fig4_overall (--shards {shards}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        std::fs::read_to_string(&trace).unwrap(),
        std::fs::read_to_string(&profile).unwrap(),
        std::fs::read_to_string(&health).unwrap(),
        std::fs::read_to_string(dir.join("fig4_overall.jsonl")).unwrap(),
        std::fs::read_to_string(&explain).unwrap(),
    )
}

/// The sharded arm of the smoke job: partitioning the simulation across
/// engine shards is a pure wall-clock knob, so every observable artifact
/// — the raw trace, the profile report, the health snapshot stream, the
/// explain report, and the result rows — must be byte-identical between
/// `--shards 1` and `--shards 2`. The explain report must also tell the
/// fig4 story end to end: straggler alert on the loaded node →
/// load-change → redistribution, one causal chain on one card, with a
/// counterfactual makespan and a realized-vs-predicted delta.
#[test]
fn fig4_quick_sharded_artifacts_byte_identical() {
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/profile-smoke");
    std::fs::create_dir_all(&out_dir).unwrap();

    let (trace_1, profile_1, health_1, rows_1, explain_1) = fig4_sharded_run(&out_dir, "1");
    let (trace_2, profile_2, health_2, rows_2, explain_2) = fig4_sharded_run(&out_dir, "2");
    assert!(!trace_1.trim().is_empty(), "sharded-arm trace is empty");
    assert_eq!(trace_1, trace_2, "trace differs between --shards 1 and 2");
    assert_eq!(
        profile_1, profile_2,
        "profile report differs between --shards 1 and 2"
    );
    assert_eq!(
        health_1, health_2,
        "health snapshots differ between --shards 1 and 2"
    );
    assert_eq!(
        rows_1, rows_2,
        "result rows differ between --shards 1 and 2"
    );
    assert_eq!(
        explain_1, explain_2,
        "explain report differs between --shards 1 and 2"
    );

    // Header: schema tag plus a non-empty critical-path blame table.
    let header = Json::parse(explain_1.lines().next().expect("explain is empty"))
        .expect("explain header must be JSON");
    assert_eq!(header.get("explain").and_then(Json::as_str), Some("v1"));
    assert!(
        !header
            .get("blame")
            .and_then(Json::as_arr)
            .expect("header without blame table")
            .is_empty(),
        "blame table is empty"
    );

    // The redistribution decision card carries the full causal chain.
    let card = explain_1
        .lines()
        .skip(1)
        .map(|l| Json::parse(l).expect("explain line must be JSON"))
        .find(|c| c.get("kind").and_then(Json::as_str) == Some("redistributed"))
        .expect("no redistributed decision card");
    let card_ts = u64_field(&card, "ts_ns");
    let chain = card.get("chain").and_then(Json::as_arr).unwrap();
    let link_ts = |pred: &dyn Fn(&Json) -> bool| -> u64 {
        chain
            .iter()
            .find(|l| pred(l))
            .map(|l| u64_field(l, "ts_ns"))
            .unwrap_or_else(|| panic!("missing chain link in {card}"))
    };
    let alert_ts = link_ts(&|l: &Json| {
        l.get("type").and_then(Json::as_str) == Some("alert")
            && l.get("rule").and_then(Json::as_str) == Some("straggler")
            && l.get("node").and_then(Json::as_u64) == Some(7)
    });
    let load_change_ts =
        link_ts(&|l: &Json| l.get("kind").and_then(Json::as_str) == Some("load-change"));
    assert!(
        alert_ts < card_ts && load_change_ts < card_ts,
        "chain links do not precede the decision: alert {alert_ts}, \
         load-change {load_change_ts}, decision {card_ts}"
    );
    assert!(
        card.get("counterfactual_ns")
            .and_then(Json::as_u64)
            .is_some(),
        "redistributed card without counterfactual: {card}"
    );
    let outcome = card.get("outcome").expect("card without outcome");
    assert!(
        outcome
            .get("delta_vs_predicted_ns")
            .and_then(Json::as_f64)
            .is_some(),
        "redistributed card without realized-vs-predicted delta: {card}"
    );
}

/// Runs quick fig8 (node arrival) with `--health-out`/`--explain-out`
/// under the given thread count and engine mode, returning
/// `(rows_jsonl, health_jsonl, explain_jsonl)`.
fn fig8_run(
    out_dir: &std::path::Path,
    tag: &str,
    threads: &str,
    stepped: bool,
) -> (String, String, String) {
    let dir = out_dir.join(format!("fig8-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let health = dir.join("health.jsonl");
    let explain = dir.join("explain.jsonl");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig8_node_arrival"));
    cmd.arg("--quick")
        .arg("--out")
        .arg(&dir)
        .arg("--threads")
        .arg(threads)
        .arg("--health-out")
        .arg(&health)
        .arg("--explain-out")
        .arg(&explain);
    if stepped {
        cmd.env("DYNMPI_SIM_STEPPED", "1");
    }
    let output = cmd.output().expect("failed to launch fig8_node_arrival");
    assert!(
        output.status.success(),
        "fig8_node_arrival ({tag}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        std::fs::read_to_string(dir.join("fig8_node_arrival.jsonl")).unwrap(),
        std::fs::read_to_string(&health).unwrap(),
        std::fs::read_to_string(&explain).unwrap(),
    )
}

/// The fig8 arm of the smoke job: every scenario's arrival must be
/// absorbed (admitted, with rows transferred to the newcomer), and the
/// result rows, health snapshot stream, and explain report must be
/// byte-identical across `--threads 1` vs `8` and across fast vs.
/// stepped engine modes. The explain report must card the instrumented
/// run's expansion decision as an admit with both branch predictions.
#[test]
fn fig8_quick_arrival_absorbed_deterministically() {
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/profile-smoke");
    std::fs::create_dir_all(&out_dir).unwrap();

    let (rows_t1, health_t1, explain_t1) = fig8_run(&out_dir, "t1", "1", false);
    let (rows_t8, health_t8, explain_t8) = fig8_run(&out_dir, "t8", "8", false);
    let (rows_st, health_st, explain_st) = fig8_run(&out_dir, "stepped", "4", true);
    assert_eq!(
        rows_t1, rows_t8,
        "fig8 rows differ between --threads 1 and 8"
    );
    assert_eq!(rows_t1, rows_st, "fig8 rows differ between engine modes");
    assert_eq!(
        health_t1, health_t8,
        "fig8 health snapshots differ between --threads 1 and 8"
    );
    assert_eq!(
        health_t1, health_st,
        "fig8 health snapshots differ between engine modes"
    );
    assert_eq!(
        explain_t1, explain_t8,
        "fig8 explain report differs between --threads 1 and 8"
    );
    assert_eq!(
        explain_t1, explain_st,
        "fig8 explain report differs between engine modes"
    );

    let admit = explain_t1
        .lines()
        .skip(1)
        .map(|l| Json::parse(l).expect("explain line must be JSON"))
        .find(|c| c.get("kind").and_then(Json::as_str) == Some("expand-evaluated"))
        .expect("no expand-evaluated decision card");
    assert_eq!(
        admit.get("taken").and_then(Json::as_str),
        Some("admit"),
        "expansion was not taken as admit: {admit}"
    );
    assert!(
        admit.get("predicted_ns").and_then(Json::as_u64).is_some()
            && admit
                .get("counterfactual_ns")
                .and_then(Json::as_u64)
                .is_some(),
        "expand card lacks branch predictions: {admit}"
    );

    let mut scenarios = Vec::new();
    for (lineno, line) in rows_t1.lines().enumerate() {
        let row = Json::parse(line)
            .unwrap_or_else(|e| panic!("fig8 row {} is not JSON: {e}", lineno + 1));
        assert_eq!(
            row.get("admitted").and_then(Json::as_bool),
            Some(true),
            "arrival not admitted: {row}"
        );
        assert!(
            u64_field(&row, "new_rows") > 0,
            "admitted node received no rows: {row}"
        );
        assert!(
            u64_field(&row, "admitted_cycle") >= u64_field(&row, "arrived_cycle"),
            "admission precedes evaluation: {row}"
        );
        scenarios.push(format!(
            "{}/{}",
            row.get("scenario").and_then(Json::as_str).unwrap(),
            u64_field(&row, "nodes")
        ));
    }
    assert_eq!(
        scenarios,
        ["grow/2", "grow/4", "grow/8", "readd/4"],
        "unexpected fig8 scenario sweep"
    );
}

/// Runs quick fig9 (node crash) fully observed (`--trace-out`,
/// `--health-out`, `--explain-out`) under the given thread count, shard
/// count, and engine mode, returning
/// `(rows_jsonl, health_jsonl, trace_json, explain_jsonl)`.
fn fig9_run(
    out_dir: &std::path::Path,
    tag: &str,
    threads: &str,
    shards: &str,
    stepped: bool,
) -> (String, String, String, String) {
    let dir = out_dir.join(format!("fig9-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let health = dir.join("health.jsonl");
    let trace = dir.join("trace.json");
    let explain = dir.join("explain.jsonl");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig9_node_crash"));
    cmd.arg("--quick")
        .arg("--out")
        .arg(&dir)
        .arg("--threads")
        .arg(threads)
        .arg("--shards")
        .arg(shards)
        .arg("--health-out")
        .arg(&health)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--explain-out")
        .arg(&explain);
    if stepped {
        cmd.env("DYNMPI_SIM_STEPPED", "1");
    }
    let output = cmd.output().expect("failed to launch fig9_node_crash");
    assert!(
        output.status.success(),
        "fig9_node_crash ({tag}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        std::fs::read_to_string(dir.join("fig9_node_crash.jsonl")).unwrap(),
        std::fs::read_to_string(&health).unwrap(),
        std::fs::read_to_string(&trace).unwrap(),
        std::fs::read_to_string(&explain).unwrap(),
    )
}

/// The fig9 arm of the smoke job: after an injected mid-run crash the
/// survivors must confirm the death, restore from the buddy checkpoint,
/// and finish with the crash-free checksum — and the rows, health
/// snapshots, raw trace, and explain report must be byte-identical
/// across `--threads 1` vs `8`, `--shards 1` vs `2`, and fast vs.
/// stepped engine modes. Each confirmed death must produce a flight
/// record with detection latency, replay cost, and the intact checksum.
#[test]
fn fig9_quick_crash_recovers_deterministically() {
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/profile-smoke");
    std::fs::create_dir_all(&out_dir).unwrap();

    let (rows_t1, health_t1, trace_t1, explain_t1) = fig9_run(&out_dir, "t1", "1", "1", false);
    let (rows_t8, health_t8, trace_t8, explain_t8) = fig9_run(&out_dir, "t8", "8", "1", false);
    let (rows_s2, health_s2, trace_s2, explain_s2) = fig9_run(&out_dir, "s2", "4", "2", false);
    let (rows_st, health_st, trace_st, explain_st) = fig9_run(&out_dir, "stepped", "4", "1", true);
    for (name, rows, health, trace, explain) in [
        ("--threads 8", &rows_t8, &health_t8, &trace_t8, &explain_t8),
        ("--shards 2", &rows_s2, &health_s2, &trace_s2, &explain_s2),
        (
            "stepped engine",
            &rows_st,
            &health_st,
            &trace_st,
            &explain_st,
        ),
    ] {
        assert_eq!(&rows_t1, rows, "fig9 rows differ under {name}");
        assert_eq!(
            &health_t1, health,
            "fig9 health snapshots differ under {name}"
        );
        assert_eq!(&trace_t1, trace, "fig9 trace differs under {name}");
        assert_eq!(
            &explain_t1, explain,
            "fig9 explain report differs under {name}"
        );
    }

    assert!(!trace_t1.trim().is_empty(), "fig9 trace is empty");

    // Every confirmed death in the instrumented run has a flight record:
    // detection latency, replay cost, buddy restore, intact checksum.
    let flights: Vec<Json> = explain_t1
        .lines()
        .skip(1)
        .map(|l| Json::parse(l).expect("explain line must be JSON"))
        .filter(|c| c.get("card").and_then(Json::as_str) == Some("flight-record"))
        .collect();
    assert!(
        !flights.is_empty(),
        "no crash flight record in the explain report"
    );
    for f in &flights {
        assert!(
            u64_field(f, "detection_ns") > 0,
            "flight record without detection latency: {f}"
        );
        assert!(
            u64_field(f, "replay_cycles") > 0 && u64_field(f, "restored_rows") > 0,
            "flight record without replay cost: {f}"
        );
        assert_eq!(
            f.get("checksum_intact").and_then(Json::as_bool),
            Some(true),
            "flight record does not report the checksum intact: {f}"
        );
    }
    let mut fracs = Vec::new();
    for (lineno, line) in rows_t1.lines().enumerate() {
        let row = Json::parse(line)
            .unwrap_or_else(|e| panic!("fig9 row {} is not JSON: {e}", lineno + 1));
        assert_eq!(
            row.get("checksum_ok").and_then(Json::as_bool),
            Some(true),
            "recovered run diverged from the crash-free checksum: {row}"
        );
        assert!(
            u64_field(&row, "confirmed_cycle") > 0,
            "crash never confirmed: {row}"
        );
        assert!(
            u64_field(&row, "detect_cycles") > 0 && u64_field(&row, "restored_rows") > 0,
            "no detection latency or no restored rows: {row}"
        );
        fracs.push(row.get("crash_frac").and_then(Json::as_f64).unwrap());
    }
    assert_eq!(fracs, [0.3, 0.6], "unexpected fig9 crash sweep");
}

/// Runs quick fig4 `jacobi/8` with `--health-out`/`--explain-out` under
/// the given thread count and engine mode, returning
/// `(health_jsonl, explain_jsonl)`.
fn health_run(
    out_dir: &std::path::Path,
    tag: &str,
    threads: &str,
    stepped: bool,
) -> (String, String) {
    let path = out_dir.join(format!("health-{tag}.jsonl"));
    let explain = out_dir.join(format!("explain-{tag}.jsonl"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig4_overall"));
    cmd.arg("--quick")
        .arg("--only")
        .arg("jacobi/8")
        .arg("--out")
        .arg(out_dir)
        .arg("--threads")
        .arg(threads)
        .arg("--health-out")
        .arg(&path)
        .arg("--explain-out")
        .arg(&explain);
    if stepped {
        cmd.env("DYNMPI_SIM_STEPPED", "1");
    }
    let output = cmd.output().expect("failed to launch fig4_overall");
    assert!(
        output.status.success(),
        "fig4_overall ({tag}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        std::fs::read_to_string(&path).unwrap(),
        std::fs::read_to_string(&explain).unwrap(),
    )
}

/// The `--health-out` arm of the smoke job: the competing-process
/// scenario must classify the loaded node (node 7 of jacobi/8) as a
/// `Straggler` before the runtime's redistribution on the same timeline,
/// and both the snapshot stream and the explain report must be
/// byte-identical across `--threads 1` vs `8` and across fast vs.
/// stepped engine modes.
#[test]
fn fig4_quick_health_flags_straggler_deterministically() {
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/profile-smoke");
    std::fs::create_dir_all(&out_dir).unwrap();

    let (t1, explain_t1) = health_run(&out_dir, "t1", "1", false);
    let (t8, explain_t8) = health_run(&out_dir, "t8", "8", false);
    let (stepped, explain_st) = health_run(&out_dir, "stepped", "4", true);
    assert_eq!(t1, t8, "health snapshots differ between --threads 1 and 8");
    assert_eq!(t1, stepped, "health snapshots differ between engine modes");
    assert_eq!(
        explain_t1, explain_t8,
        "explain report differs between --threads 1 and 8"
    );
    assert_eq!(
        explain_t1, explain_st,
        "explain report differs between engine modes"
    );

    let mut straggler_ts: Option<u64> = None;
    let mut redist_ts: Option<u64> = None;
    for (lineno, line) in t1.lines().enumerate() {
        let w = Json::parse(line)
            .unwrap_or_else(|e| panic!("health line {} is not JSON: {e}", lineno + 1));
        for a in w.get("alerts").and_then(Json::as_arr).unwrap() {
            if a.get("state").and_then(Json::as_str) == Some("straggler")
                && a.get("node").and_then(Json::as_u64) == Some(7)
            {
                let ts = u64_field(a, "ts_ns");
                straggler_ts = Some(straggler_ts.map_or(ts, |t| t.min(ts)));
            }
        }
        for d in w.get("decisions").and_then(Json::as_arr).unwrap() {
            if d.get("kind").and_then(Json::as_str) == Some("redistributed") {
                let ts = u64_field(d, "ts_ns");
                redist_ts = Some(redist_ts.map_or(ts, |t| t.min(ts)));
            }
        }
    }
    let straggler_ts = straggler_ts.expect("no Straggler alert on the loaded node (7)");
    let redist_ts = redist_ts.expect("no redistribution decision on the health timeline");
    assert!(
        straggler_ts < redist_ts,
        "straggler alert ({straggler_ts} ns) did not precede redistribution ({redist_ts} ns)"
    );
}
