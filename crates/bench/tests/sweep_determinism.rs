//! Pins the contract the figure harnesses rely on: running the same
//! configuration sweep through `dynmpi_testkit::sweep` at any thread
//! count yields byte-identical JSONL rows. Uses a scaled-down version of
//! fig4's per-item body (three sims per item, rows serialized through
//! the same `Json` path the binaries use).

use dynmpi::DynMpiConfig;
use dynmpi_apps::harness::{run_sim, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_apps::sor::SorParams;
use dynmpi_obs::Json;
use dynmpi_sim::{LoadScript, NodeSpec};

fn row_json(app: &str, nodes: usize, spec: AppSpec) -> Json {
    let node = NodeSpec::with_speed(5e6);
    let script = LoadScript::dedicated().at_cycle(nodes - 1, 10, 1);
    let ded = run_sim(
        &Experiment::new(spec.clone(), nodes)
            .with_node_spec(node)
            .with_cfg(DynMpiConfig::no_adapt()),
    );
    let noad = run_sim(
        &Experiment::new(spec.clone(), nodes)
            .with_node_spec(node)
            .with_cfg(DynMpiConfig::no_adapt())
            .with_script(script.clone()),
    );
    let dyn_ = run_sim(
        &Experiment::new(spec, nodes)
            .with_node_spec(node)
            .with_cfg(DynMpiConfig::default())
            .with_script(script),
    );
    Json::obj([
        ("app", Json::str(app)),
        ("nodes", Json::UInt(nodes as u64)),
        ("dedicated_s", Json::Num(ded.makespan)),
        ("no_adapt_s", Json::Num(noad.makespan)),
        ("dynmpi_s", Json::Num(dyn_.makespan)),
        ("no_adapt_norm", Json::Num(noad.makespan / ded.makespan)),
        ("dynmpi_norm", Json::Num(dyn_.makespan / ded.makespan)),
    ])
}

fn sweep_jsonl(threads: usize) -> String {
    let items: Vec<(&'static str, usize)> = ["jacobi", "sor"]
        .into_iter()
        .flat_map(|app| [2usize, 4].map(|nodes| (app, nodes)))
        .collect();
    let rows = dynmpi_testkit::sweep(&items, threads, |_i, item| {
        let (app, nodes) = *item;
        let spec = match app {
            "jacobi" => AppSpec::Jacobi(JacobiParams {
                n: 192,
                iters: 40,
                exercise_kernel: false,
                rebalance_at: None,
            }),
            _ => AppSpec::Sor(SorParams {
                n: 192,
                iters: 40,
                omega: 1.5,
                exercise_kernel: false,
            }),
        };
        row_json(app, nodes, spec).to_string()
    });
    let mut out = String::new();
    for r in rows {
        out.push_str(&r);
        out.push('\n');
    }
    out
}

#[test]
fn fig_sweep_rows_are_byte_identical_across_thread_counts() {
    let serial = sweep_jsonl(1);
    let par = sweep_jsonl(8);
    assert_eq!(serial, par, "JSONL rows differ between --threads 1 and 8");
    // Sanity: the sweep actually produced one row per configuration.
    assert_eq!(serial.lines().count(), 4);
}
