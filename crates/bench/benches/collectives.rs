//! Collective-operation throughput on the real thread transport.

use dynmpi_comm::{run_threads, CommOps, Group, Transport};
use dynmpi_testkit::bench;

fn main() {
    println!("== collectives ==");
    for ranks in [4usize, 8] {
        bench(&format!("allreduce_1k/{ranks}"), || {
            run_threads(ranks, |t| {
                let g = Group::world(t.rank(), t.size());
                let data = vec![t.rank() as f64; 1024];
                for _ in 0..16 {
                    let _ = t.allreduce_sum_f64(&g, &data);
                }
            })
        });
        bench(&format!("allgatherv_4k/{ranks}"), || {
            run_threads(ranks, |t| {
                let g = Group::world(t.rank(), t.size());
                let data = vec![t.rank() as f64; 4096];
                for _ in 0..8 {
                    let _ = t.allgatherv(&g, &data);
                }
            })
        });
    }
}
