//! Collective-operation throughput on the real thread transport.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmpi_comm::{run_threads, CommOps, Group, Transport};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for ranks in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("allreduce_1k", ranks), &ranks, |b, &n| {
            b.iter(|| {
                run_threads(n, |t| {
                    let g = Group::world(t.rank(), t.size());
                    let data = vec![t.rank() as f64; 1024];
                    for _ in 0..16 {
                        let _ = t.allreduce_sum_f64(&g, &data);
                    }
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("allgatherv_4k", ranks), &ranks, |b, &n| {
            b.iter(|| {
                run_threads(n, |t| {
                    let g = Group::world(t.rank(), t.size());
                    let data = vec![t.rank() as f64; 4096];
                    for _ in 0..8 {
                        let _ = t.allgatherv(&g, &data);
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
