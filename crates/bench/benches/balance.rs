//! Distribution-algorithm throughput: the balancer runs on every
//! grace-period exit, so it must be cheap even for large row spaces.

use dynmpi::{relative_power, successive_balance, CommModel, NodeLoad};
use dynmpi_testkit::bench;

fn main() {
    println!("== balancers ==");
    for nrows in [2_048usize, 16_384, 131_072] {
        let weights: Vec<f64> = (0..nrows).map(|i| 1.0 + (i % 13) as f64 * 0.1).collect();
        let loads: Vec<NodeLoad> = (0..32)
            .map(|i| NodeLoad {
                ncp: if i == 7 { 2 } else { 0 },
                speed: 1.0,
            })
            .collect();
        let comm = CommModel {
            blocking_recvs_per_cycle: 4.0,
            quantum: 0.010,
            wait_factor: 0.05,
        };
        bench(&format!("relative_power/{nrows}"), || {
            relative_power(&weights, &loads, 0)
        });
        bench(&format!("successive_balance/{nrows}"), || {
            successive_balance(&weights, &loads, &comm, 0)
        });
    }
}
