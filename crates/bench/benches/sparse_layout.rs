//! The cost of §4.1.2's uniformity: traversing a linked-list sparse row
//! vs scanning packed vectors (the paper notes users can convert to their
//! own format between redistributions).

use dynmpi::SparseRow;
use dynmpi_testkit::bench;

fn main() {
    println!("== sparse_row ==");
    for nnz in [128usize, 1024, 8192] {
        let mut row = SparseRow::<f64>::new();
        for k in (0..nnz as u32).rev() {
            row.set(k * 3, f64::from(k));
        }
        let (cols, vals) = row.to_vectors();
        let x: Vec<f64> = (0..nnz * 3).map(|i| i as f64 * 0.5).collect();
        bench(&format!("list_dot/{nnz}"), || {
            let mut acc = 0.0;
            for (cidx, v) in row.iter() {
                acc += v * x[cidx as usize];
            }
            acc
        });
        bench(&format!("vector_dot/{nnz}"), || {
            let mut acc = 0.0;
            for (cidx, v) in cols.iter().zip(&vals) {
                acc += v * x[*cidx as usize];
            }
            acc
        });
        bench(&format!("pack_unpack/{nnz}"), || {
            let (c2, v2) = row.to_vectors();
            SparseRow::from_vectors(&c2, &v2).nnz()
        });
    }
}
