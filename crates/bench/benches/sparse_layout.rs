//! The cost of §4.1.2's uniformity: traversing a linked-list sparse row
//! vs scanning packed vectors (the paper notes users can convert to their
//! own format between redistributions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmpi::SparseRow;

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_row");
    for nnz in [128usize, 1024, 8192] {
        let mut row = SparseRow::<f64>::new();
        for k in (0..nnz as u32).rev() {
            row.set(k * 3, f64::from(k));
        }
        let (cols, vals) = row.to_vectors();
        let x: Vec<f64> = (0..nnz * 3).map(|i| i as f64 * 0.5).collect();
        g.bench_with_input(BenchmarkId::new("list_dot", nnz), &nnz, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for (cidx, v) in row.iter() {
                    acc += v * x[cidx as usize];
                }
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("vector_dot", nnz), &nnz, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for (cidx, v) in cols.iter().zip(&vals) {
                    acc += v * x[*cidx as usize];
                }
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("pack_unpack", nnz), &nnz, |b, _| {
            b.iter(|| {
                let (c2, v2) = row.to_vectors();
                SparseRow::from_vectors(&c2, &v2).nnz()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sparse);
criterion_main!(benches);
