//! Micro-bench behind Figure 3: memory work of the two allocation
//! schemes when the held row range shifts.

use dynmpi::{ContiguousMatrix, DenseMatrix, RedistArray, RowSet};
use dynmpi_testkit::bench;

fn main() {
    let n = 1024;
    let row_len = 1024;
    println!("== fig3_alloc ==");
    for moved in [8usize, 64, 256] {
        bench(&format!("projected/{moved}"), || {
            let mut m = DenseMatrix::<f64>::new(n, row_len);
            m.fill_rows(&RowSet::from_range(0..n / 2), |i, j| (i + j) as f64);
            m.drop_rows(&RowSet::from_range(0..moved));
            m.alloc_rows(&RowSet::from_range(n / 2..n / 2 + moved));
            m
        });
        bench(&format!("contiguous/{moved}"), || {
            let mut m = ContiguousMatrix::<f64>::new(n, row_len, 0, n / 2);
            m.reshape(moved, n / 2 + moved);
            m
        });
    }
}
