//! Criterion bench behind Figure 3: memory work of the two allocation
//! schemes when the held row range shifts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmpi::{ContiguousMatrix, DenseMatrix, RedistArray, RowSet};

fn bench_alloc(c: &mut Criterion) {
    let n = 1024;
    let row_len = 1024;
    let mut g = c.benchmark_group("fig3_alloc");
    for moved in [8usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("projected", moved), &moved, |b, &moved| {
            b.iter_batched(
                || {
                    let mut m = DenseMatrix::<f64>::new(n, row_len);
                    m.fill_rows(&RowSet::from_range(0..n / 2), |i, j| (i + j) as f64);
                    m
                },
                |mut m| {
                    m.drop_rows(&RowSet::from_range(0..moved));
                    m.alloc_rows(&RowSet::from_range(n / 2..n / 2 + moved));
                    m
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(
            BenchmarkId::new("contiguous", moved),
            &moved,
            |b, &moved| {
                b.iter_batched(
                    || ContiguousMatrix::<f64>::new(n, row_len, 0, n / 2),
                    |mut m| {
                        m.reshape(moved, n / 2 + moved);
                        m
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
