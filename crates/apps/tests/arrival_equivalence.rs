//! Engine-mode equivalence for the malleability paths: a Jacobi run with
//! a scripted node arrival (and one with a drop → clear → rejoin) must
//! produce bit-identical per-rank results under the stepped and
//! fast-forward simulator engines, and adaptation must never change the
//! numerical answer.

use dynmpi::{DropPolicy, DynMpiConfig};
use dynmpi_apps::harness::run_sim;
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_apps::{AppSpec, Experiment, SimRunResult};
use dynmpi_sim::{LoadScript, NodeSpec, SimDur, SimTime};

/// Runs the experiment under both engines — and sharded across 2 and 8
/// engine shards — and asserts every output is bit-identical. Returns the
/// fast-mode single-shard result.
fn assert_engine_equivalent(exp: &Experiment) -> SimRunResult {
    let stepped = run_sim(&exp.clone().with_stepped(true));
    let fast = run_sim(&exp.clone().with_stepped(false));
    assert_eq!(
        stepped.per_rank, fast.per_rank,
        "per-rank results diverged between engines"
    );
    assert!(
        stepped.makespan == fast.makespan,
        "makespan diverged: {} vs {}",
        stepped.makespan,
        fast.makespan
    );
    assert_eq!(stepped.net_messages, fast.net_messages);
    assert_eq!(stepped.net_bytes, fast.net_bytes);
    // `--shards` must be invisible in every output, in both engine modes,
    // including mid-run world changes (arrival / drop / rejoin).
    for shards in [2usize, 8] {
        for (mode, reference) in [(true, &stepped), (false, &fast)] {
            let sharded = run_sim(&exp.clone().with_stepped(mode).with_shards(shards));
            assert_eq!(
                reference.per_rank, sharded.per_rank,
                "per-rank results diverged at shards={shards} stepped={mode}"
            );
            assert!(
                reference.makespan == sharded.makespan,
                "makespan diverged at shards={shards} stepped={mode}: {} vs {}",
                reference.makespan,
                sharded.makespan
            );
            assert_eq!(reference.net_messages, sharded.net_messages);
            assert_eq!(reference.net_bytes, sharded.net_bytes);
        }
    }
    fast
}

#[test]
fn jacobi_node_arrival_is_engine_invariant_and_absorbed() {
    let p = JacobiParams::small(48, 60);
    let script = LoadScript::dedicated().node_arrival(
        SimTime::from_millis(60),
        NodeSpec::with_speed(1e6),
        SimDur::from_millis(20),
    );
    let cfg = DynMpiConfig {
        arrival_retry_cycles: 4,
        ..Default::default()
    };
    let exp = Experiment::new(AppSpec::Jacobi(p.clone()), 2)
        .with_node_spec(NodeSpec::with_speed(1e6))
        .with_script(script)
        .with_cfg(cfg);
    let out = assert_engine_equivalent(&exp);

    assert_eq!(out.per_rank.len(), 3, "arrival allocates a third rank");
    assert!(
        out.events().iter().any(|e| e.kind() == "node-admitted"),
        "newcomer must be admitted: {:?}",
        out.events()
    );
    assert!(
        out.per_rank[2].participating && out.per_rank[2].final_rows > 0,
        "admitted rank owns rows at the end: {:?}",
        out.per_rank[2].final_rows
    );

    // Growing the job never changes the answer.
    let baseline =
        run_sim(&Experiment::new(AppSpec::Jacobi(p), 2).with_node_spec(NodeSpec::with_speed(1e6)));
    assert_eq!(out.checksum(), baseline.checksum());
}

#[test]
fn jacobi_node_removal_is_engine_and_shard_invariant() {
    // Pure shrink: one seed node gets permanent competing load and is
    // dropped for good (no rejoin). The removal collective — including the
    // dropped rank's early exit — must be invisible to the engine mode and
    // the shard count.
    let p = JacobiParams::small(48, 60);
    let script = LoadScript::dedicated().at_cycle(3, 8, 2);
    let cfg = DynMpiConfig {
        drop_policy: DropPolicy::Always,
        ..Default::default()
    };
    let exp = Experiment::new(AppSpec::Jacobi(p.clone()), 4)
        .with_node_spec(NodeSpec::with_speed(1e6))
        .with_script(script)
        .with_cfg(cfg);
    let out = assert_engine_equivalent(&exp);

    let kinds: Vec<&str> = out.events().iter().map(|e| e.kind()).collect();
    assert!(kinds.contains(&"nodes-dropped"), "{kinds:?}");
    assert!(
        !out.per_rank[3].participating,
        "loaded node stays dropped without rejoin"
    );
    assert!(
        out.per_rank[..3].iter().all(|r| r.participating),
        "survivors finish the computation"
    );

    let baseline =
        run_sim(&Experiment::new(AppSpec::Jacobi(p), 4).with_node_spec(NodeSpec::with_speed(1e6)));
    assert_eq!(out.checksum(), baseline.checksum());
}

#[test]
fn jacobi_drop_then_rejoin_is_engine_invariant() {
    // Recovery scenario: a seed node gets loaded, is dropped, clears, and
    // is re-admitted through the rejoin path — all engine-invariant. The
    // monitor daemon samples once per virtual second, so the script's
    // load/clear events are observed with up to 1 s lag; 100 cycles give
    // the full drop → clear → rejoin arc room to complete.
    let p = JacobiParams::small(48, 100);
    let script = LoadScript::dedicated().at_cycle(2, 8, 2).at_cycle(2, 30, 0);
    let cfg = DynMpiConfig {
        drop_policy: DropPolicy::Always,
        allow_rejoin: true,
        rejoin_after_cycles: 3,
        grace_period: 2,
        post_redist_period: 2,
        ..Default::default()
    };
    let exp = Experiment::new(AppSpec::Jacobi(p.clone()), 3)
        .with_node_spec(NodeSpec::with_speed(1e6))
        .with_script(script)
        .with_cfg(cfg);
    let out = assert_engine_equivalent(&exp);

    let kinds: Vec<&str> = out.events().iter().map(|e| e.kind()).collect();
    assert!(kinds.contains(&"nodes-dropped"), "{kinds:?}");
    assert!(kinds.contains(&"node-rejoined"), "{kinds:?}");
    assert!(
        out.per_rank.iter().all(|r| r.participating),
        "everyone is back at the end"
    );

    let baseline =
        run_sim(&Experiment::new(AppSpec::Jacobi(p), 3).with_node_spec(NodeSpec::with_speed(1e6)));
    assert_eq!(out.checksum(), baseline.checksum());
}
