//! End-to-end fail-stop tests on the virtual cluster: a scripted node
//! crash is detected by the replicated timeout detector, the survivors
//! restore the dead node's rows from its buddy checkpoint, roll the
//! application back, and finish with the checksum of a crash-free run.
//! The comparison is to a ~1-ulp relative tolerance: the survivors'
//! final sum-reduction is grouped over a different partition than the
//! baseline's, which legitimately rounds differently. Within one
//! partition, crash handling must be *bit*-invisible to the engine mode
//! and the shard count, like every other output.

use dynmpi::{DropPolicy, DynMpiConfig};
use dynmpi_apps::harness::run_sim;
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_apps::{AppSpec, Experiment, SimRunResult};
use dynmpi_sim::{LoadScript, NodeSpec, SimTime};

/// Failure-path configuration for the small test scenarios: quick
/// confirmation, periodic refreshes so the rollback stays shallow.
fn crash_cfg() -> DynMpiConfig {
    DynMpiConfig {
        failure_detection: true,
        peer_timeout_seconds: 0.05,
        failure_confirm_cycles: 2,
        checkpoint_interval_cycles: 5,
        drop_policy: DropPolicy::Never,
        ..Default::default()
    }
}

fn jacobi_exp(p: &JacobiParams, nodes: usize, script: LoadScript) -> Experiment {
    Experiment::new(AppSpec::Jacobi(p.clone()), nodes)
        .with_node_spec(NodeSpec::with_speed(1e6))
        .with_script(script)
        .with_cfg(crash_cfg())
}

/// Checksums agree up to reduction-regrouping rounding (different
/// partitions sum the same per-row values in a different association).
fn checksums_close(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => (x - y).abs() <= 1e-12 * y.abs().max(1.0),
        _ => false,
    }
}

/// Asserts the crashed run ended correctly relative to its crash-free
/// baseline: the dead rank yields no result, every survivor participates,
/// a full suspect → confirm → recover arc was recorded, and the restored
/// computation produced the identical checksum.
fn assert_recovered(out: &SimRunResult, baseline: &SimRunResult, dead: usize, ctx: &str) {
    assert!(
        out.per_rank[dead].checksum.is_none() && !out.per_rank[dead].participating,
        "{ctx}: crashed rank must yield no result"
    );
    for (r, res) in out.per_rank.iter().enumerate() {
        if r != dead {
            assert!(res.participating, "{ctx}: survivor {r} must finish");
        }
    }
    let kinds: Vec<&str> = out.events().iter().map(|e| e.kind()).collect();
    for k in ["node-suspected", "node-confirmed-dead", "node-recovered"] {
        assert!(kinds.contains(&k), "{ctx}: missing {k} in {kinds:?}");
    }
    assert!(
        checksums_close(out.checksum(), baseline.checksum()),
        "{ctx}: recovery changed the answer: {:?} vs {:?}",
        out.checksum(),
        baseline.checksum()
    );
}

#[test]
fn jacobi_crash_recovery_matches_crash_free_checksum() {
    let p = JacobiParams::small(48, 60);
    let baseline = run_sim(&jacobi_exp(&p, 4, LoadScript::dedicated()));
    // Kill node 2 around 40% through the crash-free makespan: well past
    // the baseline checkpoint, well before the end.
    let t_crash = SimTime::from_secs_f64(baseline.makespan * 0.4);
    let script = LoadScript::dedicated().node_crash(t_crash, 2);
    let out = run_sim(&jacobi_exp(&p, 4, script));
    assert_recovered(&out, &baseline, 2, "crash@40%");
    assert!(
        out.makespan > baseline.makespan,
        "recovery (rollback + replay) costs time"
    );
}

#[test]
fn jacobi_crash_is_engine_and_shard_invariant() {
    let p = JacobiParams::small(48, 50);
    let baseline = run_sim(&jacobi_exp(&p, 4, LoadScript::dedicated()));
    let t_crash = SimTime::from_secs_f64(baseline.makespan * 0.5);
    let exp = jacobi_exp(&p, 4, LoadScript::dedicated().node_crash(t_crash, 1));

    let fast = run_sim(&exp.clone().with_stepped(false));
    assert_recovered(&fast, &baseline, 1, "fast");
    for (stepped, shards) in [(true, 1), (false, 2), (true, 2)] {
        let other = run_sim(&exp.clone().with_stepped(stepped).with_shards(shards));
        assert_eq!(
            fast.per_rank, other.per_rank,
            "per-rank results diverged at stepped={stepped} shards={shards}"
        );
        assert!(
            fast.makespan == other.makespan,
            "makespan diverged at stepped={stepped} shards={shards}"
        );
    }
}

/// Property sweep: random crash times × nodes (deterministic LCG). For
/// every sample the survivors terminate and reproduce the crash-free
/// checksum bit-for-bit.
#[test]
fn jacobi_random_crash_times_always_recover_exactly() {
    let p = JacobiParams::small(40, 44);
    let baseline = run_sim(&jacobi_exp(&p, 4, LoadScript::dedicated()));
    let mut state = 0x243F_6A88_85A3_08D3u64; // LCG seed (π digits)
    let mut rand = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for sample in 0..5 {
        // Crash fraction in (0.15, 0.85); never the root (out of scope).
        let frac = 0.15 + 0.7 * rand();
        let dead = 1 + (rand() * 3.0) as usize % 3;
        let t_crash = SimTime::from_secs_f64(baseline.makespan * frac);
        let out = run_sim(&jacobi_exp(
            &p,
            4,
            LoadScript::dedicated().node_crash(t_crash, dead),
        ));
        assert_recovered(
            &out,
            &baseline,
            dead,
            &format!("sample {sample}: node {dead} at {:.0}%", frac * 100.0),
        );
    }
}

/// The detector's sustain rule under pure overload: competing load slows
/// a node (its control samples may time out), but its monitor keeps
/// answering — it must never be confirmed dead, and the answer must not
/// change.
#[test]
fn jacobi_overload_is_never_confirmed_dead() {
    let p = JacobiParams::small(48, 60);
    let baseline = run_sim(&jacobi_exp(&p, 4, LoadScript::dedicated()));
    // Node 2 picks up 3 competing processes a few cycles in — a 4×
    // compute stretch, far beyond the control-plane timeout.
    let script = LoadScript::dedicated().at_cycle(2, 8, 3);
    let out = run_sim(&jacobi_exp(&p, 4, script));
    let kinds: Vec<&str> = out.events().iter().map(|e| e.kind()).collect();
    assert!(
        !kinds.contains(&"node-confirmed-dead") && !kinds.contains(&"node-recovered"),
        "overload escalated to death: {kinds:?}"
    );
    assert!(out.per_rank.iter().all(|r| r.participating));
    assert!(
        checksums_close(out.checksum(), baseline.checksum()),
        "{:?} vs {:?}",
        out.checksum(),
        baseline.checksum()
    );
}

/// A partition is the same silence as a crash from the survivors' side;
/// the cut-off rank withdraws on its own instead of blocking forever.
#[test]
fn jacobi_partition_recovers_like_a_crash() {
    let p = JacobiParams::small(48, 50);
    let baseline = run_sim(&jacobi_exp(&p, 4, LoadScript::dedicated()));
    let t_cut = SimTime::from_secs_f64(baseline.makespan * 0.5);
    let out = run_sim(&jacobi_exp(
        &p,
        4,
        LoadScript::dedicated().node_partition(t_cut, 2),
    ));
    for (r, res) in out.per_rank.iter().enumerate() {
        if r != 2 {
            assert!(res.participating, "survivor {r} must finish");
        }
    }
    let kinds: Vec<&str> = out.events().iter().map(|e| e.kind()).collect();
    assert!(kinds.contains(&"node-confirmed-dead"), "{kinds:?}");
    assert!(
        checksums_close(out.checksum(), baseline.checksum()),
        "{:?} vs {:?}",
        out.checksum(),
        baseline.checksum()
    );
}

/// Env-driven single-scenario probe (dev aid): PROBE_FRAC, PROBE_DEAD,
/// PROBE_ITERS.
#[test]
#[ignore]
fn probe_one_crash_scenario() {
    let frac: f64 = std::env::var("PROBE_FRAC").unwrap().parse().unwrap();
    let dead: usize = std::env::var("PROBE_DEAD").unwrap().parse().unwrap();
    let iters: usize = std::env::var("PROBE_ITERS")
        .unwrap_or("50".into())
        .parse()
        .unwrap();
    let p = JacobiParams::small(48, iters);
    let baseline = run_sim(&jacobi_exp(&p, 4, LoadScript::dedicated()));
    let t_crash = SimTime::from_secs_f64(baseline.makespan * frac);
    let out = run_sim(&jacobi_exp(
        &p,
        4,
        LoadScript::dedicated().node_crash(t_crash, dead),
    ));
    assert_recovered(&out, &baseline, dead, &format!("probe {dead}@{frac}"));
}
