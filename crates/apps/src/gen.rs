//! Deterministic workload generators.
//!
//! Every rank generates the same global data from the same seed, then
//! keeps only what it owns — the standard trick for reproducible
//! distributed initialization without an input file.

/// Minimal SplitMix64 generator so workload generation needs no external
/// crates and stays bit-identical across platforms.
struct GenRng(u64);

impl GenRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }
}

/// A symmetric, diagonally dominant (hence SPD) sparse matrix in
/// coordinate form: `(row, col, value)` with both triangle entries
/// emitted, plus a dominant diagonal. Mirrors the unstructured matrix of
/// the NAS CG benchmark at an adjustable density.
pub fn spd_coords(n: usize, offdiag_per_row: usize, seed: u64) -> Vec<(usize, u32, f64)> {
    assert!(n >= 2);
    let mut rng = GenRng(seed);
    let mut upper: Vec<(usize, usize, f64)> = Vec::with_capacity(n * offdiag_per_row / 2);
    for i in 0..n {
        for _ in 0..offdiag_per_row.div_ceil(2) {
            let j = rng.index(n);
            if j != i {
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                let v = rng.range_f64(0.01, 1.0);
                upper.push((a, b, v));
            }
        }
    }
    // Row sums for diagonal dominance.
    let mut rowsum = vec![0.0f64; n];
    for &(a, b, v) in &upper {
        rowsum[a] += v.abs();
        rowsum[b] += v.abs();
    }
    let mut out: Vec<(usize, u32, f64)> = Vec::with_capacity(upper.len() * 2 + n);
    for &(a, b, v) in &upper {
        out.push((a, b as u32, v));
        out.push((b, a as u32, v));
    }
    for (i, rs) in rowsum.iter().enumerate() {
        out.push((i, i as u32, rs + 1.0));
    }
    out
}

/// Initial particle counts for the MP3D-style simulation: `base`
/// particles per cell everywhere, `hot` per cell inside `hot_rows`.
pub fn particle_counts(
    rows: usize,
    cols: usize,
    base: f64,
    hot: f64,
    hot_rows: std::ops::Range<usize>,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut rng = GenRng(seed);
    (0..rows)
        .map(|i| {
            let level = if hot_rows.contains(&i) { hot } else { base };
            (0..cols)
                .map(|_| (level + rng.unit_f64()).floor())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spd_is_symmetric_and_dominant() {
        let n = 50;
        let coords = spd_coords(n, 6, 42);
        let mut dense = vec![vec![0.0f64; n]; n];
        for &(i, j, v) in &coords {
            dense[i][j as usize] += v; // duplicates accumulate on both sides
        }
        for (i, row) in dense.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert!((v - dense[j][i]).abs() < 1e-12, "asym at {i},{j}");
            }
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| row[j].abs()).sum();
            assert!(row[i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(spd_coords(30, 4, 7), spd_coords(30, 4, 7));
        assert_ne!(spd_coords(30, 4, 7), spd_coords(30, 4, 8));
    }

    #[test]
    fn particle_hot_region_is_hotter() {
        let c = particle_counts(16, 8, 1.5, 10.0, 0..4, 3);
        let hot: f64 = c[..4].iter().flatten().sum();
        let cold: f64 = c[4..8].iter().flatten().sum();
        assert!(hot > 2.0 * cold, "hot {hot} vs cold {cold}");
        // Counts are whole particles.
        assert!(c.iter().flatten().all(|x| x.fract() == 0.0 && *x >= 0.0));
    }
}
