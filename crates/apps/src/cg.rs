//! Conjugate Gradient on an unstructured sparse system (§5: the NAS CG
//! analogue).
//!
//! Solves `A x = b` for a random symmetric diagonally dominant `A`
//! (NAS-style, adjustable density). `A` is row-distributed as a Dyn-MPI
//! **sparse** array (vector of lists); the solution vectors are rowlen-1
//! dense arrays. Each iteration allgathers `p`, computes the local
//! mat-vec, and reduces the dot products globally — the reductions use
//! the removed-aware collective, so dropped nodes stay current (§4.4).

use dynmpi::{
    AccessMode, CommPattern, DenseMatrix, Drsd, DynMpi, DynMpiConfig, RedistArray, SparseMatrix,
};
use dynmpi_comm::{CommOps, HostMeters};

use crate::gen;
use crate::result::AppResult;
use crate::work;

/// CG parameters.
#[derive(Clone, Debug)]
pub struct CgParams {
    /// System dimension (paper: 14000).
    pub n: usize,
    /// Off-diagonal nonzeros per row (paper-scale ≈ 132 for NAS class A
    /// density).
    pub offdiag_per_row: usize,
    /// CG iterations (phase cycles).
    pub iters: usize,
    /// Matrix seed.
    pub seed: u64,
}

impl CgParams {
    /// The §5.1 configuration (density reduced to keep memory sane while
    /// preserving the compute/communication ratio via the work model).
    pub fn paper() -> Self {
        CgParams {
            n: 14_000,
            offdiag_per_row: 132,
            iters: 250,
            seed: 1,
        }
    }

    /// A small configuration for tests.
    pub fn small(n: usize, iters: usize) -> Self {
        CgParams {
            n,
            offdiag_per_row: 6,
            iters,
            seed: 1,
        }
    }
}

/// Runs CG on one rank; returns the final residual norm as the checksum.
pub fn run<T: HostMeters>(t: &T, p: &CgParams, cfg: DynMpiConfig) -> AppResult {
    let n = p.n;
    let mut rt = DynMpi::init(t, n, cfg);
    let a_id = rt.register_sparse("A", n);
    let x_id = rt.register_dense("x", n);
    let r_id = rt.register_dense("r", n);
    let p_id = rt.register_dense("p", n);
    let ph = rt.init_phase(0, n, CommPattern::Global);
    rt.add_access(ph, a_id, AccessMode::Read, Drsd::iter_space());
    rt.add_access(ph, x_id, AccessMode::ReadWrite, Drsd::iter_space());
    rt.add_access(ph, r_id, AccessMode::ReadWrite, Drsd::iter_space());
    rt.add_access(ph, p_id, AccessMode::ReadWrite, Drsd::iter_space());

    let mut a = SparseMatrix::<f64>::new(n, n);
    let mut x = DenseMatrix::<f64>::new(n, 1);
    let mut r = DenseMatrix::<f64>::new(n, 1);
    let mut pv = DenseMatrix::<f64>::new(n, 1);
    {
        let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut a, &mut x, &mut r, &mut pv];
        rt.setup(&mut arrays);
    }

    // Deterministic global generation; keep owned rows.
    let mine = rt.my_rows(ph);
    for (i, j, v) in gen::spd_coords(n, p.offdiag_per_row, p.seed) {
        if mine.contains(i) {
            let row = a.row_mut(i);
            let cur = row.get(j).copied().unwrap_or(0.0);
            row.set(j, cur + v);
        }
    }
    // x₀ = 0, b = 1 ⇒ r₀ = b, p₀ = r₀.
    x.fill_rows(&mine, |_, _| 0.0);
    r.fill_rows(&mine, |_, _| 1.0);
    pv.fill_rows(&mine, |_, _| 1.0);

    let nnz_mine: usize = mine.iter().map(|i| a.row(i).nnz()).sum();
    let mut final_rr = f64::NAN;
    for _iter in 0..p.iters {
        rt.begin_cycle();
        let (mut rr_local, mut pq_local) = (0.0, 0.0);
        let mut q: Vec<(usize, f64)> = Vec::new();
        if rt.participating() {
            // Assemble the full p vector from all active blocks.
            let my_p: Vec<f64> = rt.my_rows(ph).iter().map(|i| pv.row(i)[0]).collect();
            let blocks = t.allgatherv(rt.group(), &my_p);
            let mut full_p = Vec::with_capacity(n);
            for b in &blocks {
                full_p.extend_from_slice(b);
            }
            debug_assert_eq!(full_p.len(), n);
            // q = A·p on my rows; accumulate r·r and p·q.
            for i in rt.my_rows(ph).iter() {
                let mut qi = 0.0;
                for (c, v) in a.row(i).iter() {
                    qi += v * full_p[c as usize];
                }
                q.push((i, qi));
                rr_local += r.row(i)[0] * r.row(i)[0];
                pq_local += pv.row(i)[0] * qi;
            }
            let my_nnz = rt.my_rows(ph).iter().map(|i| a.row(i).nnz()).sum::<usize>();
            let _ = nnz_mine;
            rt.charge_rows(ph, {
                let a = &a;
                move |i| a.row(i).nnz() as f64 * work::CG_NNZ + 3.0 * work::CG_VEC
            });
            debug_assert!(my_nnz > 0 || rt.my_rows(ph).is_empty());
        }
        // Global reductions — every world rank calls these.
        let sums = rt.allreduce_sum(&[rr_local, pq_local]);
        let (rr, pq) = (sums[0], sums[1]);
        let alpha = if pq.abs() > 0.0 { rr / pq } else { 0.0 };
        let mut rr_new_local = 0.0;
        if rt.participating() {
            for &(i, qi) in &q {
                x.row_mut(i)[0] += alpha * pv.row(i)[0];
                let ri = r.row(i)[0] - alpha * qi;
                r.row_mut(i)[0] = ri;
                rr_new_local += ri * ri;
            }
        }
        let rr_new = rt.allreduce_sum(&[rr_new_local])[0];
        let beta = if rr.abs() > 0.0 { rr_new / rr } else { 0.0 };
        if rt.participating() {
            for i in rt.my_rows(ph).iter() {
                let v = r.row(i)[0] + beta * pv.row(i)[0];
                pv.row_mut(i)[0] = v;
            }
        }
        final_rr = rr_new;
        let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut a, &mut x, &mut r, &mut pv];
        rt.end_cycle(&mut arrays);
    }

    AppResult {
        checksum: Some(final_rr.sqrt()),
        cycle_times: rt.local_cycle_times().to_vec(),
        events: rt.events().to_vec(),
        redist_seconds: rt.redistribution_seconds(),
        participating: rt.participating(),
        final_rows: rt.my_rows(ph).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmpi_comm::run_threads;

    /// Dense sequential CG for validation.
    fn reference(n: usize, offdiag: usize, seed: u64, iters: usize) -> f64 {
        let mut dense = vec![vec![0.0f64; n]; n];
        for (i, j, v) in gen::spd_coords(n, offdiag, seed) {
            dense[i][j as usize] += v;
        }
        let mut x = vec![0.0f64; n];
        let mut r = vec![1.0f64; n];
        let mut p = r.clone();
        let mut rr_new = 0.0;
        for _ in 0..iters {
            let q: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| dense[i][j] * p[j]).sum())
                .collect();
            let rr: f64 = r.iter().map(|v| v * v).sum();
            let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            let alpha = if pq.abs() > 0.0 { rr / pq } else { 0.0 };
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            rr_new = r.iter().map(|v| v * v).sum();
            let beta = if rr.abs() > 0.0 { rr_new / rr } else { 0.0 };
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }
        rr_new.sqrt()
    }

    #[test]
    fn matches_sequential_reference() {
        let (n, off, seed, iters) = (40, 4, 9, 8);
        let expect = reference(n, off, seed, iters);
        for ranks in [1usize, 3] {
            let outs = run_threads(ranks, |t| {
                let p = CgParams {
                    n,
                    offdiag_per_row: off,
                    iters,
                    seed,
                };
                run(t, &p, DynMpiConfig::no_adapt())
            });
            for res in &outs {
                let c = res.checksum.unwrap();
                assert!(
                    (c - expect).abs() < 1e-8 * expect.max(1.0),
                    "{ranks} ranks: {c} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn residual_decreases() {
        let outs = run_threads(2, |t| {
            let p = CgParams::small(60, 20);
            run(t, &p, DynMpiConfig::no_adapt())
        });
        // Diagonally dominant ⇒ CG converges fast: residual far below
        // the initial ‖b‖ = √60.
        let c = outs[0].checksum.unwrap();
        assert!(c < 1e-6, "residual {c}");
    }

    #[test]
    fn rebalance_mid_solve_preserves_solution() {
        let (n, off, seed, iters) = (40, 4, 9, 10);
        let expect = reference(n, off, seed, iters);
        let outs = run_threads(3, |t| {
            // Adaptation on; force a redistribution via request_rebalance
            // within the runtime by toggling? Not exposed per-app here;
            // instead run with tiny grace and no load: adaptation stays
            // quiet but the full control path runs every cycle.
            let p = CgParams {
                n,
                offdiag_per_row: off,
                iters,
                seed,
            };
            run(t, &p, DynMpiConfig::default())
        });
        for res in &outs {
            let c = res.checksum.unwrap();
            assert!(
                (c - expect).abs() < 1e-8 * expect.max(1.0),
                "{c} vs {expect}"
            );
        }
    }
}
