//! Experiment harness: runs any application on a scripted virtual
//! cluster and collects the measurements the paper's figures report.

use dynmpi::DynMpiConfig;
use dynmpi_comm::SimTransport;
use dynmpi_obs::{Json, Recorder};
use dynmpi_sim::{Cluster, LoadScript, NetParams, NodeSpec, OsParams};

use crate::cg::{self, CgParams};
use crate::jacobi::{self, JacobiParams};
use crate::particle::{self, ParticleParams};
use crate::result::AppResult;
use crate::sor::{self, SorParams};

/// Which application to run, with its parameters.
#[derive(Clone, Debug)]
pub enum AppSpec {
    Jacobi(JacobiParams),
    Sor(SorParams),
    Cg(CgParams),
    Particle(ParticleParams),
}

impl AppSpec {
    pub fn name(&self) -> &'static str {
        match self {
            AppSpec::Jacobi(_) => "jacobi",
            AppSpec::Sor(_) => "sor",
            AppSpec::Cg(_) => "cg",
            AppSpec::Particle(_) => "particle",
        }
    }
}

/// A full experiment description.
#[derive(Clone, Debug)]
pub struct Experiment {
    pub app: AppSpec,
    pub nodes: usize,
    pub node_spec: NodeSpec,
    pub os: OsParams,
    pub net: NetParams,
    pub script: LoadScript,
    pub cfg: DynMpiConfig,
    /// Force the simulator engine mode: `Some(true)` = stepped,
    /// `Some(false)` = fast-forward, `None` = cluster default (the
    /// `DYNMPI_SIM_STEPPED` environment switch).
    pub stepped: Option<bool>,
    /// Engine shards the run is partitioned into (`--shards`). Purely a
    /// wall-clock knob: results are bit-identical for any value.
    pub shards: usize,
}

impl Experiment {
    /// A paper-testbed experiment: Xeon-class nodes, 100 Mb/s Ethernet.
    pub fn new(app: AppSpec, nodes: usize) -> Self {
        Experiment {
            app,
            nodes,
            node_spec: NodeSpec::xeon_550(),
            os: OsParams::default(),
            net: NetParams::ethernet_100mbps(),
            script: LoadScript::dedicated(),
            cfg: DynMpiConfig::default(),
            stepped: None,
            shards: 1,
        }
    }

    pub fn with_script(mut self, script: LoadScript) -> Self {
        self.script = script;
        self
    }

    pub fn with_cfg(mut self, cfg: DynMpiConfig) -> Self {
        self.cfg = cfg;
        self
    }

    pub fn with_node_spec(mut self, spec: NodeSpec) -> Self {
        self.node_spec = spec;
        self
    }

    pub fn with_stepped(mut self, stepped: bool) -> Self {
        self.stepped = Some(stepped);
        self
    }

    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Everything a simulated run produced.
#[derive(Clone, Debug)]
pub struct SimRunResult {
    /// Virtual makespan (slowest rank's finish), seconds.
    pub makespan: f64,
    /// Per-rank application results.
    pub per_rank: Vec<AppResult>,
    pub net_messages: u64,
    pub net_bytes: u64,
}

impl SimRunResult {
    /// Checksum (identical on all ranks) if the kernel ran.
    pub fn checksum(&self) -> Option<f64> {
        self.per_rank[0].checksum
    }

    /// Rank-0's adaptation events (identical on all participating ranks
    /// up to removal).
    pub fn events(&self) -> &[dynmpi::RuntimeEvent] {
        &self.per_rank[0].events
    }

    /// Mean cycle time over a cycle window, on the slowest rank.
    pub fn max_mean_cycle(&self, window: std::ops::Range<usize>) -> f64 {
        self.per_rank
            .iter()
            .map(|r| {
                let w: Vec<f64> = r
                    .cycle_times
                    .iter()
                    .copied()
                    .skip(window.start)
                    .take(window.len())
                    .collect();
                if w.is_empty() {
                    0.0
                } else {
                    w.iter().sum::<f64>() / w.len() as f64
                }
            })
            .fold(0.0, f64::max)
    }

    /// Total redistribution seconds (max across ranks — it is a
    /// collective, so all participants report ≈ the same).
    pub fn redist_seconds(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.redist_seconds)
            .fold(0.0, f64::max)
    }
}

/// One row of a figure table, serializable for EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct ResultRow {
    pub figure: String,
    pub app: String,
    pub nodes: usize,
    pub variant: String,
    pub seconds: f64,
    pub normalized: f64,
}

impl ResultRow {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::str(self.figure.clone())),
            ("app", Json::str(self.app.clone())),
            ("nodes", Json::UInt(self.nodes as u64)),
            ("variant", Json::str(self.variant.clone())),
            ("seconds", Json::Num(self.seconds)),
            ("normalized", Json::Num(self.normalized)),
        ])
    }
}

/// Runs an experiment on the virtual cluster.
pub fn run_sim(exp: &Experiment) -> SimRunResult {
    run_sim_with(exp, None)
}

/// Runs an experiment, optionally attaching an observability [`Recorder`]:
/// every rank then emits virtual-time trace spans and metrics into it.
pub fn run_sim_with(exp: &Experiment, recorder: Option<Recorder>) -> SimRunResult {
    let mut cluster = Cluster::homogeneous(exp.nodes, exp.node_spec)
        .with_os(exp.os)
        .with_net(exp.net)
        .with_script(exp.script.clone())
        .with_shards(exp.shards);
    if let Some(r) = recorder {
        cluster = cluster.with_recorder(r);
    }
    if let Some(stepped) = exp.stepped {
        cluster = cluster.with_stepped(stepped);
    }
    let app = exp.app.clone();
    let mut cfg = exp.cfg.clone();
    // Scripted arrivals: the extra ranks start outside the computation
    // (seed world = the scripted cluster) and their relative speeds feed
    // the heterogeneous balancer.
    if !exp.script.arrivals().is_empty() {
        cfg.seed_world = Some(exp.nodes);
        if cfg.node_speeds.is_empty() {
            let mut speeds = vec![1.0; exp.nodes];
            for a in exp.script.arrivals() {
                speeds.push(a.spec.speed / exp.node_spec.speed);
            }
            cfg.node_speeds = speeds;
        }
    }
    let out = cluster.run_spmd(move |ctx| {
        let t = SimTransport::new(ctx);
        match &app {
            AppSpec::Jacobi(p) => jacobi::run(&t, p, cfg.clone()),
            AppSpec::Sor(p) => sor::run(&t, p, cfg.clone()),
            AppSpec::Cg(p) => cg::run(&t, p, cfg.clone()),
            AppSpec::Particle(p) => particle::run(&t, p, cfg.clone()),
        }
    });
    SimRunResult {
        makespan: out.report.finish_time.as_secs_f64(),
        per_rank: out.results,
        net_messages: out.report.net_messages,
        net_bytes: out.report.net_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmpi_sim::SimTime;

    #[test]
    fn jacobi_runs_on_simulator() {
        let exp = Experiment::new(AppSpec::Jacobi(JacobiParams::small(32, 10)), 2);
        let r = run_sim(&exp);
        assert!(r.makespan > 0.0);
        assert_eq!(r.per_rank.len(), 2);
        assert!(r.net_messages > 0);
    }

    #[test]
    fn dedicated_beats_loaded_no_adapt() {
        let p = JacobiParams::small(64, 30);
        // Slow nodes: compute-dominated, so the competing processes bite.
        let spec = NodeSpec::with_speed(1e6);
        let ded = run_sim(
            &Experiment::new(AppSpec::Jacobi(p.clone()), 2)
                .with_node_spec(spec)
                .with_cfg(DynMpiConfig::no_adapt()),
        );
        let loaded = run_sim(
            &Experiment::new(AppSpec::Jacobi(p), 2)
                .with_node_spec(spec)
                .with_cfg(DynMpiConfig::no_adapt())
                .with_script(LoadScript::dedicated().at_time(0, SimTime::ZERO, 2)),
        );
        assert!(
            loaded.makespan > 1.5 * ded.makespan,
            "loaded {} vs dedicated {}",
            loaded.makespan,
            ded.makespan
        );
        // Same answers regardless of load.
        assert_eq!(ded.checksum(), loaded.checksum());
    }

    #[test]
    fn adaptation_beats_no_adaptation_under_load() {
        let mut p = JacobiParams::small(128, 60);
        p.exercise_kernel = false;
        // Slow nodes make the workload compute-dominated (≈32 ms/cycle
        // per node), the regime where redistribution pays.
        let spec = NodeSpec::with_speed(1e6);
        let script = LoadScript::dedicated().at_cycle(0, 10, 2);
        let no_adapt = run_sim(
            &Experiment::new(AppSpec::Jacobi(p.clone()), 4)
                .with_node_spec(spec)
                .with_cfg(DynMpiConfig::no_adapt())
                .with_script(script.clone()),
        );
        let adapt = run_sim(
            &Experiment::new(AppSpec::Jacobi(p), 4)
                .with_node_spec(spec)
                .with_cfg(DynMpiConfig::default())
                .with_script(script),
        );
        assert!(
            adapt.makespan < no_adapt.makespan,
            "adapt {} vs no-adapt {}",
            adapt.makespan,
            no_adapt.makespan
        );
        assert!(adapt.events().iter().any(|e| e.kind() == "redistributed"));
    }
}
