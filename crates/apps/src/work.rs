//! Work-model calibration constants.
//!
//! Applications execute their real numerical kernels (so answers can be
//! validated), while *virtual* CPU cost is charged explicitly in work
//! units (≈flops on the simulated node). These constants are calibrated
//! so that the default paper-scale workloads land near the paper's
//! reported absolute times on the simulated 550 MHz Xeon
//! (≈100 Mflop/s effective) — e.g. 4-node CG ≈ 37.5 s dedicated (§5.1).

/// Effective work units per grid point of a Jacobi sweep
/// (4 adds + 1 multiply + loads/stores).
pub const JACOBI_POINT: f64 = 8.0;

/// Effective work units per updated point of an SOR sweep (5-point
/// stencil plus the relaxation update; only half the points per sweep).
pub const SOR_POINT: f64 = 10.0;

/// Effective work units per sparse-matrix nonzero in the CG mat-vec
/// (memory-bound gather: dominated by cache misses on a 1999-era core).
pub const CG_NNZ: f64 = 30.0;

/// Effective work units per vector element per CG vector operation
/// (axpy / dot contributions).
pub const CG_VEC: f64 = 6.0;

/// Effective work units per particle per time step (move + collide in
/// the scaled-down MP3D model). Calibrated so even the Figure 7 hot rows
/// (50 particles × 256 cells) stay under the 10 ms `/proc` tick, as the
/// paper requires ("each iteration is less than 10 ms").
pub const PARTICLE: f64 = 50.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_paper_scale_sanity() {
        // 2048² Jacobi on 4 dedicated 100 Mflop/s nodes, 250 iterations:
        // the compute part should land in tens of seconds, like §5.
        let per_cycle_per_node = 2046.0 / 4.0 * 2046.0 * JACOBI_POINT / 100e6;
        let total = per_cycle_per_node * 250.0;
        assert!((10.0..120.0).contains(&total), "total {total}");
    }

    #[test]
    fn cg_paper_scale_sanity() {
        // 14000×14000 with ~132 nnz/row on 4 nodes, 250 iterations ≈ the
        // paper's 37.5 s dedicated run.
        let nnz = 14_000.0 * 132.0;
        let per_cycle = (nnz * CG_NNZ + 3.0 * 14_000.0 * CG_VEC) / 4.0 / 100e6;
        let total = per_cycle * 250.0;
        assert!((20.0..60.0).contains(&total), "total {total}");
    }

    #[test]
    fn particle_rows_stay_under_proc_tick() {
        // Fig. 7 requires sub-10 ms iterations with small particle counts.
        let light = 256.0 * 2.0 * PARTICLE / 100e6;
        let hot = 256.0 * 50.0 * PARTICLE / 100e6;
        assert!(light < 0.010, "light row {light}");
        assert!(hot < 0.010, "hot row {hot} must stay under the /proc tick");
    }
}
