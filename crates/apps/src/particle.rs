//! Particle simulation — a scaled-down MP3D analogue (§5, §5.4).
//!
//! Particles live in an `rows × cols` cell grid; each time step a fixed
//! fraction of every cell's particles drifts to the neighboring cells
//! (deterministically, so runs are reproducible). Rows are
//! block-distributed; flux into a row owned by another node is sent
//! explicitly. Per-row compute cost is proportional to the particles in
//! the row, so iterations are **nonuniform** — the case that forces
//! per-iteration grace-period timing (§4.2) and the Figure 7 study.

use dynmpi::{AccessMode, CommPattern, DenseMatrix, Drsd, DynMpi, DynMpiConfig, RedistArray};
use dynmpi_comm::{CommOps, HostMeters};

use crate::gen;
use crate::result::AppResult;
use crate::work;

/// Particle-simulation parameters.
#[derive(Clone, Debug)]
pub struct ParticleParams {
    /// Grid rows (paper: 256).
    pub rows: usize,
    /// Grid columns (paper: 256).
    pub cols: usize,
    /// Baseline particles per cell (paper: 1–2).
    pub base: f64,
    /// Particles per cell in the hot region (Fig. 7's `Part`).
    pub hot: f64,
    /// Hot region: the top half of node 0's initial rows (per §5.4) when
    /// `hot_rows` is `None`; otherwise the explicit row range.
    pub hot_rows: Option<std::ops::Range<usize>>,
    /// Time steps (paper: 200).
    pub iters: usize,
    /// Fraction of a cell's particles drifting to each vertical neighbor
    /// per step.
    pub drift: f64,
    pub seed: u64,
}

impl ParticleParams {
    /// The §5.1 configuration: one node with twice the particles.
    pub fn paper(nodes: usize) -> Self {
        let block = 256 / nodes;
        ParticleParams {
            rows: 256,
            cols: 256,
            base: 1.5,
            hot: 3.0,
            hot_rows: Some(0..block),
            iters: 200,
            drift: 0.05,
            seed: 11,
        }
    }

    /// The Figure 7 configuration: `part` particles per cell in the top
    /// half of P0's rows, 8 nodes.
    pub fn fig7(part: f64) -> Self {
        let block = 256 / 8;
        ParticleParams {
            rows: 256,
            cols: 256,
            base: 1.5,
            hot: part,
            hot_rows: Some(0..block / 2),
            iters: 200,
            drift: 0.05,
            seed: 11,
        }
    }

    /// A small configuration for tests.
    pub fn small(rows: usize, cols: usize, iters: usize) -> Self {
        ParticleParams {
            rows,
            cols,
            base: 2.0,
            hot: 8.0,
            hot_rows: Some(0..rows / 4),
            iters,
            drift: 0.1,
            seed: 11,
        }
    }
}

const TAG_FLUX_UP: u64 = 40;
const TAG_FLUX_DOWN: u64 = 41;

/// Runs the particle simulation on one rank; the checksum is the total
/// particle mass (conserved).
pub fn run<T: HostMeters>(t: &T, p: &ParticleParams, cfg: DynMpiConfig) -> AppResult {
    let (nr, nc) = (p.rows, p.cols);
    let mut rt = DynMpi::init(t, nr, cfg);
    let c_id = rt.register_dense("cells", nr);
    let ph = rt.init_phase(0, nr, CommPattern::NearestNeighbor);
    rt.add_access(ph, c_id, AccessMode::ReadWrite, Drsd::iter_space());

    let mut cells = DenseMatrix::<f64>::new(nr, nc);
    {
        let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut cells];
        rt.setup(&mut arrays);
    }
    let hot_rows = p.hot_rows.clone().unwrap_or(0..nr / 8);
    let init = gen::particle_counts(nr, nc, p.base, p.hot, hot_rows, p.seed);
    cells.fill_rows(&rt.my_rows(ph), |i, j| init[i][j]);

    for _step in 0..p.iters {
        rt.begin_cycle();
        if rt.participating() {
            step_cells(t, &rt, ph, &mut cells, p);
            rt.charge_rows(ph, {
                let cells = &cells;
                move |i| cells.row(i).iter().sum::<f64>() * work::PARTICLE
            });
        }
        let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut cells];
        rt.end_cycle(&mut arrays);
    }

    let local: f64 = rt
        .my_rows(ph)
        .iter()
        .map(|i| cells.row(i).iter().sum::<f64>())
        .sum();
    let checksum = rt.allreduce_sum(&[local])[0];
    AppResult {
        checksum: Some(checksum),
        cycle_times: rt.local_cycle_times().to_vec(),
        events: rt.events().to_vec(),
        redist_seconds: rt.redistribution_seconds(),
        participating: rt.participating(),
        final_rows: rt.my_rows(ph).len(),
    }
}

/// One drift step: horizontal drift within rows, vertical drift between
/// rows (with explicit flux messages across ownership boundaries).
fn step_cells<T: HostMeters>(
    t: &T,
    rt: &DynMpi<'_, T>,
    ph: usize,
    cells: &mut DenseMatrix<f64>,
    p: &ParticleParams,
) {
    let mine = rt.my_rows(ph);
    if mine.is_empty() {
        return;
    }
    let nr = p.rows;
    let nc = p.cols;
    let d = p.drift;
    let dist = rt.distribution();
    let rel = rt.rel_rank().expect("participating");
    let me = rt.world_rank();

    // Vertical outflow per row, staged so updates don't cascade.
    let mut up_flux: Vec<(usize, Vec<f64>)> = Vec::new(); // flux INTO row i-1
    let mut down_flux: Vec<(usize, Vec<f64>)> = Vec::new(); // flux INTO row i+1
    for i in mine.iter() {
        let row = cells.row_mut(i);
        // Horizontal drift first (purely local): a fraction d shifts
        // right, wrapping.
        let moved_right: Vec<f64> = row.iter().map(|c| c * d).collect();
        for j in 0..nc {
            row[j] -= moved_right[j];
        }
        for j in 0..nc {
            row[(j + 1) % nc] += moved_right[j];
        }
        // Vertical outflow.
        let up: Vec<f64> = if i > 0 {
            row.iter().map(|c| c * d).collect()
        } else {
            vec![]
        };
        let down: Vec<f64> = if i + 1 < nr {
            row.iter().map(|c| c * d).collect()
        } else {
            vec![]
        };
        for j in 0..nc {
            if i > 0 {
                row[j] -= up[j];
            }
            if i + 1 < nr {
                row[j] -= down[j];
            }
        }
        if i > 0 {
            up_flux.push((i - 1, up));
        }
        if i + 1 < nr {
            down_flux.push((i + 1, down));
        }
    }

    // Apply local flux; send boundary flux to the owning node.
    for (target, flux) in up_flux.into_iter().chain(down_flux) {
        let owner_rel = dist.owner(target);
        if owner_rel == rel {
            let row = cells.row_mut(target);
            for j in 0..nc {
                row[j] += flux[j];
            }
        } else {
            let tag = if target < mine.first().unwrap() {
                TAG_FLUX_UP
            } else {
                TAG_FLUX_DOWN
            };
            let _ = me;
            t.send_slice(rt.world_rank_of(owner_rel), tag, &flux);
        }
    }

    // Receive flux into my boundary rows from the owners of the adjacent
    // rows (if they exist and are foreign).
    let lo = mine.first().unwrap();
    let hi = mine.last().unwrap();
    if lo > 0 {
        let owner = dist.owner(lo - 1);
        if owner != rel {
            let flux: Vec<f64> = t.recv_vec(rt.world_rank_of(owner), TAG_FLUX_DOWN);
            let row = cells.row_mut(lo);
            for j in 0..nc {
                row[j] += flux[j];
            }
        }
    }
    if hi + 1 < nr {
        let owner = dist.owner(hi + 1);
        if owner != rel {
            let flux: Vec<f64> = t.recv_vec(rt.world_rank_of(owner), TAG_FLUX_UP);
            let row = cells.row_mut(hi);
            for j in 0..nc {
                row[j] += flux[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmpi_comm::run_threads;

    fn total(p: &ParticleParams) -> f64 {
        let init = gen::particle_counts(
            p.rows,
            p.cols,
            p.base,
            p.hot,
            p.hot_rows.clone().unwrap(),
            p.seed,
        );
        init.iter().flatten().sum()
    }

    #[test]
    fn mass_is_conserved() {
        let p = ParticleParams::small(16, 8, 10);
        let expect = total(&p);
        for ranks in [1usize, 2, 4] {
            let outs = run_threads(ranks, |t| run(t, &p, DynMpiConfig::no_adapt()));
            for r in &outs {
                let c = r.checksum.unwrap();
                assert!(
                    (c - expect).abs() < 1e-9 * expect,
                    "{ranks} ranks: mass {c} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn results_agree_across_rank_counts() {
        let p = ParticleParams::small(12, 6, 6);
        let a = run_threads(1, |t| run(t, &p, DynMpiConfig::no_adapt()))[0]
            .checksum
            .unwrap();
        let b = run_threads(3, |t| run(t, &p, DynMpiConfig::no_adapt()))[0]
            .checksum
            .unwrap();
        assert!((a - b).abs() < 1e-9 * a);
    }

    #[test]
    fn hot_region_makes_rows_nonuniform() {
        let p = ParticleParams::small(16, 8, 1);
        let init = gen::particle_counts(16, 8, p.base, p.hot, 0..4, p.seed);
        let hot_row: f64 = init[0].iter().sum();
        let cold_row: f64 = init[10].iter().sum();
        assert!(hot_row > 2.0 * cold_row);
    }
}
