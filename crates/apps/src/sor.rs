//! Red-Black successive over-relaxation (§5, §5.3).
//!
//! In-place Gauss-Seidel with red/black ordering: each phase cycle runs a
//! red half-sweep and a black half-sweep, each preceded by a boundary-row
//! exchange — twice the communication of Jacobi per unit of compute,
//! which is why the paper uses SOR for the node-removal study (Figure 6).

use dynmpi::{AccessMode, CommPattern, DenseMatrix, Drsd, DynMpi, DynMpiConfig, RedistArray};
use dynmpi_comm::HostMeters;

use crate::result::AppResult;
use crate::work;

/// SOR parameters.
#[derive(Clone, Debug)]
pub struct SorParams {
    /// Grid dimension (Figure 6 uses 1024).
    pub n: usize,
    /// Phase cycles.
    pub iters: usize,
    /// Relaxation factor.
    pub omega: f64,
    /// Execute the real numeric kernel.
    pub exercise_kernel: bool,
}

impl SorParams {
    /// The Figure 6 configuration.
    pub fn paper() -> Self {
        SorParams {
            n: 1024,
            iters: 250,
            omega: 1.5,
            exercise_kernel: true,
        }
    }

    /// A small configuration for tests.
    pub fn small(n: usize, iters: usize) -> Self {
        SorParams {
            n,
            iters,
            omega: 1.5,
            exercise_kernel: true,
        }
    }
}

fn initial(i: usize, j: usize, n: usize) -> f64 {
    if i == 0 || j == 0 || i == n - 1 || j == n - 1 {
        ((i + 2 * j) % 7) as f64
    } else {
        0.0
    }
}

/// One half-sweep over row `i`, updating points of the given color
/// (`(i + j) % 2 == color`).
fn half_sweep_row(g: &mut DenseMatrix<f64>, i: usize, n: usize, color: usize, omega: f64) {
    let up = g.row(i - 1).to_vec();
    let down = g.row(i + 1).to_vec();
    let row = g.row_mut(i);
    let start = if (i + 1) % 2 == color { 1 } else { 2 };
    let mut j = start;
    while j < n - 1 {
        let avg = 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1]);
        row[j] += omega * (avg - row[j]);
        j += 2;
    }
}

/// Runs Red-Black SOR on one rank.
pub fn run<T: HostMeters>(t: &T, p: &SorParams, cfg: DynMpiConfig) -> AppResult {
    let n = p.n;
    assert!(n >= 4, "grid too small");
    let mut rt = DynMpi::init(t, n, cfg);
    let g_id = rt.register_dense("G", n);
    // Two phases per cycle: red then black, each nearest-neighbor.
    let ph_red = rt.init_phase(1, n - 1, CommPattern::NearestNeighbor);
    let ph_black = rt.init_phase(1, n - 1, CommPattern::NearestNeighbor);
    rt.add_access(ph_red, g_id, AccessMode::ReadWrite, Drsd::with_halo(1));
    rt.add_access(ph_black, g_id, AccessMode::ReadWrite, Drsd::with_halo(1));

    let mut g = DenseMatrix::<f64>::new(n, n);
    {
        let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut g];
        rt.setup(&mut arrays);
    }
    g.fill_rows(&rt.local_rows(g_id), |i, j| initial(i, j, n));

    // Each half-sweep touches half the points of a row.
    let row_work = (n - 2) as f64 * 0.5 * work::SOR_POINT;
    for _step in 0..p.iters {
        rt.begin_cycle();
        if rt.participating() {
            for (phase, color) in [(ph_red, 0usize), (ph_black, 1usize)] {
                rt.ghost_exchange(g_id, &mut g);
                if p.exercise_kernel {
                    for i in rt.my_rows(phase).iter() {
                        half_sweep_row(&mut g, i, n, color, p.omega);
                    }
                }
                rt.charge_rows(phase, |_| row_work);
            }
        }
        let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut g];
        rt.end_cycle(&mut arrays);
    }

    let local: f64 = if rt.participating() && p.exercise_kernel {
        rt.my_rows(ph_red)
            .iter()
            .map(|i| g.row(i).iter().sum::<f64>())
            .sum()
    } else {
        0.0
    };
    let checksum = rt.allreduce_sum(&[local])[0];
    AppResult {
        checksum: p.exercise_kernel.then_some(checksum),
        cycle_times: rt.local_cycle_times().to_vec(),
        events: rt.events().to_vec(),
        redist_seconds: rt.redistribution_seconds(),
        participating: rt.participating(),
        final_rows: rt.my_rows(ph_red).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmpi_comm::run_threads;

    fn reference(n: usize, iters: usize, omega: f64) -> f64 {
        let mut g: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| initial(i, j, n)).collect())
            .collect();
        for _ in 0..iters {
            for color in [0usize, 1] {
                for i in 1..n - 1 {
                    for j in 1..n - 1 {
                        if (i + j) % 2 == color {
                            let avg =
                                0.25 * (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]);
                            g[i][j] += omega * (avg - g[i][j]);
                        }
                    }
                }
            }
        }
        g[1..n - 1].iter().map(|r| r.iter().sum::<f64>()).sum()
    }

    #[test]
    fn matches_sequential_reference() {
        let n = 14;
        let iters = 6;
        let p = SorParams::small(n, iters);
        let expect = reference(n, iters, p.omega);
        for ranks in [1usize, 2, 4] {
            let outs = run_threads(ranks, |t| run(t, &p, DynMpiConfig::no_adapt()));
            for r in &outs {
                let c = r.checksum.unwrap();
                assert!(
                    (c - expect).abs() < 1e-9 * expect.abs().max(1.0),
                    "{ranks} ranks: {c} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn red_black_ordering_is_gauss_seidel_not_jacobi() {
        // The black half-sweep must see red's fresh values: with ω = 1
        // and one iteration this differs from a Jacobi sweep.
        let n = 8;
        let mut p = SorParams::small(n, 1);
        p.omega = 1.0;
        let expect = reference(n, 1, 1.0);
        let outs = run_threads(2, |t| run(t, &p, DynMpiConfig::no_adapt()));
        let c = outs[0].checksum.unwrap();
        assert!((c - expect).abs() < 1e-12 * expect.abs().max(1.0));
    }
}
