//! # dynmpi-apps — the paper's benchmark applications
//!
//! The four programs of §5, written against the public Dyn-MPI API and
//! generic over the transport (simulator for experiments, threads for
//! tests):
//!
//! * [`jacobi`] — Jacobi iteration, 5-point stencil (Figures 4–5),
//! * [`sor`] — Red-Black SOR, the low comp/comm-ratio code (Figures 4, 6),
//! * [`cg`] — NAS-style Conjugate Gradient on an unstructured sparse
//!   system (Figure 4, §5.1 case study),
//! * [`particle`] — a scaled-down MP3D particle simulation with
//!   nonuniform iterations (Figures 4, 7),
//!
//! plus [`harness`], which runs any of them on a scripted virtual
//! cluster and collects the measurements the figures need.

pub mod cg;
pub mod gen;
pub mod harness;
pub mod jacobi;
pub mod particle;
pub mod result;
pub mod sor;
pub mod work;

pub use harness::{AppSpec, Experiment, SimRunResult};
pub use result::AppResult;
