//! Jacobi iteration (§5: first benchmark application).
//!
//! Solves a Laplace problem on an `n × n` grid with fixed boundaries by
//! repeated 5-point averaging between two buffers. Rows are
//! block-distributed; each cycle exchanges boundary rows with the
//! neighbors and sweeps the owned interior rows. This is the paper's
//! Figure 1/2 program, written against the Dyn-MPI API.

use dynmpi::{AccessMode, CommPattern, DenseMatrix, Drsd, DynMpi, DynMpiConfig, RedistArray};
use dynmpi_comm::HostMeters;

use crate::result::AppResult;
use crate::work;

/// Jacobi parameters.
#[derive(Clone, Debug)]
pub struct JacobiParams {
    /// Grid dimension (paper default 2048).
    pub n: usize,
    /// Phase cycles (paper default 250).
    pub iters: usize,
    /// Execute the real numeric kernel (disable for large timing-only
    /// sweeps; virtual timings are identical either way).
    pub exercise_kernel: bool,
    /// Request an explicit rebalance before this cycle (testing and the
    /// REDISTRIBUTE-annotation analogue).
    pub rebalance_at: Option<usize>,
}

impl JacobiParams {
    /// The paper's §5.1 configuration.
    pub fn paper() -> Self {
        JacobiParams {
            n: 2048,
            iters: 250,
            exercise_kernel: true,
            rebalance_at: None,
        }
    }

    /// A small configuration for tests.
    pub fn small(n: usize, iters: usize) -> Self {
        JacobiParams {
            n,
            iters,
            exercise_kernel: true,
            rebalance_at: None,
        }
    }
}

/// Boundary condition: hot left edge, cold elsewhere.
fn initial(i: usize, j: usize, n: usize) -> f64 {
    let _ = (i, n);
    if j == 0 {
        100.0
    } else {
        0.0
    }
}

/// Runs Jacobi on one rank. SPMD: call from every rank with identical
/// parameters.
pub fn run<T: HostMeters>(t: &T, p: &JacobiParams, cfg: DynMpiConfig) -> AppResult {
    let n = p.n;
    assert!(n >= 4, "grid too small");
    let mut rt = DynMpi::init(t, n, cfg);
    let a_id = rt.register_dense("A", n);
    let b_id = rt.register_dense("B", n);
    let ph = rt.init_phase(1, n - 1, CommPattern::NearestNeighbor);
    // Both buffers are alternately read (with a halo) and written.
    rt.add_access(ph, a_id, AccessMode::ReadWrite, Drsd::with_halo(1));
    rt.add_access(ph, b_id, AccessMode::ReadWrite, Drsd::with_halo(1));

    let mut ma = DenseMatrix::<f64>::new(n, n);
    let mut mb = DenseMatrix::<f64>::new(n, n);
    {
        let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut ma, &mut mb];
        rt.setup(&mut arrays);
    }
    ma.fill_rows(&rt.local_rows(a_id), |i, j| initial(i, j, n));
    mb.fill_rows(&rt.local_rows(b_id), |i, j| initial(i, j, n));

    let row_work = (n - 2) as f64 * work::JACOBI_POINT;
    // The canonical rollback loop: a crash recovery rewinds `step` to the
    // checkpointed progress and the survivors replay from restored data.
    let mut step = 0usize;
    while step < p.iters {
        rt.begin_cycle();
        if p.rebalance_at == Some(step) {
            rt.request_rebalance();
        }
        if rt.participating() {
            // Even steps read B / write A, odd steps the reverse.
            let (src_id, src, dst) = if step.is_multiple_of(2) {
                (b_id, &mut mb, &mut ma)
            } else {
                (a_id, &mut ma, &mut mb)
            };
            rt.ghost_exchange(src_id, &mut *src);
            if p.exercise_kernel {
                for i in rt.my_rows(ph).iter() {
                    sweep_row(src, dst, i, n);
                }
            }
            rt.charge_rows(ph, |_| row_work);
        }
        let mut arrays: Vec<&mut dyn RedistArray> = vec![&mut ma, &mut mb];
        rt.end_cycle(&mut arrays);
        step = match rt.take_rollback() {
            Some(back) => back as usize,
            None => step + 1,
        };
    }

    // Checksum over the final written buffer (globally consistent).
    let final_m = if p.iters % 2 == 1 { &mb } else { &ma };
    let local: f64 = if rt.participating() && p.exercise_kernel {
        rt.my_rows(ph)
            .iter()
            .map(|i| final_m.row(i).iter().sum::<f64>())
            .sum()
    } else {
        0.0
    };
    let checksum = rt.allreduce_sum(&[local])[0];
    AppResult {
        checksum: p.exercise_kernel.then_some(checksum),
        cycle_times: rt.local_cycle_times().to_vec(),
        events: rt.events().to_vec(),
        redist_seconds: rt.redistribution_seconds(),
        participating: rt.participating(),
        final_rows: rt.my_rows(ph).len(),
    }
}

/// One row of the 5-point sweep: `dst[i] ← avg of src neighbors`.
fn sweep_row(src: &DenseMatrix<f64>, dst: &mut DenseMatrix<f64>, i: usize, n: usize) {
    let up = src.row(i - 1);
    let down = src.row(i + 1);
    let mid = src.row(i);
    // The three source rows and the destination row never alias: copy the
    // stencil inputs once per row (cheap relative to the row itself).
    let mut out = vec![0.0; n];
    out[0] = mid[0];
    out[n - 1] = mid[n - 1];
    for j in 1..n - 1 {
        out[j] = 0.25 * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
    }
    // Preserve the fixed boundary columns from the destination's own
    // initial condition.
    let d = dst.row_mut(i);
    d[1..n - 1].copy_from_slice(&out[1..n - 1]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmpi_comm::run_threads;

    /// Sequential reference sweep for validation.
    fn reference(n: usize, iters: usize) -> f64 {
        let mut a: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| initial(i, j, n)).collect())
            .collect();
        let mut b = a.clone();
        for step in 0..iters {
            let (src, dst) = if step % 2 == 0 {
                (&b, &mut a)
            } else {
                (&a, &mut b)
            };
            // Mirror the distributed structure exactly: read src, write
            // only dst's interior.
            let mut next = dst.clone();
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    next[i][j] =
                        0.25 * (src[i - 1][j] + src[i + 1][j] + src[i][j - 1] + src[i][j + 1]);
                }
            }
            *dst = next;
        }
        let last = if iters % 2 == 1 { &b } else { &a };
        last[1..n - 1].iter().map(|r| r.iter().sum::<f64>()).sum()
    }

    #[test]
    fn matches_sequential_reference() {
        let n = 16;
        let iters = 7;
        let expect = reference(n, iters);
        for ranks in [1usize, 2, 3] {
            let outs = run_threads(ranks, |t| {
                run(t, &JacobiParams::small(n, iters), DynMpiConfig::no_adapt())
            });
            for r in &outs {
                let c = r.checksum.unwrap();
                assert!(
                    (c - expect).abs() < 1e-9 * expect.abs().max(1.0),
                    "{ranks} ranks: {c} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn rebalance_does_not_change_answer() {
        let n = 16;
        let iters = 12;
        let expect = reference(n, iters);
        let outs = run_threads(3, |t| {
            let cfg = DynMpiConfig {
                grace_period: 2,
                ..Default::default()
            };
            let mut p = JacobiParams::small(n, iters);
            p.rebalance_at = Some(3);
            run(t, &p, cfg)
        });
        for r in &outs {
            let c = r.checksum.unwrap();
            assert!(
                (c - expect).abs() < 1e-9 * expect.abs().max(1.0),
                "{c} vs {expect}"
            );
            // A load-change event must have been processed.
            assert!(r.events.iter().any(|e| e.kind() == "load-change"));
        }
    }

    #[test]
    fn kernel_skip_still_reports_times() {
        let outs = run_threads(2, |t| {
            let mut p = JacobiParams::small(12, 5);
            p.exercise_kernel = false;
            run(t, &p, DynMpiConfig::no_adapt())
        });
        for r in &outs {
            assert!(r.checksum.is_none());
            assert_eq!(r.cycle_times.len(), 5);
        }
    }
}
