//! Common per-rank result type for the benchmark applications.

use dynmpi::RuntimeEvent;

/// What one rank reports after running an application.
///
/// `Default` is the "no result" value: the simulator substitutes it for
/// a rank whose node fail-stopped mid-run (`checksum: None`,
/// `participating: false`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AppResult {
    /// Application-level checksum (identical across ranks; used to prove
    /// adaptation never changes answers). `None` when the numerical
    /// kernel was skipped.
    pub checksum: Option<f64>,
    /// Wall (virtual) seconds per phase cycle on this rank.
    pub cycle_times: Vec<f64>,
    /// Adaptation events this rank recorded.
    pub events: Vec<RuntimeEvent>,
    /// Total seconds this rank spent inside redistribution.
    pub redist_seconds: f64,
    /// Whether this rank was still participating at the end.
    pub participating: bool,
    /// Rows this rank owned at the end.
    pub final_rows: usize,
}

impl AppResult {
    /// Sum of this rank's cycle times.
    pub fn total_time(&self) -> f64 {
        self.cycle_times.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_sums() {
        let r = AppResult {
            checksum: Some(1.0),
            cycle_times: vec![0.5, 0.25],
            events: vec![],
            redist_seconds: 0.0,
            participating: true,
            final_rows: 10,
        };
        assert!((r.total_time() - 0.75).abs() < 1e-12);
    }
}
