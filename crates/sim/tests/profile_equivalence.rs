//! Profiler equivalence across advance modes: wait-state attribution must
//! be bit-identical between the fast path and `DYNMPI_SIM_STEPPED=1`.
//!
//! The fast path merges many scheduler slices into one `sched` span, so
//! the two modes record *different span streams* for the same run. The
//! spans carry exact `cpu`/`slices` attributes, and the analyzer
//! attributes from attribute sums rather than span counts — which is
//! precisely what makes the aggregation policy safe. These tests pin that
//! contract: same program, both modes, `analyze()` must produce equal
//! `ProfileReport`s (buckets, critical path, makespans) even though the
//! stepped run emits strictly more sched spans.

use dynmpi_obs::{analyze, ProfileReport, Recorder, TraceEvent};
use dynmpi_sim::{Cluster, LoadScript, NodeSpec, SimCtx};
use dynmpi_testkit::{check_n, Rng};

fn sched_span_count(events: &[TraceEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Complete { .. }) && e.cat() == "sched")
        .count()
}

/// Runs `f` under one advance mode with a recorder attached and returns
/// the analyzed profile plus the raw sched span count.
fn profiled<R, F>(mk: &impl Fn() -> Cluster, stepped: bool, f: F) -> (ProfileReport, usize)
where
    R: Send + Default,
    F: Fn(&SimCtx) -> R + Send + Sync + Copy,
{
    let rec = Recorder::new();
    mk().with_stepped(stepped)
        .with_recorder(rec.clone())
        .run_spmd(f);
    let events = rec.events();
    (analyze(&events), sched_span_count(&events))
}

#[test]
fn ring_attribution_is_bit_identical_across_modes() {
    // Loaded ring exchange: compute long enough to span many scheduler
    // slices, plus blocked receives so every bucket except redist/runtime
    // is exercised.
    let mk = || {
        let script = LoadScript::dedicated()
            .at_time(0, dynmpi_sim::SimTime::from_millis(20), 2)
            .at_time(2, dynmpi_sim::SimTime::from_millis(55), 3)
            .at_time(3, dynmpi_sim::SimTime::from_millis(10), 1);
        Cluster::homogeneous(4, NodeSpec::with_speed(1e6)).with_script(script)
    };
    let f = |ctx: &SimCtx| {
        let r = ctx.rank();
        let n = ctx.nprocs();
        for i in 0..10 {
            ctx.advance(4e4 + (r as f64) * 2e3);
            ctx.send((r + 1) % n, 1, vec![(r * 16 + i) as u8; 512]);
            let _ = ctx.recv((r + n - 1) % n, 1);
        }
        ctx.now()
    };
    let (stepped, stepped_spans) = profiled(&mk, true, f);
    let (fast, fast_spans) = profiled(&mk, false, f);

    assert_eq!(stepped, fast, "profile reports diverged across modes");

    // The aggregation actually happened: stepped subdivides what fast
    // records as one span per advance, yet attribution above is equal.
    assert!(
        fast_spans < stepped_spans,
        "expected fast mode to merge sched spans ({fast_spans} vs {stepped_spans})"
    );

    // And the shared report is non-trivial: full coverage, real waits,
    // interference from the competing processes.
    assert!(fast.makespan_ns > 0);
    assert!(fast.min_coverage_pct() >= 95.0);
    for rank in &fast.ranks {
        assert_eq!(rank.buckets.total(), rank.makespan_ns);
    }
    assert!(fast.ranks.iter().any(|r| r.buckets.late_wait_ns > 0));
    assert!(fast.ranks.iter().any(|r| r.buckets.interference_ns > 0));
    assert!(!fast.critical_path.is_empty());
}

#[test]
fn random_programs_attribute_identically_across_modes() {
    // Property sweep mirroring `fast_path_equivalence`: random speeds,
    // load timelines, and work sizes — attribution must never depend on
    // which advance mode produced the trace.
    check_n("profile_stepped_vs_fast_random", 10, |rng: &mut Rng| {
        let n = rng.range_usize(2, 5);
        let speeds: Vec<f64> = (0..n).map(|_| rng.range_f64(3e5, 3e6)).collect();
        let mut script = LoadScript::dedicated();
        for node in 0..n {
            for _ in 0..rng.range_u64(0, 4) {
                script = script.at_time(
                    node,
                    dynmpi_sim::SimTime::from_micros(rng.range_u64(1, 300_000)),
                    rng.range_u32(0, 4),
                );
            }
        }
        let works: Vec<f64> = (0..n).map(|_| rng.range_f64(1e4, 3e5)).collect();
        let rounds = rng.range_u64(1, 5);
        let mk = || {
            Cluster::heterogeneous(speeds.iter().map(|&s| NodeSpec::with_speed(s)).collect())
                .with_script(script.clone())
        };
        let works = &works;
        let f = move |ctx: &SimCtx| {
            let r = ctx.rank();
            for _ in 0..rounds {
                ctx.advance(works[r]);
                ctx.send((r + 1) % n, 3, vec![r as u8; 64]);
                let _ = ctx.recv((r + n - 1) % n, 3);
            }
            ctx.now()
        };
        let (stepped, stepped_spans) = profiled(&mk, true, f);
        let (fast, fast_spans) = profiled(&mk, false, f);
        assert_eq!(stepped, fast, "profile reports diverged across modes");
        assert!(fast_spans <= stepped_spans);
        for rank in &fast.ranks {
            assert_eq!(rank.buckets.total(), rank.makespan_ns);
        }
    });
}
