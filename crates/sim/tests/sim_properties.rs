//! Property tests on the simulator's core guarantees: fair-share CPU
//! scheduling, monotone network delivery, and whole-run determinism under
//! arbitrary load scripts. Driven by the seeded `dynmpi_testkit` harness.

use dynmpi_sim::{Cluster, CpuSched, LoadScript, NetParams, Network, NodeSpec, OsParams, SimTime};
use dynmpi_testkit::check;

/// Long computations get exactly a 1/(ncp+1) CPU share, whatever the
/// rotation hash does.
#[test]
fn cpu_share_matches_relative_power() {
    check("cpu_share_matches_relative_power", |rng| {
        let ncp = rng.range_u32(0, 5);
        let speed = rng.range_f64(1.0e5, 1.0e7);
        let work_secs = rng.range_f64(0.5, 3.0);
        let start_ms = rng.range_u64(0, 100);
        let s = CpuSched::new(NodeSpec::with_speed(speed), OsParams::default());
        let work = work_secs * speed;
        let mut t = SimTime::from_millis(start_ms);
        let t0 = t;
        let mut remaining = work;
        let mut cpu = 0.0f64;
        for _ in 0..5_000_000u64 {
            let seg = s.segment(t, ncp, None, remaining);
            if seg.work_done > 0.0 {
                cpu += (seg.end - t).as_secs_f64();
            }
            remaining -= seg.work_done;
            t = seg.end;
            if seg.completed {
                break;
            }
        }
        assert!(remaining <= 0.0 || remaining < 1e-6);
        let wall = (t - t0).as_secs_f64();
        let share = cpu / wall;
        let expect = 1.0 / f64::from(ncp + 1);
        // Within one scheduling round of exact fairness.
        assert!(
            (share - expect).abs() < 0.05 * expect + 0.02,
            "ncp={ncp}: share {share} vs {expect}"
        );
        assert!((cpu - work_secs).abs() < 1e-3, "cpu {cpu} vs {work_secs}");
    });
}

/// Per-pair network deliveries are monotone (FIFO) and never precede
/// latency + serialization.
#[test]
fn network_delivery_monotone_and_lower_bounded() {
    check("network_delivery_monotone", |rng| {
        let sizes = rng.vec_in(1, 40, |r| r.range_usize(0, 100_000));
        let src = rng.range_usize(0, 4);
        let dst = rng.range_usize(0, 4);
        let p = NetParams::ethernet_100mbps();
        let mut net = Network::new(4, p);
        let mut last = SimTime::ZERO;
        for (k, &bytes) in sizes.iter().enumerate() {
            let t = SimTime::from_micros(k as u64 * 50);
            let arr = net.deliver_at(src, dst, bytes, t);
            assert!(arr >= last, "FIFO violated");
            if src != dst {
                let min = t + Network::isolated_cost(&p, bytes);
                assert!(arr >= min, "arrived before physics allows");
            }
            last = arr;
        }
        assert_eq!(net.message_count(), sizes.len() as u64);
    });
}

/// Whole simulated runs are a pure function of their inputs, for any
/// load script.
#[test]
fn runs_are_deterministic_under_random_scripts() {
    check("runs_are_deterministic", |rng| {
        let changes = rng.vec_in(0, 6, |r| {
            (r.range_usize(0, 3), r.range_u64(1, 50), r.range_u32(0, 4))
        });
        let work = rng.range_f64(1.0e3, 1.0e5);
        let mk = || {
            let mut script = LoadScript::dedicated();
            for &(node, at_ms, ncp) in &changes {
                script = script.at_time(node, SimTime::from_millis(at_ms), ncp);
            }
            let c = Cluster::homogeneous(3, NodeSpec::with_speed(1e6)).with_script(script);
            let out = c.run_spmd(move |ctx| {
                let me = ctx.rank();
                let next = (me + 1) % 3;
                let prev = (me + 2) % 3;
                for i in 0..10u64 {
                    ctx.advance(work);
                    ctx.send(next, 1, vec![me as u8, i as u8]);
                    let _ = ctx.recv(prev, 1);
                }
                ctx.now()
            });
            (out.results, out.report.finish_time, out.report.net_bytes)
        };
        assert_eq!(mk(), mk());
    });
}

/// CPU accounting is conserved: exact cpu time equals requested work
/// over speed, independent of interleaved blocking.
#[test]
fn cpu_accounting_is_exact() {
    check("cpu_accounting_is_exact", |rng| {
        let bursts = rng.vec_in(1, 20, |r| r.range_f64(10.0, 5_000.0));
        let ncp = rng.range_u32(0, 3);
        let total: f64 = bursts.iter().sum();
        let script = LoadScript::dedicated().at_time(0, SimTime::ZERO, ncp);
        let c = Cluster::homogeneous(2, NodeSpec::with_speed(1e6)).with_script(script);
        let bursts2 = bursts.clone();
        let out = c.run_spmd(move |ctx| {
            if ctx.rank() == 0 {
                for (i, w) in bursts2.iter().enumerate() {
                    ctx.advance(*w);
                    ctx.send(1, 7, vec![i as u8]);
                    let _ = ctx.recv(1, 8);
                }
            } else {
                for (i, _) in bursts2.iter().enumerate() {
                    let _ = ctx.recv(0, 7);
                    ctx.send(0, 8, vec![i as u8]);
                }
            }
            ctx.cpu_time_exact().as_secs_f64()
        });
        // Rank 0's CPU = bursts plus per-message send/recv CPU costs.
        let n_msgs = bursts.len() as f64;
        let msg_cpu = n_msgs * (2.0 * 2_000.0 + 0.25 * 2.0) / 1e6;
        let expect = total / 1e6 + msg_cpu;
        assert!(
            (out.results[0] - expect).abs() < 1e-3,
            "cpu {} vs {}",
            out.results[0],
            expect
        );
    });
}
