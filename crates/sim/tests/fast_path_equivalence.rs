//! Stepped ↔ fast-forward equivalence: the two CPU advance modes must be
//! indistinguishable in every virtual-time output.
//!
//! The fast path (closed-form multi-round fast-forward + turn-handoff
//! bypass) exists purely to make the simulator cheaper to *execute*; the
//! `DYNMPI_SIM_STEPPED=1` switch forces the per-slice reference path so
//! these tests can assert bit-identical `SimReport`s — finish times, exact
//! CPU accounting, traffic counters — on loaded heterogeneous runs.

use dynmpi_sim::{Cluster, LoadScript, NodeSpec, SimDur, SimOutcome, SimTime};
use dynmpi_testkit::{check_n, Rng};

/// Runs `f` under both advance modes — and, for each mode, sharded across
/// 2 and 8 engine shards — and asserts every virtual-time output matches
/// bit for bit. Returns the fast-mode single-shard outcome.
fn assert_equivalent<R, F>(mk: impl Fn() -> Cluster, f: F) -> SimOutcome<R>
where
    R: Send + PartialEq + std::fmt::Debug + Default,
    F: Fn(&dynmpi_sim::SimCtx) -> R + Send + Sync + Copy,
{
    let stepped = mk().with_stepped(true).run_spmd(f);
    let fast = mk().with_stepped(false).run_spmd(f);
    assert_eq!(stepped.results, fast.results, "per-rank results diverged");
    assert_eq!(
        stepped.report.virtual_outputs(),
        fast.report.virtual_outputs(),
        "SimReport virtual outputs diverged"
    );
    assert!(
        fast.report.engine_events <= stepped.report.engine_events,
        "fast path pushed more events ({}) than stepped ({})",
        fast.report.engine_events,
        stepped.report.engine_events
    );
    // Sharding is a pure wall-clock knob: it must commute with the mode
    // switch (cost counters like engine_events legitimately differ, so
    // the sharded arms compare `virtual_outputs`).
    for shards in [2usize, 8] {
        for (mode, reference) in [(true, &stepped), (false, &fast)] {
            let sharded = mk().with_stepped(mode).with_shards(shards).run_spmd(f);
            assert_eq!(
                reference.results, sharded.results,
                "per-rank results diverged at shards={shards} stepped={mode}"
            );
            assert_eq!(
                reference.report.virtual_outputs(),
                sharded.report.virtual_outputs(),
                "SimReport diverged at shards={shards} stepped={mode}"
            );
        }
    }
    fast
}

#[test]
fn loaded_heterogeneous_compute_is_bit_identical() {
    // Three node speeds, staggered load arrivals up to ncp=3, long compute
    // phases spanning many scheduler rounds — the fast path's home turf.
    let mk = || {
        let script = LoadScript::dedicated()
            .at_time(0, SimTime::from_millis(40), 2)
            .at_time(1, SimTime::from_millis(75), 3)
            .at_time(1, SimTime::from_millis(900), 1)
            .at_time(2, SimTime::from_millis(333), 1);
        Cluster::heterogeneous(vec![
            NodeSpec::with_speed(1e6),
            NodeSpec::with_speed(6e5),
            NodeSpec::with_speed(2.5e6),
        ])
        .with_script(script)
    };
    let out = assert_equivalent(mk, |ctx| {
        ctx.advance(2e5 * (1.0 + ctx.rank() as f64));
        ctx.now()
    });
    assert!(out.report.finish_time > SimTime::from_millis(500));
}

#[test]
fn message_passing_under_load_is_bit_identical() {
    // Ring exchange with compute between hops: exercises the bypass, the
    // blocked-recv wake path, reentry boosts, and the mailbox index under
    // changing load.
    let mk = || {
        let script = LoadScript::dedicated()
            .at_time(0, SimTime::from_millis(20), 1)
            .at_time(2, SimTime::from_millis(55), 3)
            .at_time(3, SimTime::from_millis(10), 2)
            .at_time(3, SimTime::from_millis(400), 0);
        Cluster::homogeneous(4, NodeSpec::with_speed(1e6)).with_script(script)
    };
    let out = assert_equivalent(mk, |ctx| {
        let r = ctx.rank();
        let n = ctx.nprocs();
        for i in 0..12 {
            ctx.advance(3e4 + (r as f64) * 1e3);
            ctx.send((r + 1) % n, 1, vec![(r * 16 + i) as u8; 256]);
            let _ = ctx.recv((r + n - 1) % n, 1);
        }
        (ctx.now(), ctx.cpu_time_exact())
    });
    assert_eq!(out.report.net_messages, 48);
}

#[test]
fn cycle_triggered_load_and_sleep_are_bit_identical() {
    // Own-node oracle reads are exact everywhere; remote load is observed
    // through the monitor's delayed sample (`dmpi_ps`), the one remote
    // view that is well-defined under sharded execution.
    let mk = || {
        let script = LoadScript::dedicated().at_cycle(1, 3, 2).at_cycle(0, 5, 1);
        Cluster::homogeneous(2, NodeSpec::with_speed(2e6)).with_script(script)
    };
    assert_equivalent(mk, |ctx| {
        let r = ctx.rank();
        let mut ncps = Vec::new();
        for _ in 0..8 {
            ctx.advance(5e4);
            ctx.sleep(SimDur::from_millis(3));
            ctx.phase_cycle_completed();
            ncps.push((ctx.true_ncp(r), ctx.dmpi_ps(1 - r), ctx.now()));
        }
        ncps
    });
}

#[test]
fn node_arrival_is_bit_identical() {
    // A scripted arrival (extra rank, cold start, slower NIC) plus a load
    // spike on a seed node: the arrival rank polls `node_online`, sleeps
    // through its cold start, then joins a ring exchange. Both engines
    // must agree on every clock, CPU reading, and online transition.
    let mk = || {
        let script = LoadScript::dedicated()
            .at_time(0, SimTime::from_millis(30), 2)
            .node_arrival_with_nic(
                SimTime::from_millis(50),
                NodeSpec::with_speed(8e5),
                SimDur::from_millis(25),
                6.25e6,
            );
        Cluster::homogeneous(2, NodeSpec::with_speed(1e6)).with_script(script)
    };
    let out = assert_equivalent(mk, |ctx| {
        let r = ctx.rank();
        let mut log = Vec::new();
        if r == 2 {
            // The newcomer: wait out the cold start in virtual time.
            while !ctx.node_online(2) {
                ctx.sleep(SimDur::from_millis(5));
            }
            log.push((ctx.now(), ctx.dmpi_ps(2)));
        }
        for i in 0..6u8 {
            ctx.advance(2e4 + r as f64 * 1e3);
            ctx.send((r + 1) % 3, 7, vec![i; 128 * (r + 1)]);
            let _ = ctx.recv((r + 2) % 3, 7);
            log.push((ctx.now(), ctx.cpu_time_exact().0 as u32));
        }
        log
    });
    assert_eq!(out.results.len(), 3, "arrival allocates a third rank");
    // The newcomer came online exactly at arrival + cold start.
    assert!(out.results[2][0].0 >= SimTime::from_millis(75));
}

#[test]
fn recv_any_fan_in_is_bit_identical() {
    let mk = || {
        let script = LoadScript::dedicated().at_time(0, SimTime::from_millis(5), 2);
        Cluster::homogeneous(5, NodeSpec::with_speed(1e6)).with_script(script)
    };
    assert_equivalent(mk, |ctx| {
        if ctx.rank() == 0 {
            let mut got = Vec::new();
            for _ in 0..8 {
                let (src, msg) = ctx.recv_any(9);
                got.push((src, msg.len(), ctx.now()));
            }
            got
        } else {
            for i in 0..2 {
                ctx.advance(1e4 * ctx.rank() as f64);
                ctx.send(0, 9, vec![0u8; 100 * ctx.rank() + i]);
            }
            Vec::new()
        }
    });
}

#[test]
fn random_programs_are_bit_identical() {
    // Property sweep: random speeds, load timelines, and work sizes. Each
    // case builds one cluster config and a deterministic per-rank program,
    // then demands stepped == fast on every output.
    check_n("stepped_vs_fast_random", 12, |rng: &mut Rng| {
        let n = rng.range_usize(2, 5);
        let speeds: Vec<f64> = (0..n).map(|_| rng.range_f64(3e5, 3e6)).collect();
        let mut script = LoadScript::dedicated();
        for node in 0..n {
            for _ in 0..rng.range_u64(0, 4) {
                script = script.at_time(
                    node,
                    SimTime::from_micros(rng.range_u64(1, 300_000)),
                    rng.range_u32(0, 4),
                );
            }
        }
        let works: Vec<f64> = (0..n).map(|_| rng.range_f64(1e4, 3e5)).collect();
        let rounds = rng.range_u64(1, 5);
        let mk = || {
            Cluster::heterogeneous(speeds.iter().map(|&s| NodeSpec::with_speed(s)).collect())
                .with_script(script.clone())
        };
        let works = &works;
        let run = |stepped: bool| {
            mk().with_stepped(stepped).run_spmd(|ctx| {
                let r = ctx.rank();
                for _ in 0..rounds {
                    ctx.advance(works[r]);
                    ctx.send((r + 1) % n, 3, vec![r as u8; 64]);
                    let _ = ctx.recv((r + n - 1) % n, 3);
                }
                (ctx.now(), ctx.cpu_time_exact())
            })
        };
        let stepped = run(true);
        let fast = run(false);
        assert_eq!(stepped.results, fast.results);
        assert_eq!(
            stepped.report.virtual_outputs(),
            fast.report.virtual_outputs()
        );
        // One sharded arm per random case: a random shard count must
        // reproduce the single-shard run exactly.
        let shards = rng.range_usize(2, 9);
        let sharded = mk()
            .with_stepped(false)
            .with_shards(shards)
            .run_spmd(|ctx| {
                let r = ctx.rank();
                for _ in 0..rounds {
                    ctx.advance(works[r]);
                    ctx.send((r + 1) % n, 3, vec![r as u8; 64]);
                    let _ = ctx.recv((r + n - 1) % n, 3);
                }
                (ctx.now(), ctx.cpu_time_exact())
            });
        assert_eq!(fast.results, sharded.results, "shards={shards} diverged");
        assert_eq!(
            fast.report.virtual_outputs(),
            sharded.report.virtual_outputs()
        );
    });
}

#[test]
fn env_switch_selects_stepped_mode() {
    // `DYNMPI_SIM_STEPPED=1` must force the reference path when no
    // programmatic override is given. Spawn-free check: set the var,
    // run, and verify the event count matches an explicit stepped run.
    // (Serial: no other test in this binary touches the variable.)
    let mk = || {
        let script = LoadScript::dedicated().at_time(0, SimTime::ZERO, 3);
        Cluster::homogeneous(1, NodeSpec::with_speed(1e6)).with_script(script)
    };
    let f = |ctx: &dynmpi_sim::SimCtx| {
        ctx.advance(1e6);
        ctx.now()
    };
    let stepped = mk().with_stepped(true).run_spmd(f);
    std::env::set_var("DYNMPI_SIM_STEPPED", "1");
    let via_env = mk().run_spmd(f);
    std::env::remove_var("DYNMPI_SIM_STEPPED");
    let fast = mk().run_spmd(f);
    assert_eq!(via_env.report.engine_events, stepped.report.engine_events);
    assert!(
        fast.report.engine_events * 5 <= stepped.report.engine_events,
        "fast mode must push >=5x fewer events ({} vs {})",
        fast.report.engine_events,
        stepped.report.engine_events
    );
    assert_eq!(
        via_env.report.virtual_outputs(),
        fast.report.virtual_outputs()
    );
}
