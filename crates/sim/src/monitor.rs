//! Load monitors: the `dmpi_ps` daemon model and the faulty `vmstat` model.
//!
//! §4.2 of the paper: a per-node daemon samples process states once per
//! second. `vmstat`-style sampling counts only processes on the run queue at
//! the sample instant, so an application blocked at a receive is *missed*.
//! The paper's `dmpi_ps` counts running-or-ready processes **and always
//! includes the monitored application**, which is the reliable signal the
//! Dyn-MPI runtime needs. Both are modeled here so the difference can be
//! measured (ablation bench).

use crate::time::SimTime;
use crate::timeline::NcpTimeline;

/// History of intervals during which a node's application was blocked
/// (waiting for a message), used to evaluate `vmstat` samples lazily.
#[derive(Clone, Debug, Default)]
pub struct BlockHistory {
    /// Closed intervals `[start, end)`, non-overlapping, sorted.
    intervals: Vec<(SimTime, SimTime)>,
    /// Start of the currently open blocked interval, if the application is
    /// blocked right now.
    open: Option<SimTime>,
}

impl BlockHistory {
    pub fn new() -> Self {
        BlockHistory::default()
    }

    /// Records that the application blocked at `t`.
    pub fn block(&mut self, t: SimTime) {
        debug_assert!(self.open.is_none(), "nested block");
        self.open = Some(t);
    }

    /// Records that the application resumed at `t`.
    pub fn unblock(&mut self, t: SimTime) {
        let start = self.open.take().expect("unblock without block");
        debug_assert!(t >= start);
        if t > start {
            self.intervals.push((start, t));
        }
    }

    /// Was the application blocked at instant `t`?
    pub fn blocked_at(&self, t: SimTime) -> bool {
        if let Some(start) = self.open {
            if t >= start {
                return true;
            }
        }
        let i = self.intervals.partition_point(|&(s, _)| s <= t);
        i > 0 && t < self.intervals[i - 1].1
    }

    /// Fraction of `[from, to)` spent blocked (diagnostics).
    pub fn blocked_fraction(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut blocked = 0u64;
        for &(s, e) in &self.intervals {
            let lo = s.max(from);
            let hi = e.min(to);
            if hi > lo {
                blocked += (hi - lo).0;
            }
        }
        if let Some(s) = self.open {
            let lo = s.max(from);
            if to > lo {
                blocked += (to - lo).0;
            }
        }
        blocked as f64 / (to - from).0 as f64
    }
}

/// The publication instant a reader at virtual time `t` observes for a
/// monitor whose reports take `lag` to propagate: the start of the second
/// containing `t - lag` (saturating at 0). A rank reading its own node's
/// monitor passes `lag = 0`; a rank reading a *remote* node's monitor
/// passes one network latency — which also makes remote readings a pure
/// function of state at least one lookahead window old, so the sharded
/// engine can serve them from the shared monitor board without races.
pub fn monitor_sample_time(t: SimTime, lag: crate::time::SimDur) -> SimTime {
    SimTime(t.0.saturating_sub(lag.0)).floor_to_second()
}

/// A `dmpi_ps` daemon reading: running-or-ready process count on the node,
/// always including the monitored application. The daemon publishes once per
/// virtual second, so readers see the state as of the containing second's
/// start.
pub fn dmpi_ps_reading(timeline: &NcpTimeline, t: SimTime) -> u32 {
    dmpi_ps_reading_at(timeline, t.floor_to_second())
}

/// [`dmpi_ps_reading`] at an explicit (already-floored) sample instant,
/// e.g. one from [`monitor_sample_time`].
pub fn dmpi_ps_reading_at(timeline: &NcpTimeline, sample: SimTime) -> u32 {
    timeline.at(sample) + 1
}

/// A `vmstat`-style reading: processes on the run queue at the sample
/// instant. The application is counted only if it was runnable then —
/// blocked-at-receive applications disappear, which is exactly the
/// unreliability §4.2 reports.
pub fn vmstat_reading(timeline: &NcpTimeline, blocks: &BlockHistory, t: SimTime) -> u32 {
    vmstat_reading_at(timeline, blocks, t.floor_to_second())
}

/// [`vmstat_reading`] at an explicit (already-floored) sample instant.
pub fn vmstat_reading_at(timeline: &NcpTimeline, blocks: &BlockHistory, sample: SimTime) -> u32 {
    let app = u32::from(!blocks.blocked_at(sample));
    timeline.at(sample) + app
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn block_history_intervals() {
        let mut h = BlockHistory::new();
        h.block(ms(100));
        h.unblock(ms(200));
        h.block(ms(300));
        h.unblock(ms(450));
        assert!(!h.blocked_at(ms(50)));
        assert!(h.blocked_at(ms(100)));
        assert!(h.blocked_at(ms(199)));
        assert!(!h.blocked_at(ms(200)));
        assert!(h.blocked_at(ms(400)));
        assert!(!h.blocked_at(ms(450)));
    }

    #[test]
    fn open_interval_counts_as_blocked() {
        let mut h = BlockHistory::new();
        h.block(ms(500));
        assert!(h.blocked_at(ms(500)));
        assert!(h.blocked_at(ms(10_000)));
        assert!(!h.blocked_at(ms(499)));
    }

    #[test]
    fn zero_length_block_is_dropped() {
        let mut h = BlockHistory::new();
        h.block(ms(10));
        h.unblock(ms(10));
        assert!(!h.blocked_at(ms(10)));
    }

    #[test]
    fn blocked_fraction() {
        let mut h = BlockHistory::new();
        h.block(ms(0));
        h.unblock(ms(250));
        h.block(ms(500));
        h.unblock(ms(750));
        let f = h.blocked_fraction(SimTime::ZERO, ms(1000));
        assert!((f - 0.5).abs() < 1e-9, "{f}");
        assert_eq!(h.blocked_fraction(ms(10), ms(10)), 0.0);
    }

    #[test]
    fn sample_time_lags_then_floors() {
        use crate::time::SimDur;
        let lag = SimDur::from_micros(100);
        // 5.000050s - 100µs = 4.99995s → floors to 4s, not 5s: a reader
        // right after a second boundary still sees the previous second.
        assert_eq!(
            monitor_sample_time(SimTime::from_micros(5_000_050), lag),
            SimTime::from_secs(4)
        );
        assert_eq!(
            monitor_sample_time(SimTime::from_millis(5_500), lag),
            SimTime::from_secs(5)
        );
        // Saturates at the epoch instead of underflowing.
        assert_eq!(
            monitor_sample_time(SimTime::from_micros(50), lag),
            SimTime::ZERO
        );
        assert_eq!(
            monitor_sample_time(SimTime::from_secs(3), SimDur::ZERO),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn dmpi_ps_always_counts_the_app() {
        let mut tl = NcpTimeline::new();
        tl.set(SimTime::from_secs(5), 2);
        assert_eq!(dmpi_ps_reading(&tl, SimTime::from_secs(1)), 1);
        assert_eq!(dmpi_ps_reading(&tl, SimTime::from_secs(5)), 3);
        // Sub-second times read the sample from the second's start.
        assert_eq!(dmpi_ps_reading(&tl, SimTime::from_millis(5_900)), 3);
        assert_eq!(dmpi_ps_reading(&tl, SimTime::from_millis(4_999)), 1);
    }

    #[test]
    fn vmstat_misses_blocked_app() {
        let mut tl = NcpTimeline::new();
        tl.set(SimTime::from_secs(2), 1);
        let mut h = BlockHistory::new();
        // App blocked across the t=3s sample.
        h.block(SimTime::from_millis(2_900));
        h.unblock(SimTime::from_millis(3_100));
        assert_eq!(vmstat_reading(&tl, &h, SimTime::from_secs(3)), 1); // missed!
        assert_eq!(dmpi_ps_reading(&tl, SimTime::from_secs(3)), 2); // correct
                                                                    // When the app is runnable at the sample, both agree.
        assert_eq!(vmstat_reading(&tl, &h, SimTime::from_secs(4)), 2);
    }
}
