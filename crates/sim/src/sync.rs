//! Minimal `parking_lot`-shaped wrappers over `std::sync`.
//!
//! The engine only needs `lock()` without a poison `Result` and a condvar
//! that waits on the guard in place. Poisoned locks are unrecoverable here —
//! a panicking sim thread already poisons the engine through
//! `Shared::poison` — so lock poisoning is deliberately ignored.

pub(crate) use std::sync::MutexGuard;

/// Mutex whose `lock()` returns the guard directly, ignoring poison.
#[derive(Debug, Default)]
pub(crate) struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Condvar whose `wait` re-acquires into the same guard binding.
#[derive(Debug, Default)]
pub(crate) struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Move the guard out for the std API, then put the re-acquired one
        // back. `replace` needs a placeholder; use the returned guard.
        take_mut(guard, |g| {
            self.0
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        });
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replace `*slot` with `f(*slot)`. Aborts the process if `f` panics while
/// the slot is temporarily vacated (cannot happen for `Condvar::wait`, which
/// only forwards to std).
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}
