//! Virtual time primitives.
//!
//! The simulator measures time in integer nanoseconds since the start of the
//! simulation. Integer time keeps event ordering exact and platform
//! independent, which is what makes whole-cluster runs bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds, saturating at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Builds an instant from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed span since `earlier`; zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The start of the whole virtual second containing this instant.
    ///
    /// Monitor daemons publish a new sample once per second, so readers see
    /// the state as of the containing second's start.
    pub fn floor_to_second(self) -> SimTime {
        SimTime(self.0 - self.0 % 1_000_000_000)
    }
}

impl SimDur {
    /// The empty span.
    pub const ZERO: SimDur = SimDur(0);

    /// Builds a span from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDur(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, saturating at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDur((s.max(0.0) * 1e9).round() as u64)
    }

    /// Builds a span from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDur(ms * 1_000_000)
    }

    /// Builds a span from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDur(us * 1_000)
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Integer division rounding down: how many `unit`s fit in this span.
    pub fn div_floor(self, unit: SimDur) -> u64 {
        assert!(unit.0 > 0, "division by zero-length span");
        self.0 / unit.0
    }

    /// Truncates this span down to a whole multiple of `unit`.
    ///
    /// Models clocks with limited granularity, e.g. `/proc` CPU accounting
    /// readable only in 10 ms ticks.
    pub fn quantize(self, unit: SimDur) -> SimDur {
        if unit.0 == 0 {
            return self;
        }
        SimDur(self.0 - self.0 % unit.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }

    /// Scales the span by a non-negative factor, rounding to nearest ns.
    pub fn mul_f64(self, f: f64) -> SimDur {
        assert!(f >= 0.0, "negative scale factor");
        SimDur((self.0 as f64 * f).round() as u64)
    }

    /// Minimum of two spans.
    pub fn min(self, other: SimDur) -> SimDur {
        SimDur(self.0.min(other.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        assert!(self >= rhs, "time went backwards: {self:?} - {rhs:?}");
        SimDur(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        assert!(self >= rhs, "negative duration: {self:?} - {rhs:?}");
        SimDur(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).0, 3_000_000_000);
        assert_eq!(SimTime::from_millis(10).0, 10_000_000);
        assert_eq!(SimTime::from_micros(7).0, 7_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_secs_f64(), 1.5);
        assert_eq!(SimDur::from_secs_f64(0.25).as_secs_f64(), 0.25);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDur::from_millis(500);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        let mut d = SimDur::from_millis(1);
        d += SimDur::from_millis(2);
        assert_eq!(d, SimDur::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_elapsed_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(2)),
            SimDur::ZERO
        );
        assert_eq!(
            SimTime::from_secs(2).since(SimTime::from_secs(1)),
            SimDur::from_secs(1)
        );
    }

    #[test]
    fn quantize_models_proc_granularity() {
        let tick = SimDur::from_millis(10);
        assert_eq!(
            SimDur::from_millis(37).quantize(tick),
            SimDur::from_millis(30)
        );
        assert_eq!(SimDur::from_millis(9).quantize(tick), SimDur::ZERO);
        assert_eq!(
            SimDur::from_millis(40).quantize(tick),
            SimDur::from_millis(40)
        );
        // Zero tick means exact reading.
        assert_eq!(SimDur(123).quantize(SimDur::ZERO), SimDur(123));
    }

    #[test]
    fn floor_to_second() {
        let t = SimTime::from_millis(2750);
        assert_eq!(t.floor_to_second(), SimTime::from_secs(2));
        assert_eq!(
            SimTime::from_secs(3).floor_to_second(),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", SimDur::from_micros(12)), "12.0us");
        assert_eq!(format!("{}", SimDur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDur::from_secs(2)), "2.000s");
    }
}
