//! End-of-run statistics.

use crate::time::{SimDur, SimTime};

/// Per-rank statistics collected by the engine.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcReport {
    pub node: usize,
    /// Exact CPU time consumed.
    pub cpu_time: SimDur,
    /// Virtual time at which the rank's program returned.
    pub finish_time: SimTime,
    pub msgs_sent: u64,
    pub msgs_recvd: u64,
    pub bytes_sent: u64,
    pub bytes_recvd: u64,
    /// Fraction of the rank's lifetime spent blocked at receives.
    pub blocked_fraction: f64,
    /// True when the rank was killed by a scripted fail-stop crash:
    /// `finish_time` is then its death time and its result slot holds the
    /// default value.
    pub crashed: bool,
}

/// Whole-run statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Virtual time when the last rank finished — the job's makespan.
    pub finish_time: SimTime,
    pub procs: Vec<ProcReport>,
    pub net_messages: u64,
    pub net_bytes: u64,
    /// Events pushed onto the engine's heap over the run. An execution-cost
    /// metric, not a virtual-time output: it differs between the stepped
    /// and fast-forward CPU modes even though every timestamp agrees.
    pub engine_events: u64,
    /// Turn handoffs elided by the same-rank continuation bypass (also an
    /// execution-cost metric).
    pub turn_bypasses: u64,
}

impl SimReport {
    /// This report with the execution-cost metrics zeroed, leaving only
    /// virtual-time outputs — the form the stepped/fast-forward
    /// equivalence suite compares bit for bit.
    pub fn virtual_outputs(&self) -> SimReport {
        SimReport {
            engine_events: 0,
            turn_bypasses: 0,
            ..self.clone()
        }
    }

    /// Aggregate CPU time across ranks.
    pub fn total_cpu(&self) -> SimDur {
        let ns = self.procs.iter().map(|p| p.cpu_time.0).sum();
        SimDur(ns)
    }

    /// Mean CPU utilization across ranks: CPU time / makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.finish_time == SimTime::ZERO || self.procs.is_empty() {
            return 0.0;
        }
        let wall = self.finish_time.as_secs_f64();
        self.procs
            .iter()
            .map(|p| p.cpu_time.as_secs_f64() / wall)
            .sum::<f64>()
            / self.procs.len() as f64
    }
}

/// Results of a full simulated run: one value per rank plus the report.
#[derive(Clone, Debug)]
pub struct SimOutcome<R> {
    pub results: Vec<R>,
    pub report: SimReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let r = SimReport {
            finish_time: SimTime::from_secs(2),
            procs: vec![
                ProcReport {
                    node: 0,
                    cpu_time: SimDur::from_secs(2),
                    finish_time: SimTime::from_secs(2),
                    msgs_sent: 1,
                    msgs_recvd: 1,
                    bytes_sent: 8,
                    bytes_recvd: 8,
                    blocked_fraction: 0.0,
                    crashed: false,
                },
                ProcReport {
                    node: 1,
                    cpu_time: SimDur::from_secs(1),
                    finish_time: SimTime::from_secs(1),
                    msgs_sent: 0,
                    msgs_recvd: 0,
                    bytes_sent: 0,
                    bytes_recvd: 0,
                    blocked_fraction: 0.5,
                    crashed: false,
                },
            ],
            net_messages: 1,
            net_bytes: 8,
            engine_events: 0,
            turn_bypasses: 0,
        };
        assert_eq!(r.total_cpu(), SimDur::from_secs(3));
        assert!((r.mean_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_report_utilization_is_zero() {
        let r = SimReport {
            finish_time: SimTime::ZERO,
            procs: vec![],
            net_messages: 0,
            net_bytes: 0,
            engine_events: 0,
            turn_bypasses: 0,
        };
        assert_eq!(r.mean_utilization(), 0.0);
    }
}
