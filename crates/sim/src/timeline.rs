//! Piecewise-constant competing-process timelines.
//!
//! Each node carries a timeline of how many synthetic competing processes
//! (CPs) are runnable on it over virtual time. Pre-scripted changes are
//! seeded before the run; dynamic changes (e.g. "introduce a CP when this
//! node finishes its 10th phase cycle") append entries at the current time.

use crate::time::SimTime;

/// Number of competing processes on one node over time.
///
/// Invariant: `changes` is sorted by time; the value before the first entry
/// is 0. Later entries at an equal time override earlier ones.
#[derive(Clone, Debug, Default)]
pub struct NcpTimeline {
    changes: Vec<(SimTime, u32)>,
}

impl NcpTimeline {
    /// An initially unloaded node.
    pub fn new() -> Self {
        NcpTimeline::default()
    }

    /// Appends a change at `t`. `t` must not precede the last recorded
    /// change (timelines only grow forward).
    pub fn set(&mut self, t: SimTime, ncp: u32) {
        if let Some(&(last, v)) = self.changes.last() {
            assert!(t >= last, "timeline change out of order: {t:?} < {last:?}");
            if v == ncp {
                return; // no-op change; keep the timeline minimal
            }
            if last == t {
                // Same-instant override.
                self.changes.last_mut().unwrap().1 = ncp;
                return;
            }
        } else if ncp == 0 {
            return; // implicit initial value
        }
        self.changes.push((t, ncp));
    }

    /// The competing-process count in effect at instant `t`.
    pub fn at(&self, t: SimTime) -> u32 {
        match self.changes.partition_point(|&(ct, _)| ct <= t) {
            0 => 0,
            i => self.changes[i - 1].1,
        }
    }

    /// The next instant strictly after `t` at which the count changes,
    /// if any change is already recorded.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        let i = self.changes.partition_point(|&(ct, _)| ct <= t);
        self.changes.get(i).map(|&(ct, _)| ct)
    }

    /// All recorded change points (for reports and tests).
    pub fn changes(&self) -> &[(SimTime, u32)] {
        &self.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn empty_timeline_is_unloaded() {
        let tl = NcpTimeline::new();
        assert_eq!(tl.at(SimTime::ZERO), 0);
        assert_eq!(tl.at(s(100)), 0);
        assert_eq!(tl.next_change_after(SimTime::ZERO), None);
    }

    #[test]
    fn step_function_semantics() {
        let mut tl = NcpTimeline::new();
        tl.set(s(10), 1);
        tl.set(s(20), 3);
        tl.set(s(30), 0);
        assert_eq!(tl.at(s(9)), 0);
        assert_eq!(tl.at(s(10)), 1); // change takes effect at its instant
        assert_eq!(tl.at(s(19)), 1);
        assert_eq!(tl.at(s(20)), 3);
        assert_eq!(tl.at(s(29)), 3);
        assert_eq!(tl.at(s(30)), 0);
        assert_eq!(tl.at(s(1000)), 0);
    }

    #[test]
    fn next_change_lookup() {
        let mut tl = NcpTimeline::new();
        tl.set(s(10), 1);
        tl.set(s(20), 2);
        assert_eq!(tl.next_change_after(SimTime::ZERO), Some(s(10)));
        assert_eq!(tl.next_change_after(s(10)), Some(s(20)));
        assert_eq!(tl.next_change_after(s(20)), None);
    }

    #[test]
    fn same_instant_override_and_noop_dedup() {
        let mut tl = NcpTimeline::new();
        tl.set(s(5), 1);
        tl.set(s(5), 2);
        assert_eq!(tl.at(s(5)), 2);
        assert_eq!(tl.changes().len(), 1);
        tl.set(s(6), 2); // no-op
        assert_eq!(tl.changes().len(), 1);
        tl.set(SimTime::from_secs(7), 0);
        assert_eq!(tl.changes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_rejected() {
        let mut tl = NcpTimeline::new();
        tl.set(s(10), 1);
        tl.set(s(5), 2);
    }

    #[test]
    fn leading_zero_is_implicit() {
        let mut tl = NcpTimeline::new();
        tl.set(SimTime::ZERO, 0);
        assert!(tl.changes().is_empty());
    }
}
