//! Calendar (bucketed) event queue.
//!
//! The engine's pending events are heavily clustered in time: within one
//! lookahead window every runnable rank's next event falls inside a band
//! about one network latency wide. A classic binary heap pays O(log n)
//! per operation with poor locality at 1024+ ranks; this calendar queue
//! buckets events into fixed-width "days" keyed by `time / width`, so a
//! pop is "first bucket, last element" and a push is a short ordered
//! insert into one small bucket.
//!
//! Buckets are kept sorted **descending** by the engine's total dispatch
//! order `(time, pid, seq)`, so the minimum element of the earliest day is
//! a `Vec::pop` — O(1) with no shifting. Day lookup is a `BTreeMap` so the
//! structure stays fully deterministic (no hashing, no wall-clock-driven
//! resizing) and sparse multi-second sleeps cost nothing.

use std::collections::BTreeMap;

use crate::engine::Event;

#[derive(Debug)]
pub(crate) struct EventQueue {
    /// Bucket width in nanoseconds; tied to the network latency (the
    /// lookahead) by the caller so one window's events land in a handful
    /// of buckets.
    width: u64,
    /// `time.0 / width` → events sorted descending by `(time, pid, seq)`.
    /// Empty buckets are removed, so `days.first()` is always live.
    days: BTreeMap<u64, Vec<Event>>,
    len: usize,
}

impl EventQueue {
    pub fn new(width: u64) -> Self {
        EventQueue {
            width: width.max(1),
            days: BTreeMap::new(),
            len: 0,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.len
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn push(&mut self, ev: Event) {
        let day = ev.time.0 / self.width;
        let bucket = self.days.entry(day).or_default();
        let key = (ev.time, ev.pid, ev.seq);
        // Descending order: find the first element <= key and insert in
        // front of it. Appends (the common case: monotone pushes land at
        // the front of the descending bucket... i.e. position 0) and
        // clustered buckets stay short, so the memmove is cheap.
        let at = bucket.partition_point(|e| (e.time, e.pid, e.seq) > key);
        bucket.insert(at, ev);
        self.len += 1;
    }

    /// The earliest event by `(time, pid, seq)`.
    pub fn peek(&self) -> Option<&Event> {
        self.days.first_key_value().and_then(|(_, b)| b.last())
    }

    pub fn pop(&mut self) -> Option<Event> {
        let mut entry = self.days.first_entry()?;
        let ev = entry.get_mut().pop().expect("empty bucket left in queue");
        if entry.get().is_empty() {
            entry.remove();
        }
        self.len -= 1;
        Some(ev)
    }

    #[cfg(test)]
    pub fn clear(&mut self) {
        self.days.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::collections::BinaryHeap;

    fn ev(time_ns: u64, pid: usize, seq: u64) -> Event {
        Event {
            time: SimTime(time_ns),
            pid,
            seq,
            epoch: 0,
        }
    }

    #[test]
    fn pops_in_time_pid_seq_order() {
        let mut q = EventQueue::new(100_000);
        q.push(ev(5, 1, 3));
        q.push(ev(5, 0, 4));
        q.push(ev(5, 0, 2));
        q.push(ev(1, 7, 9));
        q.push(ev(1_000_000_000, 0, 1)); // far-future day
        let order: Vec<(u64, usize, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.0, e.pid, e.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (1, 7, 9),
                (5, 0, 2),
                (5, 0, 4),
                (5, 1, 3),
                (1_000_000_000, 0, 1)
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new(25_000);
        q.push(ev(30_000, 2, 1));
        q.push(ev(10, 5, 2));
        assert_eq!(q.peek().map(|e| e.pid), Some(5));
        assert_eq!(q.pop().map(|e| e.pid), Some(5));
        assert_eq!(q.peek().map(|e| e.pid), Some(2));
    }

    /// The calendar queue must agree with a `BinaryHeap` oracle on the
    /// exact pop order under `(ts, rank, seq)` ties — the dispatch-order
    /// contract the engine (and through it the profiler's merged trace
    /// ordering) relies on.
    #[test]
    fn matches_binary_heap_oracle() {
        dynmpi_testkit::check_n("equeue_vs_heap", 300, |rng| {
            // Tiny widths and coarse times force same-day and cross-day
            // collisions, including exact (time) and (time, pid) ties.
            let width = rng.range_u64(1, 50_000);
            let mut q = EventQueue::new(width);
            let mut oracle: BinaryHeap<Event> = BinaryHeap::new();
            let mut seq = 0u64;
            for _ in 0..rng.range_u64(0, 200) {
                if rng.chance(0.6) || oracle.is_empty() {
                    seq += 1;
                    let e = ev(
                        rng.range_u64(0, 20) * rng.range_u64(1, 30_000),
                        rng.range_usize(0, 8),
                        seq,
                    );
                    q.push(e);
                    oracle.push(e);
                } else {
                    assert_eq!(q.peek().copied(), oracle.peek().copied());
                    assert_eq!(q.pop(), oracle.pop());
                }
                assert_eq!(q.len(), oracle.len());
            }
            while let Some(e) = oracle.pop() {
                assert_eq!(q.pop(), Some(e));
            }
            assert!(q.is_empty());
        });
    }
}
