//! Load scripts: scheduled competing-process changes.
//!
//! The paper's experiments script load changes like "start one competing
//! process on node 0 at the 10th iteration" (§5.1) or "terminate the
//! competing process at the end of the second period" (§5.2). A
//! [`LoadScript`] expresses both time-based and phase-cycle-based triggers.

use crate::time::SimTime;

/// When a load change fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// At an absolute virtual time.
    AtTime(SimTime),
    /// When the target node's application completes its n-th phase cycle
    /// (1-based: `AtPhaseCycle(10)` fires at the end of cycle 10).
    AtPhaseCycle(u64),
}

/// One scripted change: set the competing-process count on a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadEvent {
    pub node: usize,
    pub trigger: Trigger,
    pub ncp: u32,
}

/// A full experiment load schedule.
#[derive(Clone, Debug, Default)]
pub struct LoadScript {
    events: Vec<LoadEvent>,
}

impl LoadScript {
    /// An empty script: all nodes stay dedicated.
    pub fn dedicated() -> Self {
        LoadScript::default()
    }

    /// Adds a time-triggered change.
    pub fn at_time(mut self, node: usize, t: SimTime, ncp: u32) -> Self {
        self.events.push(LoadEvent {
            node,
            trigger: Trigger::AtTime(t),
            ncp,
        });
        self
    }

    /// Adds a phase-cycle-triggered change.
    pub fn at_cycle(mut self, node: usize, cycle: u64, ncp: u32) -> Self {
        assert!(cycle > 0, "phase cycles are 1-based");
        self.events.push(LoadEvent {
            node,
            trigger: Trigger::AtPhaseCycle(cycle),
            ncp,
        });
        self
    }

    /// All events, in insertion order.
    pub fn events(&self) -> &[LoadEvent] {
        &self.events
    }

    /// Splits the script per node: `(time events, cycle events)`, each
    /// sorted by their trigger. Used by the cluster builder.
    #[allow(clippy::type_complexity)]
    pub fn split_for_node(&self, node: usize) -> (Vec<(SimTime, u32)>, Vec<(u64, u32)>) {
        let mut times = Vec::new();
        let mut cycles = Vec::new();
        for e in &self.events {
            if e.node != node {
                continue;
            }
            match e.trigger {
                Trigger::AtTime(t) => times.push((t, e.ncp)),
                Trigger::AtPhaseCycle(c) => cycles.push((c, e.ncp)),
            }
        }
        times.sort_by_key(|&(t, _)| t);
        cycles.sort_by_key(|&(c, _)| c);
        (times, cycles)
    }

    /// True when the script never loads any node.
    pub fn is_dedicated(&self) -> bool {
        self.events.iter().all(|e| e.ncp == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_filters_and_sorts() {
        let s = LoadScript::dedicated()
            .at_cycle(1, 20, 0)
            .at_cycle(1, 10, 1)
            .at_time(0, SimTime::from_secs(5), 2)
            .at_time(0, SimTime::from_secs(1), 1)
            .at_cycle(2, 3, 1);
        let (t0, c0) = s.split_for_node(0);
        assert_eq!(
            t0,
            vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(5), 2)]
        );
        assert!(c0.is_empty());
        let (t1, c1) = s.split_for_node(1);
        assert!(t1.is_empty());
        assert_eq!(c1, vec![(10, 1), (20, 0)]);
        let (_, c2) = s.split_for_node(2);
        assert_eq!(c2, vec![(3, 1)]);
    }

    #[test]
    fn dedicated_detection() {
        assert!(LoadScript::dedicated().is_dedicated());
        assert!(LoadScript::dedicated().at_cycle(0, 5, 0).is_dedicated());
        assert!(!LoadScript::dedicated().at_cycle(0, 5, 1).is_dedicated());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn cycle_zero_rejected() {
        let _ = LoadScript::dedicated().at_cycle(0, 0, 1);
    }
}
