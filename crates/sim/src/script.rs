//! Load scripts: scheduled competing-process changes.
//!
//! The paper's experiments script load changes like "start one competing
//! process on node 0 at the 10th iteration" (§5.1) or "terminate the
//! competing process at the end of the second period" (§5.2). A
//! [`LoadScript`] expresses both time-based and phase-cycle-based triggers.

use crate::params::NodeSpec;
use crate::time::{SimDur, SimTime};

/// When a load change fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// At an absolute virtual time.
    AtTime(SimTime),
    /// When the target node's application completes its n-th phase cycle
    /// (1-based: `AtPhaseCycle(10)` fires at the end of cycle 10).
    AtPhaseCycle(u64),
}

/// One scripted change: set the competing-process count on a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadEvent {
    pub node: usize,
    pub trigger: Trigger,
    pub ncp: u32,
}

/// A scripted node arrival: a brand-new node (with its own hardware
/// description) comes online mid-run — the malleability counterpart of the
/// paper's node *removal*. The cluster allocates one extra rank per
/// arrival, numbered after the seed nodes in script order; the node's
/// monitors read as offline (`dmpi_ps` = 0) until `at + cold_start`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeArrival {
    /// Virtual time the node is requested (e.g. the spot instance is won).
    pub at: SimTime,
    /// Hardware of the arriving node.
    pub spec: NodeSpec,
    /// Boot/provisioning delay: the node is online at `at + cold_start`.
    pub cold_start: SimDur,
    /// NIC bandwidth of the arriving node in bytes/s (`None` = the
    /// cluster-wide [`crate::NetParams::bandwidth`]).
    pub nic_bandwidth: Option<f64>,
}

impl NodeArrival {
    /// Virtual time the node's monitors start reporting it as online.
    pub fn online_at(&self) -> SimTime {
        self.at + self.cold_start
    }
}

/// How a scripted crash manifests (both kill the node's NIC; the kinds
/// differ in what happens to the local process).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// The node halts: its ranks stop executing at the crash time and its
    /// monitors go silent.
    FailStop,
    /// The node is cut off the network but keeps running: its ranks
    /// continue locally (and can observe their own timeouts), but no
    /// message crosses its NIC and remote monitor reads go silent.
    Partition,
}

/// A scripted fail-stop or partition fault on a virtual node.
///
/// Crash triggers are *absolute virtual times* (never phase cycles): the
/// sharded engine must decide "is this NIC dead at arrival `t`?" for
/// envelopes crossing shard boundaries before the crashing shard has
/// executed up to `t`, which only a statically known crash time allows —
/// the same reason arrivals are time-based. To crash *during* a
/// redistribution, aim the time inside the redistribution window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeCrash {
    pub at: SimTime,
    pub node: usize,
    pub kind: CrashKind,
}

/// A full experiment load schedule.
#[derive(Clone, Debug, Default)]
pub struct LoadScript {
    events: Vec<LoadEvent>,
    arrivals: Vec<NodeArrival>,
    crashes: Vec<NodeCrash>,
}

impl LoadScript {
    /// An empty script: all nodes stay dedicated.
    pub fn dedicated() -> Self {
        LoadScript::default()
    }

    /// Adds a time-triggered change.
    pub fn at_time(mut self, node: usize, t: SimTime, ncp: u32) -> Self {
        self.events.push(LoadEvent {
            node,
            trigger: Trigger::AtTime(t),
            ncp,
        });
        self
    }

    /// Adds a phase-cycle-triggered change.
    pub fn at_cycle(mut self, node: usize, cycle: u64, ncp: u32) -> Self {
        assert!(cycle > 0, "phase cycles are 1-based");
        self.events.push(LoadEvent {
            node,
            trigger: Trigger::AtPhaseCycle(cycle),
            ncp,
        });
        self
    }

    /// Adds a node arrival. The arriving node gets the next rank after the
    /// seed nodes (in arrival insertion order) and reads as offline until
    /// `at + cold_start`.
    pub fn node_arrival(mut self, at: SimTime, spec: NodeSpec, cold_start: SimDur) -> Self {
        self.arrivals.push(NodeArrival {
            at,
            spec,
            cold_start,
            nic_bandwidth: None,
        });
        self
    }

    /// Adds a node arrival with an explicit NIC bandwidth (bytes/s).
    pub fn node_arrival_with_nic(
        mut self,
        at: SimTime,
        spec: NodeSpec,
        cold_start: SimDur,
        nic_bandwidth: f64,
    ) -> Self {
        assert!(nic_bandwidth > 0.0, "NIC bandwidth must be positive");
        self.arrivals.push(NodeArrival {
            at,
            spec,
            cold_start,
            nic_bandwidth: Some(nic_bandwidth),
        });
        self
    }

    /// Schedules a fail-stop crash: node `node` halts at virtual time
    /// `at`. Its ranks stop executing at the next operation boundary, all
    /// in-flight and future messages from/to the node are dropped, and
    /// remote monitor reads of it return 0.
    pub fn node_crash(mut self, at: SimTime, node: usize) -> Self {
        assert!(
            !self.crashes.iter().any(|c| c.node == node),
            "node {node} already has a scripted crash"
        );
        self.crashes.push(NodeCrash {
            at,
            node,
            kind: CrashKind::FailStop,
        });
        self
    }

    /// Schedules a network partition: node `node` is cut off the network
    /// at `at` but its ranks keep running locally. Survivors observe
    /// exactly the same silence as a fail-stop crash.
    pub fn node_partition(mut self, at: SimTime, node: usize) -> Self {
        assert!(
            !self.crashes.iter().any(|c| c.node == node),
            "node {node} already has a scripted crash"
        );
        self.crashes.push(NodeCrash {
            at,
            node,
            kind: CrashKind::Partition,
        });
        self
    }

    /// Scripted crashes, in insertion order.
    pub fn crashes(&self) -> &[NodeCrash] {
        &self.crashes
    }

    /// The scripted crash of `node`, if any.
    pub fn crash_of(&self, node: usize) -> Option<NodeCrash> {
        self.crashes.iter().find(|c| c.node == node).copied()
    }

    /// All events, in insertion order.
    pub fn events(&self) -> &[LoadEvent] {
        &self.events
    }

    /// Scripted node arrivals, in insertion order (= rank order after the
    /// seed nodes).
    pub fn arrivals(&self) -> &[NodeArrival] {
        &self.arrivals
    }

    /// Splits the script per node: `(time events, cycle events)`, each
    /// sorted by their trigger. Used by the cluster builder.
    #[allow(clippy::type_complexity)]
    pub fn split_for_node(&self, node: usize) -> (Vec<(SimTime, u32)>, Vec<(u64, u32)>) {
        let mut times = Vec::new();
        let mut cycles = Vec::new();
        for e in &self.events {
            if e.node != node {
                continue;
            }
            match e.trigger {
                Trigger::AtTime(t) => times.push((t, e.ncp)),
                Trigger::AtPhaseCycle(c) => cycles.push((c, e.ncp)),
            }
        }
        times.sort_by_key(|&(t, _)| t);
        cycles.sort_by_key(|&(c, _)| c);
        (times, cycles)
    }

    /// True when the script never loads any node.
    pub fn is_dedicated(&self) -> bool {
        self.events.iter().all(|e| e.ncp == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_filters_and_sorts() {
        let s = LoadScript::dedicated()
            .at_cycle(1, 20, 0)
            .at_cycle(1, 10, 1)
            .at_time(0, SimTime::from_secs(5), 2)
            .at_time(0, SimTime::from_secs(1), 1)
            .at_cycle(2, 3, 1);
        let (t0, c0) = s.split_for_node(0);
        assert_eq!(
            t0,
            vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(5), 2)]
        );
        assert!(c0.is_empty());
        let (t1, c1) = s.split_for_node(1);
        assert!(t1.is_empty());
        assert_eq!(c1, vec![(10, 1), (20, 0)]);
        let (_, c2) = s.split_for_node(2);
        assert_eq!(c2, vec![(3, 1)]);
    }

    #[test]
    fn dedicated_detection() {
        assert!(LoadScript::dedicated().is_dedicated());
        assert!(LoadScript::dedicated().at_cycle(0, 5, 0).is_dedicated());
        assert!(!LoadScript::dedicated().at_cycle(0, 5, 1).is_dedicated());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn cycle_zero_rejected() {
        let _ = LoadScript::dedicated().at_cycle(0, 0, 1);
    }

    #[test]
    fn arrivals_record_order_and_online_time() {
        let s = LoadScript::dedicated()
            .node_arrival(
                SimTime::from_secs(1),
                NodeSpec::with_speed(2e6),
                SimDur::from_millis(500),
            )
            .node_arrival_with_nic(
                SimTime::from_secs(3),
                NodeSpec::with_speed(1e6),
                SimDur::ZERO,
                6.25e6,
            );
        assert_eq!(s.arrivals().len(), 2);
        assert_eq!(s.arrivals()[0].online_at(), SimTime::from_millis(1500));
        assert_eq!(s.arrivals()[0].nic_bandwidth, None);
        assert_eq!(s.arrivals()[1].online_at(), SimTime::from_secs(3));
        assert_eq!(s.arrivals()[1].nic_bandwidth, Some(6.25e6));
        // Arrivals alone keep the script "dedicated": no competing load.
        assert!(s.is_dedicated());
    }

    #[test]
    fn crashes_record_kind_and_lookup() {
        let s = LoadScript::dedicated()
            .node_crash(SimTime::from_secs(2), 1)
            .node_partition(SimTime::from_secs(4), 3);
        assert_eq!(s.crashes().len(), 2);
        assert_eq!(
            s.crash_of(1),
            Some(NodeCrash {
                at: SimTime::from_secs(2),
                node: 1,
                kind: CrashKind::FailStop,
            })
        );
        assert_eq!(s.crash_of(3).unwrap().kind, CrashKind::Partition);
        assert_eq!(s.crash_of(0), None);
        // Crashes alone keep the script "dedicated": no competing load.
        assert!(s.is_dedicated());
    }

    #[test]
    #[should_panic(expected = "already has a scripted crash")]
    fn duplicate_crash_rejected() {
        let _ = LoadScript::dedicated()
            .node_crash(SimTime::from_secs(1), 0)
            .node_partition(SimTime::from_secs(2), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_nic_bandwidth_rejected() {
        let _ = LoadScript::dedicated().node_arrival_with_nic(
            SimTime::ZERO,
            NodeSpec::default(),
            SimDur::ZERO,
            0.0,
        );
    }
}
